#![warn(missing_docs)]

//! SD fault trees and their scalable analysis — a Rust implementation of
//! Krčál & Krčál, *Scalable Analysis of Fault Trees with Dynamic
//! Features* (DSN 2015).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`ft`] — the fault tree formalism (builder, scenarios, cutsets,
//!   text format, DOT export),
//! * [`ctmc`] — continuous-time Markov chains (transient analysis,
//!   triggered chains, Erlang models),
//! * [`mocus`] — minimal cutset generation with a probabilistic cutoff,
//! * [`bdd`] — exact static analysis on ROBDDs,
//! * [`product`] — the exact product-chain semantics of SD trees,
//! * [`sim`] — Monte-Carlo simulation of the SD semantics,
//! * [`core`] — the paper's scalable analysis pipeline,
//! * [`oracle`] — a differential testing harness cross-checking the
//!   engines above on randomly generated SD trees,
//! * [`importance`] — Fussell–Vesely / Birnbaum / RAW / RRW measures,
//! * [`models`] — the paper's example models and an industrial-scale
//!   generator.
//!
//! # Example
//!
//! ```
//! use sdft::core::{analyze, AnalysisOptions};
//! use sdft::ft::format;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = format::parse_str(
//!     "top cooling\n\
//!      basic a 0.003\n\
//!      basic c 0.003\n\
//!      basic e 0.000003\n\
//!      dynamic b erlang k=1 lambda=0.001 mu=0.05\n\
//!      dynamic d spare lambda=0.001 mu=0.05\n\
//!      gate pump1 or a b\n\
//!      gate pump2 or c d\n\
//!      gate pumps and pump1 pump2\n\
//!      gate cooling or pumps e\n\
//!      trigger pump1 d\n",
//! )?;
//! let result = analyze(&tree, &AnalysisOptions::new(24.0))?;
//! assert!(result.frequency > 0.0 && result.frequency < result.static_rea);
//! # Ok(())
//! # }
//! ```

pub use sdft_bdd as bdd;
pub use sdft_core as core;
pub use sdft_ctmc as ctmc;
pub use sdft_ft as ft;
pub use sdft_importance as importance;
pub use sdft_mocus as mocus;
pub use sdft_models as models;
pub use sdft_oracle as oracle;
pub use sdft_product as product;
pub use sdft_sim as sim;
