//! The `sdft` command-line tool: analyze SD fault trees written in the
//! plain-text format (see `sdft::ft::format`).
//!
//! ```text
//! sdft check      <file>                     validate + classify triggers
//! sdft analyze    <file> [--horizon H] [--cutoff C] [--top N] [--threads N]
//!                        [--backend mocus|bdd] [--fast] [--csv OUT]
//!                        [--no-steady-state] [--no-stream] [--progress SECS]
//!                        [--filter-shards K] [--filter-fallback adaptive|always|never]
//! sdft mcs        <file> [--horizon H] [--cutoff C] [--top N] [--threads N]
//! sdft exact      <file> [--horizon H]       product-chain reference (small models)
//! sdft simulate   <file> [--horizon H] [--samples N] [--seed S]
//! sdft importance <file> [--horizon H] [--top N]
//! sdft metrics    <file>                     MTTF + steady-state unavailability
//! sdft dot        <file>                     Graphviz export to stdout
//! ```

use sdft::core::{analyze, classify_triggering_gates, AnalysisOptions, Backend, TriggerTreatment};
use sdft::ft::{dot, format, EventProbabilities, FallbackMode, FaultTree};
use sdft::mocus::MocusOptions;
use sdft::product::{failure_probability, ProductOptions};
use sdft::sim::{simulate, SimOptions};
use std::process::ExitCode;

struct Args {
    file: String,
    horizon: f64,
    cutoff: f64,
    top: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    backend: Backend,
    fast: bool,
    steady_state: bool,
    streaming: bool,
    filter_shards: usize,
    filter_fallback: FallbackMode,
    progress: Option<f64>,
    csv: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sdft <check|analyze|mcs|exact|simulate|importance|metrics|dot> <file> \
         [--horizon H] [--cutoff C] [--top N] [--samples N] [--seed S] [--threads N] \
         [--backend mocus|bdd] [--fast] [--no-steady-state] [--no-stream] \
         [--filter-shards K] [--filter-fallback adaptive|always|never] \
         [--progress SECS] [--csv OUT]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return usage();
    };
    let Some((file, flags)) = rest.split_first() else {
        return usage();
    };
    let mut args = Args {
        file: file.clone(),
        horizon: 24.0,
        cutoff: 1e-15,
        top: 10,
        samples: 100_000,
        seed: 7,
        threads: 0,
        backend: Backend::default(),
        fast: false,
        steady_state: true,
        streaming: true,
        filter_shards: 0,
        filter_fallback: FallbackMode::Adaptive,
        progress: None,
        csv: None,
    };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v.cloned()
        };
        let ok = match flag.as_str() {
            "--horizon" => value("--horizon")
                .and_then(|v| v.parse().ok())
                .map(|v| args.horizon = v),
            "--cutoff" => value("--cutoff")
                .and_then(|v| v.parse().ok())
                .map(|v| args.cutoff = v),
            "--top" => value("--top")
                .and_then(|v| v.parse().ok())
                .map(|v| args.top = v),
            "--samples" => value("--samples")
                .and_then(|v| v.parse().ok())
                .map(|v| args.samples = v),
            "--seed" => value("--seed")
                .and_then(|v| v.parse().ok())
                .map(|v| args.seed = v),
            "--threads" => value("--threads")
                .and_then(|v| v.parse().ok())
                .map(|v| args.threads = v),
            "--backend" => value("--backend").and_then(|v| match v.parse() {
                Ok(backend) => {
                    args.backend = backend;
                    Some(())
                }
                Err(e) => {
                    eprintln!("{e}");
                    None
                }
            }),
            "--csv" => value("--csv").map(|v| args.csv = Some(v)),
            "--fast" => {
                args.fast = true;
                Some(())
            }
            "--no-steady-state" => {
                args.steady_state = false;
                Some(())
            }
            "--no-stream" => {
                args.streaming = false;
                Some(())
            }
            "--filter-shards" => value("--filter-shards")
                .and_then(|v| v.parse().ok())
                .map(|v| args.filter_shards = v),
            "--filter-fallback" => value("--filter-fallback").and_then(|v| match v.parse() {
                Ok(mode) => {
                    args.filter_fallback = mode;
                    Some(())
                }
                Err(e) => {
                    eprintln!("{e}");
                    None
                }
            }),
            "--progress" => value("--progress")
                .and_then(|v| v.parse().ok())
                .filter(|&v: &f64| v.is_finite() && v > 0.0)
                .map(|v| args.progress = Some(v)),
            other => {
                eprintln!("unknown flag {other:?}");
                None
            }
        };
        if ok.is_none() {
            return usage();
        }
    }

    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let tree = match format::parse_str(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    let result = match command.as_str() {
        "check" => cmd_check(&tree),
        "analyze" => cmd_analyze(&tree, &args),
        "mcs" => cmd_mcs(&tree, &args),
        "exact" => cmd_exact(&tree, &args),
        "simulate" => cmd_simulate(&tree, &args),
        "importance" => cmd_importance(&tree, &args),
        "metrics" => cmd_metrics(&tree),
        "dot" => {
            print!("{}", dot::to_dot(&tree));
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_check(tree: &FaultTree) -> CliResult {
    println!(
        "valid SD fault tree: {} basic events ({} dynamic), {} gates, top {:?}",
        tree.num_basic_events(),
        tree.dynamic_basic_events().count(),
        tree.num_gates(),
        tree.name(tree.top()),
    );
    let stats = tree.statistics();
    println!(
        "structure: depth {}, max fan-in {}, gates {} and / {} or / {} atleast, \
         {} triggered events",
        stats.depth,
        stats.max_fan_in,
        stats.and_gates,
        stats.or_gates,
        stats.atleast_gates,
        stats.triggered_events,
    );
    let mods = sdft::ft::modules(tree);
    println!("independent modules: {}", mods.len());
    let classes = classify_triggering_gates(tree);
    if classes.is_empty() {
        println!("no triggering gates");
    } else {
        println!("triggering gates ({}):", classes.len());
        let mut sorted: Vec<_> = classes.into_iter().collect();
        sorted.sort_by_key(|&(gate, _)| gate);
        for (gate, class) in sorted {
            let targets: Vec<&str> = tree
                .triggers_of(gate)
                .iter()
                .map(|&e| tree.name(e))
                .collect();
            println!(
                "  {:<24} {class}  (triggers: {})",
                tree.name(gate),
                targets.join(", ")
            );
        }
    }
    Ok(())
}

fn analysis_options(args: &Args) -> AnalysisOptions {
    let mut options = AnalysisOptions::new(args.horizon);
    options.mocus = MocusOptions::with_cutoff(args.cutoff);
    options.backend = args.backend;
    options.threads = args.threads;
    if args.fast {
        options.treatment = TriggerTreatment::CutsetOnly;
    }
    options.steady_state_detection = args.steady_state;
    options.streaming = args.streaming;
    options.filter_shards = args.filter_shards;
    options.filter_fallback = args.filter_fallback;
    options.progress = args.progress.map(std::time::Duration::from_secs_f64);
    if options.progress.is_some() && !options.streaming {
        eprintln!("note: --progress reports the streaming engine; ignored with --no-stream");
    }
    options
}

fn cmd_analyze(tree: &FaultTree, args: &Args) -> CliResult {
    let result = analyze(tree, &analysis_options(args))?;
    println!(
        "failure frequency over {}h: {:.4e}  (static worst case {:.4e})",
        args.horizon, result.frequency, result.static_rea
    );
    if let Some(exact) = result.exact_static {
        println!(
            "exact static probability: {exact:.4e}  (REA overshoot {:+.2e})",
            result.static_rea - exact
        );
    }
    println!(
        "{} cutsets above {:.0e} ({} dynamic, largest chain {} states) via {}",
        result.stats.num_cutsets,
        args.cutoff,
        result.stats.num_dynamic_cutsets,
        result.stats.max_chain_states,
        result.stats.backend,
    );
    if result.stats.backend == Backend::Bdd {
        println!(
            "bdd: {} modules, {} nodes total (largest {}), {} weighted orders, \
             apply cache {} hits / {} misses",
            result.stats.bdd_modules,
            result.stats.bdd_total_nodes,
            result.stats.bdd_max_module_nodes,
            result.stats.bdd_weighted_orders,
            result.stats.bdd_apply_hits,
            result.stats.bdd_apply_misses,
        );
    }
    println!(
        "model cache: {} distinct classes, {:.1}% hit rate, {:?} saved",
        result.stats.distinct_model_classes,
        result.stats.cache_hit_rate() * 100.0,
        result.timings.quantification_saved,
    );
    println!(
        "kernel: {} solves, {} DTMC steps ({} saved by steady-state detection \
         in {} solves), CSR build {:?} ({} reused)",
        result.stats.kernel_solves,
        result.stats.kernel_steps,
        result.stats.kernel_steps_saved,
        result.stats.steady_state_solves,
        result.timings.csr_build,
        result.stats.kernel_csr_reuses,
    );
    let spmv_seconds = result.timings.spmv.as_secs_f64();
    let spmv_rate = if spmv_seconds > 0.0 {
        result.stats.kernel_spmv_nonzeros as f64 / spmv_seconds / 1e6
    } else {
        0.0
    };
    println!(
        "spmv: {} nonzeros in {:?} ({:.1}M nz/s)",
        result.stats.kernel_spmv_nonzeros, result.timings.spmv, spmv_rate,
    );
    println!(
        "mocus: {} partials processed, {} pruned, {} subsumption tests, \
         {} tasks stolen",
        result.stats.mocus_partials_processed,
        result.stats.mocus_partials_pruned,
        result.stats.mocus_subsumption_comparisons,
        result.stats.mocus_stolen_tasks,
    );
    println!(
        "memory peaks: {} partials ({} B), {} candidates ({} B), \
         {} pending cutsets, {} in-flight models",
        result.stats.mocus_peak_live_partials,
        result.stats.mocus_peak_partial_bytes,
        result.stats.mocus_peak_live_candidates,
        result.stats.mocus_peak_candidate_bytes,
        result.stats.peak_pending_cutsets,
        result.stats.peak_inflight_models,
    );
    println!(
        "times: worst-case {:?}, translation {:?}, MCS {:?}, quantification {:?}, \
         stage overlap {:?}",
        result.timings.worst_case,
        result.timings.translation,
        result.timings.mcs_generation,
        result.timings.quantification,
        result.timings.stream_overlap,
    );
    println!(
        "stage busy: generation {:?}, filter {:?}, quantification {:?}",
        result.timings.generation_busy, result.timings.filter_busy, result.timings.quant_busy,
    );
    if result.stats.filter_shards > 0 {
        let probes: u64 = result
            .stats
            .filter_shard_stats
            .iter()
            .map(|s| s.probes)
            .sum();
        let rejects: u64 = result
            .stats
            .filter_shard_stats
            .iter()
            .map(|s| s.rejects)
            .sum();
        let compactions: u64 = result
            .stats
            .filter_shard_stats
            .iter()
            .map(|s| s.compactions)
            .sum();
        println!(
            "filter: {} shard{}, {} probes, {} rejects, {} compactions, \
             {} fallback epochs",
            result.stats.filter_shards,
            if result.stats.filter_shards == 1 {
                ""
            } else {
                "s"
            },
            probes,
            rejects,
            compactions,
            result.stats.filter_fallback_epochs,
        );
    }
    println!("\ntop cutsets:");
    for report in result.cutsets.iter().take(args.top) {
        let names: Vec<&str> = report
            .cutset
            .events()
            .iter()
            .map(|&e| tree.name(e))
            .collect();
        println!("  {:>12.4e}  {{{}}}", report.probability, names.join(", "));
    }
    if let Some(path) = &args.csv {
        let file = std::fs::File::create(path)?;
        result.write_csv(tree, std::io::BufWriter::new(file))?;
        println!("\nper-cutset records written to {path}");
    }
    Ok(())
}

fn cmd_mcs(tree: &FaultTree, args: &Args) -> CliResult {
    let probs = sdft::core::worst_case_probabilities(tree, args.horizon, 1e-12)?;
    let translated = sdft::core::translate(tree, &probs)?;
    let static_probs = EventProbabilities::from_static(&translated.tree)?;
    let mut mocus_options = MocusOptions::with_cutoff(args.cutoff);
    mocus_options.threads = args.threads;
    let mcs = sdft::mocus::minimal_cutsets(&translated.tree, &static_probs, &mocus_options)?;
    let mut list = translated.cutsets_to_original(&mcs);
    list.sort_by_probability_desc(|e| probs.get(e));
    println!(
        "{} minimal cutsets above {:.0e} (REA {:.4e}):",
        list.len(),
        args.cutoff,
        list.rare_event_approximation(|e| probs.get(e))
    );
    for cutset in list.iter().take(args.top) {
        let names: Vec<&str> = cutset.events().iter().map(|&e| tree.name(e)).collect();
        println!(
            "  {:>12.4e}  {{{}}}",
            cutset.probability_with(|e| probs.get(e)),
            names.join(", ")
        );
    }
    Ok(())
}

fn cmd_exact(tree: &FaultTree, args: &Args) -> CliResult {
    let p = failure_probability(tree, args.horizon, &ProductOptions::default())?;
    println!(
        "exact product-chain failure probability over {}h: {:.6e}",
        args.horizon, p
    );
    Ok(())
}

fn cmd_simulate(tree: &FaultTree, args: &Args) -> CliResult {
    let result = simulate(
        tree,
        &SimOptions {
            samples: args.samples,
            horizon: args.horizon,
            seed: args.seed,
        },
    )?;
    println!("simulation over {}h: {result}", args.horizon);
    Ok(())
}

fn cmd_metrics(tree: &FaultTree) -> CliResult {
    use sdft::ctmc::StationaryOptions;
    use sdft::product::{ProductChain, ProductOptions};
    let chain = ProductChain::build(tree, &ProductOptions::default())?;
    println!("product chain: {} states", chain.num_states());
    let opts = StationaryOptions::default();
    let mttf = chain.chain().mean_time_to_failure(&opts)?;
    if mttf.is_infinite() {
        println!("mean time to failure: unreachable (the top gate can never fail)");
    } else {
        println!(
            "mean time to failure: {mttf:.3} h ({:.2} years)",
            mttf / 8766.0
        );
    }
    let unavailability = chain.steady_state_unavailability(&opts)?;
    println!("steady-state unavailability: {unavailability:.4e}");
    Ok(())
}

fn cmd_importance(tree: &FaultTree, args: &Args) -> CliResult {
    let result = analyze(tree, &analysis_options(args))?;
    println!(
        "time-aware Fussell–Vesely importance (frequency {:.4e}):",
        result.frequency
    );
    for (event, share) in result.fussell_vesely().into_iter().take(args.top) {
        println!("  {:<24} {share:.4}", tree.name(event));
    }
    Ok(())
}
