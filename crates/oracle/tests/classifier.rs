//! Generator-driven coverage for the §V-A structure validator: trees
//! from the `violating` preset that contain a general-case triggering
//! gate must be rejected by `validate_trigger_structure` with the
//! precise [`CoreError::TriggerStructure`] variant, and accepted trees
//! must genuinely contain no gate above the allowed class.

use sdft_core::{
    classify_gate, classify_triggering_gates, validate_trigger_structure, CoreError, TriggerClass,
};
use sdft_oracle::{generate_seeded, GeneratorConfig};

#[test]
fn violating_trees_are_rejected_with_the_precise_variant() {
    let cfg = GeneratorConfig::violating();
    let mut rejected = 0;
    let mut accepted = 0;
    for seed in 0..120u64 {
        let spec = generate_seeded(&cfg, 0xC1A5_5000 ^ seed.wrapping_mul(0x9E37_79B9));
        let tree = spec.build().expect("generated specs build");
        let classes = classify_triggering_gates(&tree);
        let worst = classes.values().copied().max();
        match validate_trigger_structure(&tree, TriggerClass::StaticJoins) {
            Ok(()) => {
                accepted += 1;
                assert!(
                    worst.is_none_or(|w| w <= TriggerClass::StaticJoins),
                    "validator accepted a tree with a {worst:?} gate"
                );
            }
            Err(CoreError::TriggerStructure {
                gate,
                class,
                allowed,
            }) => {
                rejected += 1;
                assert_eq!(allowed, TriggerClass::StaticJoins);
                assert_eq!(
                    class,
                    TriggerClass::General,
                    "only General exceeds StaticJoins"
                );
                assert_eq!(worst, Some(TriggerClass::General));
                // The named gate really is a triggering gate of that class.
                let id = tree.node_by_name(&gate).expect("offender exists");
                assert!(!tree.triggers_of(id).is_empty(), "{gate} triggers nothing");
                assert_eq!(classify_gate(&tree, id), TriggerClass::General);
            }
            Err(other) => panic!("unexpected error variant: {other}"),
        }
    }
    // The preset must actually exercise the rejection path (and the
    // generator still produces some acceptable trees for contrast).
    assert!(
        rejected >= 20,
        "only {rejected}/120 violating trees rejected"
    );
    assert!(accepted >= 5, "only {accepted}/120 trees accepted");
}

#[test]
fn strictest_policy_rejects_anything_beyond_static_branching() {
    let cfg = GeneratorConfig::violating();
    for seed in 0..40u64 {
        let spec = generate_seeded(&cfg, 0xFACE ^ seed.wrapping_mul(0x5851_F42D));
        let tree = spec.build().expect("generated specs build");
        let worst = classify_triggering_gates(&tree).values().copied().max();
        let verdict = validate_trigger_structure(&tree, TriggerClass::StaticBranching);
        match worst {
            None | Some(TriggerClass::StaticBranching) => assert_eq!(verdict, Ok(())),
            Some(class) => {
                let err = verdict.expect_err("gate above StaticBranching must be rejected");
                let CoreError::TriggerStructure {
                    class: reported,
                    allowed,
                    ..
                } = err
                else {
                    panic!("unexpected error variant");
                };
                assert_eq!(allowed, TriggerClass::StaticBranching);
                assert!(reported > TriggerClass::StaticBranching);
                // The first offender in tree order need not be the worst
                // gate, but it is always above the policy; the worst gate
                // bounds it from above.
                assert!(reported <= class.max(reported));
            }
        }
    }
}
