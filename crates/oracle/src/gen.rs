//! Seeded random SD fault tree generator.
//!
//! Unlike the static-only proptest trees in `tests/property.rs`, the
//! specs produced here exercise the full dynamic feature space of the
//! paper: Erlang degradation with repair, cold spares and triggered
//! Erlang chains, trigger edges whose subtrees satisfy — or, with
//! [`GeneratorConfig::violating`], deliberately break — the static
//! branching / static joins conditions of §V-A, at-least gates, and
//! shared subtrees.
//!
//! Triggering is acyclic *by construction*: a triggered event's source
//! gate is always chosen among gates that already exist, and the event
//! itself is only ever placed under gates created afterwards (its
//! wrapper or the top combiner), so no source gate can contain its own
//! triggered event.

use crate::spec::{EventSpec, GateSpec, TreeSpec};
use rand::{rngs::StdRng, Rng};
use sdft_ft::GateKind;

/// Size and shape knobs for [`generate`]. All `(lo, hi)` pairs are
/// inclusive ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of static basic events.
    pub static_events: (usize, usize),
    /// Number of always-on dynamic events.
    pub dynamic_events: (usize, usize),
    /// Number of triggered events (spares / triggered Erlang).
    pub triggered_events: (usize, usize),
    /// Number of intermediate gates (before trigger wrappers and top).
    pub gates: (usize, usize),
    /// Maximum inputs per gate (`≥ 2`).
    pub max_gate_inputs: usize,
    /// Probability an intermediate gate is AND (vs OR), given it is not
    /// an at-least gate.
    pub and_weight: f64,
    /// Probability a gate with ≥ 3 inputs becomes a voting gate with
    /// `1 < k < n`.
    pub atleast_weight: f64,
    /// Probability a gate input is drawn from *all* existing nodes
    /// (creating shared subtrees) instead of the unconsumed pool.
    pub share_weight: f64,
    /// Static failure probability range.
    pub prob_range: (f64, f64),
    /// Failure rate range.
    pub lambda_range: (f64, f64),
    /// Probability a dynamic event is repairable (`μ > 0`).
    pub repair_weight: f64,
    /// Repair rate range (used when repairable).
    pub mu_range: (f64, f64),
    /// Maximum Erlang phases.
    pub max_phases: usize,
    /// Probability a triggered event is combined with a second node
    /// under a fresh wrapper gate (enabling chained triggering) rather
    /// than feeding the top combiner directly.
    pub wrap_weight: f64,
    /// Probability the wrapper gate is AND (placing a dynamic event
    /// under an AND — with triggers in scope this drives the subtree
    /// towards the general class of §V-A).
    pub wrap_and_weight: f64,
}

impl GeneratorConfig {
    /// Small trees whose product chain stays exactly checkable
    /// (worst case well under `50_000` states).
    #[must_use]
    pub fn small() -> Self {
        GeneratorConfig {
            static_events: (1, 3),
            dynamic_events: (1, 2),
            triggered_events: (0, 2),
            gates: (1, 3),
            max_gate_inputs: 3,
            and_weight: 0.35,
            atleast_weight: 0.25,
            share_weight: 0.3,
            prob_range: (0.01, 0.4),
            lambda_range: (0.005, 0.08),
            repair_weight: 0.5,
            mu_range: (0.05, 0.5),
            max_phases: 2,
            wrap_weight: 0.6,
            wrap_and_weight: 0.3,
        }
    }

    /// Larger trees; the product chain often exceeds the exact budget,
    /// so the statistical (simulation) referee takes over.
    #[must_use]
    pub fn medium() -> Self {
        GeneratorConfig {
            static_events: (2, 6),
            dynamic_events: (2, 5),
            triggered_events: (1, 3),
            gates: (2, 6),
            max_gate_inputs: 4,
            and_weight: 0.35,
            atleast_weight: 0.25,
            share_weight: 0.35,
            prob_range: (0.01, 0.4),
            lambda_range: (0.005, 0.08),
            repair_weight: 0.6,
            mu_range: (0.05, 0.5),
            max_phases: 3,
            wrap_weight: 0.6,
            wrap_and_weight: 0.3,
        }
    }

    /// Purely static trees (BDD / exact enumeration territory).
    #[must_use]
    pub fn static_only() -> Self {
        GeneratorConfig {
            static_events: (2, 7),
            dynamic_events: (0, 0),
            triggered_events: (0, 0),
            gates: (1, 5),
            max_gate_inputs: 4,
            and_weight: 0.4,
            atleast_weight: 0.3,
            share_weight: 0.4,
            prob_range: (0.01, 0.5),
            lambda_range: (0.005, 0.08),
            repair_weight: 0.0,
            mu_range: (0.05, 0.5),
            max_phases: 1,
            wrap_weight: 0.0,
            wrap_and_weight: 0.0,
        }
    }

    /// Shapes likely to *violate* the favourable trigger classes of
    /// §V-A (dynamic children under ANDs, ORs with several dynamic
    /// children, mid-`k` voting gates over dynamics) — used to test the
    /// classifier's rejection path.
    #[must_use]
    pub fn violating() -> Self {
        GeneratorConfig {
            static_events: (1, 2),
            dynamic_events: (2, 4),
            triggered_events: (1, 3),
            gates: (2, 4),
            max_gate_inputs: 3,
            and_weight: 0.7,
            atleast_weight: 0.4,
            share_weight: 0.3,
            prob_range: (0.01, 0.4),
            lambda_range: (0.005, 0.08),
            repair_weight: 0.5,
            mu_range: (0.05, 0.5),
            max_phases: 2,
            wrap_weight: 0.8,
            wrap_and_weight: 0.7,
        }
    }
}

fn range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn rate(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    rng.gen_range(lo..=hi)
}

/// Generate a random, always-buildable [`TreeSpec`].
pub fn generate(cfg: &GeneratorConfig, rng: &mut StdRng) -> TreeSpec {
    let ns = range(rng, cfg.static_events).max(1);
    let nd = range(rng, cfg.dynamic_events);
    let nt = if cfg.gates.0 == 0 {
        0
    } else {
        range(rng, cfg.triggered_events)
    };
    let ng = range(rng, cfg.gates).max(1);

    let mut events = Vec::with_capacity(ns + nd + nt);
    for _ in 0..ns {
        events.push(EventSpec::Static {
            probability: rate(rng, cfg.prob_range),
        });
    }
    for _ in 0..nd {
        let mu = if rng.gen_bool(cfg.repair_weight) {
            rate(rng, cfg.mu_range)
        } else {
            0.0
        };
        events.push(EventSpec::Dynamic {
            phases: range(rng, (1, cfg.max_phases)),
            lambda: rate(rng, cfg.lambda_range),
            mu,
        });
    }
    for _ in 0..nt {
        let lambda = rate(rng, cfg.lambda_range);
        let mu = if rng.gen_bool(cfg.repair_weight) {
            rate(rng, cfg.mu_range)
        } else {
            0.0
        };
        if rng.gen_bool(0.5) {
            events.push(EventSpec::Spare { lambda, mu });
        } else {
            events.push(EventSpec::TriggeredErlang {
                phases: range(rng, (1, cfg.max_phases)),
                lambda,
                mu,
            });
        }
    }
    let ne = events.len();

    let mut spec = TreeSpec {
        events,
        gates: Vec::new(),
        triggers: Vec::new(),
        top: 0,
    };

    // The pool of "unconsumed roots": nodes not yet below any gate.
    // Triggered events enter it only once their trigger is wired up.
    let mut roots: Vec<usize> = (0..ns + nd).collect();
    // All nodes an input may share into (everything except triggered
    // events still waiting for their trigger edge).
    let mut sharable: Vec<usize> = (0..ns + nd).collect();

    for _ in 0..ng {
        let want = rng.gen_range(2..=cfg.max_gate_inputs.max(2));
        let mut inputs = Vec::with_capacity(want);
        for _ in 0..want {
            let from_shared = roots.is_empty() || rng.gen_bool(cfg.share_weight);
            let pool = if from_shared { &sharable } else { &roots };
            let pick = pool[rng.gen_range(0..pool.len())];
            if !inputs.contains(&pick) {
                inputs.push(pick);
            }
            if !from_shared {
                roots.retain(|&r| r != pick);
            }
        }
        if inputs.is_empty() {
            inputs.push(sharable[rng.gen_range(0..sharable.len())]);
        }
        let n = inputs.len();
        let kind = if n >= 3 && rng.gen_bool(cfg.atleast_weight) {
            GateKind::AtLeast(rng.gen_range(2..=(n as u32 - 1)))
        } else if rng.gen_bool(cfg.and_weight) {
            GateKind::And
        } else {
            GateKind::Or
        };
        let gate_ref = spec.gate_ref(spec.gates.len());
        spec.gates.push(GateSpec { kind, inputs });
        roots.push(gate_ref);
        sharable.push(gate_ref);
    }

    // Wire up triggered events: source among existing gates, placement
    // only in *new* wrapper gates (or the top combiner).
    for e in ns + nd..ne {
        let source = rng.gen_range(0..spec.gates.len());
        spec.triggers.push((source, e));
        if rng.gen_bool(cfg.wrap_weight) && !sharable.is_empty() {
            let partner = sharable[rng.gen_range(0..sharable.len())];
            let kind = if rng.gen_bool(cfg.wrap_and_weight) {
                GateKind::And
            } else {
                GateKind::Or
            };
            let gate_ref = spec.gate_ref(spec.gates.len());
            spec.gates.push(GateSpec {
                kind,
                inputs: vec![e, partner],
            });
            roots.retain(|&r| r != partner);
            roots.push(gate_ref);
            sharable.push(gate_ref);
        } else {
            roots.push(e);
        }
        sharable.push(e);
    }

    // Top combiner over every remaining root.
    if roots.len() == 1 && roots[0] >= ne {
        spec.top = roots[0];
    } else {
        let kind = if rng.gen_bool(cfg.and_weight / 2.0) {
            GateKind::And
        } else {
            GateKind::Or
        };
        let gate_ref = spec.gate_ref(spec.gates.len());
        spec.gates.push(GateSpec {
            kind,
            inputs: roots,
        });
        spec.top = gate_ref;
    }

    debug_assert!(spec.build().is_ok(), "generated spec must build");
    spec
}

/// Convenience: [`generate`] from a fresh [`StdRng`] seeded with `seed`.
pub fn generate_seeded(cfg: &GeneratorConfig, seed: u64) -> TreeSpec {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    generate(cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_build_for_many_seeds() {
        for preset in [
            GeneratorConfig::small(),
            GeneratorConfig::medium(),
            GeneratorConfig::static_only(),
            GeneratorConfig::violating(),
        ] {
            for seed in 0..200 {
                let spec = generate_seeded(&preset, seed);
                let tree = spec
                    .build()
                    .unwrap_or_else(|e| panic!("seed {seed} does not build: {e}\nspec: {spec:?}"));
                assert!(tree.num_gates() >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::medium();
        assert_eq!(generate_seeded(&cfg, 42), generate_seeded(&cfg, 42));
    }

    #[test]
    fn dynamic_features_are_exercised() {
        let cfg = GeneratorConfig::medium();
        let (mut triggered, mut atleast, mut shared) = (0, 0, 0);
        for seed in 0..100 {
            let spec = generate_seeded(&cfg, seed);
            triggered += spec.triggers.len();
            atleast += spec
                .gates
                .iter()
                .filter(|g| matches!(g.kind, GateKind::AtLeast(_)))
                .count();
            let mut refs = std::collections::HashMap::new();
            for g in &spec.gates {
                for &r in &g.inputs {
                    *refs.entry(r).or_insert(0) += 1;
                }
            }
            shared += usize::from(refs.values().any(|&c| c > 1));
        }
        assert!(triggered > 50, "triggered events: {triggered}");
        assert!(atleast > 20, "at-least gates: {atleast}");
        assert!(shared > 30, "trees with shared subtrees: {shared}");
    }
}
