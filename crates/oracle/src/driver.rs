//! The deterministic oracle driver: generate → check → shrink → report.

use crate::check::{check_spec, CheckConfig, Outcome};
use crate::gen::{generate_seeded, GeneratorConfig};
use crate::shrink::shrink;
use crate::spec::TreeSpec;
use std::time::{Duration, Instant};

/// Configuration of one oracle run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Master seed; every per-tree stream is derived from it, so a run
    /// is fully reproducible from `(seed, trees)`.
    pub seed: u64,
    /// Number of trees to generate and check.
    pub trees: usize,
    /// Per-tree check tolerances and budgets.
    pub check: CheckConfig,
    /// Maximum re-checks the shrinker spends per counterexample.
    pub shrink_attempts: usize,
    /// Optional wall-clock budget: once exceeded, no *new* trees are
    /// started (the report then covers fewer than `trees` trees, and
    /// determinism of the covered prefix is preserved). `None` — used
    /// by the CI test — always runs exactly `trees` trees.
    pub time_budget: Option<Duration>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seed: 0xD5_F7_0C_1E,
            trees: 220,
            check: CheckConfig::default(),
            shrink_attempts: 300,
            time_budget: None,
        }
    }
}

/// A minimized, replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Index of the offending tree within the run.
    pub index: usize,
    /// The derived per-tree seed (replays the generator directly).
    pub tree_seed: u64,
    /// Name of the first check that disagreed.
    pub check: String,
    /// Evidence from the original (unshrunk) failure.
    pub details: String,
    /// The original offending spec.
    pub spec: TreeSpec,
    /// The shrunk spec (still failing the same check).
    pub minimized: TreeSpec,
    /// The shrunk tree in the `sdft-ft` text format — commit this under
    /// `tests/corpus/` to replay it forever.
    pub minimized_text: String,
}

/// Aggregate report of one oracle run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// Trees actually generated and checked (< `trees` only when a
    /// time budget cut the run short).
    pub trees_run: usize,
    /// Sum of per-tree check tallies.
    pub outcome: Outcome,
    /// Minimized counterexamples, one per disagreeing tree.
    pub counterexamples: Vec<Counterexample>,
    /// Order-sensitive digest over every checked tree's frequency bits;
    /// two runs with the same config must produce the same digest.
    pub digest: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The preset mix cycled through by tree index: mostly product-checkable
/// small trees, with medium (simulation-refereed), static-only,
/// classifier-violating, and trigger-free medium shapes in rotation.
#[must_use]
pub fn preset_for(index: usize) -> GeneratorConfig {
    match index % 6 {
        0 | 1 => GeneratorConfig::small(),
        2 => GeneratorConfig::medium(),
        3 => GeneratorConfig::static_only(),
        4 => GeneratorConfig::violating(),
        _ => {
            let mut cfg = GeneratorConfig::medium();
            cfg.triggered_events = (0, 0); // two-sided sim sandwich applies
            cfg
        }
    }
}

/// Run the oracle: generate `cfg.trees` trees from the master seed,
/// cross-check each across the engine matrix, and shrink any
/// disagreement to a minimal replayable counterexample.
#[must_use]
pub fn run_oracle(cfg: &OracleConfig) -> OracleReport {
    let start = Instant::now();
    let mut report = OracleReport {
        trees_run: 0,
        outcome: Outcome::default(),
        counterexamples: Vec::new(),
        digest: 0x6F_72_61_63_6C_65, // "oracle"
    };
    for index in 0..cfg.trees {
        if let Some(budget) = cfg.time_budget {
            if start.elapsed() > budget {
                break;
            }
        }
        let tree_seed = splitmix64(cfg.seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let preset = preset_for(index);
        let spec = generate_seeded(&preset, tree_seed);
        let mut check = cfg.check.clone();
        check.sim_seed = splitmix64(tree_seed ^ 0x51D);
        // Cycle the streaming filter's shard count so the campaign
        // exercises the inline path and the sharded reconciliation at
        // several widths; results are shard-count-invariant, so the
        // digest must not move.
        check.filter_shards = [1, 2, 4, 8][index % 4];
        let outcome = check_spec(&spec, &check);
        report.trees_run += 1;
        report.digest = splitmix64(
            report.digest
                ^ (outcome.passed as u64)
                ^ ((outcome.skipped as u64) << 20)
                ^ ((outcome.disagreements.len() as u64) << 40)
                ^ tree_seed,
        );
        if let Some(first) = outcome.disagreements.first() {
            let minimized = shrink(&spec, &check, &first.check, cfg.shrink_attempts);
            let minimized_text = minimized
                .to_ft_text()
                .unwrap_or_else(|e| format!("# unserializable minimized spec: {e}\n"));
            report.counterexamples.push(Counterexample {
                index,
                tree_seed,
                check: first.check.clone(),
                details: first.details.clone(),
                spec,
                minimized,
                minimized_text,
            });
        }
        report.outcome.merge(outcome);
    }
    report
}

impl OracleReport {
    /// Multi-line human-readable summary, including every minimized
    /// counterexample in replayable form.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "oracle: {} trees, {} checks passed, {} skipped, {} disagreements (digest {:016x})",
            self.trees_run,
            self.outcome.passed,
            self.outcome.skipped,
            self.outcome.disagreements.len(),
            self.digest,
        );
        for ce in &self.counterexamples {
            let _ = writeln!(
                s,
                "\n--- tree #{} (seed {:#x}) failed check {:?}\n{}\nminimized tree:\n{}",
                ce.index, ce.tree_seed, ce.check, ce.details, ce.minimized_text
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(trees: usize) -> OracleConfig {
        OracleConfig {
            trees,
            check: CheckConfig {
                sim_samples: 2_000,
                check_cache_consistency: false,
                ..CheckConfig::default()
            },
            ..OracleConfig::default()
        }
    }

    #[test]
    fn small_run_is_deterministic() {
        let cfg = fast_config(12);
        let a = run_oracle(&cfg);
        let b = run_oracle(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trees_run, 12);
    }

    #[test]
    fn time_budget_cuts_the_run_short() {
        let mut cfg = fast_config(10_000);
        cfg.time_budget = Some(Duration::from_millis(200));
        let report = run_oracle(&cfg);
        assert!(report.trees_run < 10_000);
        assert!(report.trees_run > 0);
    }
}
