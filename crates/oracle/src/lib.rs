#![warn(missing_docs)]

//! A differential testing oracle for SD fault trees.
//!
//! This workspace carries four independent implementations of (parts
//! of) the SD fault tree semantics of Krčál & Krčál (DSN 2015): the
//! scalable cutset pipeline (`sdft-core`), the exact product Markov
//! chain (`sdft-product`), exact static analysis on BDDs (`sdft-bdd`),
//! and Monte-Carlo simulation (`sdft-sim`). This crate turns that
//! redundancy into a correctness harness:
//!
//! * [`gen`] — a seeded random generator of SD trees covering dynamic
//!   events with Erlang degradation/repair, triggered spares, at-least
//!   gates, shared subtrees, and (on request) shapes violating the
//!   favourable trigger classes of §V-A;
//! * [`rewrite`] / [`metamorphic`] — semantics-preserving rewrites and
//!   monotone perturbations with predicted effects on the quantified
//!   frequency;
//! * [`check`] — the N-way differential matrix (pipeline vs product
//!   chain vs simulation vs BDD) with sound Bonferroni-style
//!   tolerances;
//! * [`shrink`] — greedy minimization of disagreeing trees;
//! * [`driver`] — the deterministic generate → check → shrink loop
//!   producing replayable counterexamples in the `sdft-ft` text
//!   format.
//!
//! # Example
//!
//! ```
//! use sdft_oracle::{run_oracle, CheckConfig, OracleConfig};
//!
//! let report = run_oracle(&OracleConfig {
//!     trees: 6,
//!     check: CheckConfig { sim_samples: 1_000, ..CheckConfig::default() },
//!     ..OracleConfig::default()
//! });
//! assert_eq!(report.trees_run, 6);
//! assert!(report.counterexamples.is_empty(), "{}", report.summary());
//! ```

pub mod check;
pub mod driver;
pub mod gen;
pub mod metamorphic;
pub mod rewrite;
pub mod shrink;
pub mod spec;

pub use check::{check_spec, check_tree, CheckConfig, Disagreement, Outcome};
pub use driver::{preset_for, run_oracle, Counterexample, OracleConfig, OracleReport};
pub use gen::{generate, generate_seeded, GeneratorConfig};
pub use shrink::shrink;
pub use spec::{EventSpec, GateSpec, TreeSpec};
