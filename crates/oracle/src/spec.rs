//! A mutable, index-based description of an SD fault tree.
//!
//! [`FaultTree`] is immutable by design; the oracle needs to *mutate*
//! trees — the generator grows them, monotone perturbations tweak one
//! rate, the shrinker deletes structure. [`TreeSpec`] is the mutable
//! form: events and gates in flat vectors, gate inputs as indices into
//! the combined node list (events first, then gates in creation order).
//! [`TreeSpec::build`] materializes it through [`FaultTreeBuilder`], so
//! every validity rule of the builder (acyclic triggering, triggered
//! events having exactly one trigger, …) applies to specs for free: an
//! invalid mutation simply fails to build and is discarded.

use sdft_ctmc::erlang;
use sdft_ft::{format, FaultTree, FaultTreeBuilder, FtError, GateKind, NodeId};

/// Failure behaviour of one basic event in a [`TreeSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventSpec {
    /// Static event with a fixed failure probability.
    Static {
        /// Probability of failure, in `[0, 1]`.
        probability: f64,
    },
    /// Always-on Erlang degradation with optional repair
    /// ([`erlang::repairable`]).
    Dynamic {
        /// Degradation phases (`k ≥ 1`).
        phases: usize,
        /// Per-phase failure rate.
        lambda: f64,
        /// Repair rate (`0` disables repair).
        mu: f64,
    },
    /// Cold spare: off until triggered, then exponential failure with
    /// repair ([`erlang::spare`]). Requires a trigger edge.
    Spare {
        /// Failure rate while on.
        lambda: f64,
        /// Repair rate.
        mu: f64,
    },
    /// Triggered Erlang degradation ([`erlang::triggered`]). Requires a
    /// trigger edge.
    TriggeredErlang {
        /// Degradation phases (`k ≥ 1`).
        phases: usize,
        /// Per-phase failure rate while on.
        lambda: f64,
        /// Repair rate.
        mu: f64,
    },
}

impl EventSpec {
    /// Whether this event kind requires a trigger edge.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        matches!(
            self,
            EventSpec::Spare { .. } | EventSpec::TriggeredErlang { .. }
        )
    }

    /// Whether this event is dynamic (plain or triggered).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, EventSpec::Static { .. })
    }

    /// The closest untriggered equivalent, used when a shrink step drops
    /// this event's trigger edge.
    #[must_use]
    pub fn untriggered(&self) -> EventSpec {
        match *self {
            EventSpec::Spare { lambda, mu } => EventSpec::Dynamic {
                phases: 1,
                lambda,
                mu,
            },
            EventSpec::TriggeredErlang { phases, lambda, mu } => {
                EventSpec::Dynamic { phases, lambda, mu }
            }
            other => other,
        }
    }
}

/// One gate of a [`TreeSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateSpec {
    /// Logical type of the gate.
    pub kind: GateKind,
    /// Inputs as node references: event `i` is node `i`, gate `g` is
    /// node `events.len() + g`. A gate may only reference events and
    /// *earlier* gates.
    pub inputs: Vec<usize>,
}

/// A mutable description of an SD fault tree (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// Basic events; event `i` is named `e{i}`.
    pub events: Vec<EventSpec>,
    /// Gates in creation order; gate `g` is named `g{g}` and is node
    /// `events.len() + g`.
    pub gates: Vec<GateSpec>,
    /// Trigger edges `(gate index, event index)`; every triggered-kind
    /// event must appear exactly once.
    pub triggers: Vec<(usize, usize)>,
    /// Node reference of the top gate.
    pub top: usize,
}

impl TreeSpec {
    /// Total number of nodes (events + gates).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.events.len() + self.gates.len()
    }

    /// The node reference of gate `g`.
    #[must_use]
    pub fn gate_ref(&self, g: usize) -> usize {
        self.events.len() + g
    }

    /// Materialize the spec into a validated [`FaultTree`].
    ///
    /// # Errors
    ///
    /// Returns any [`FtError`] the builder raises — specs produced by
    /// the generator always build; mutated specs may legitimately fail
    /// (e.g. a hoist created cyclic triggering) and callers discard
    /// such candidates.
    pub fn build(&self) -> Result<FaultTree, FtError> {
        let mut b = FaultTreeBuilder::new();
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.num_nodes());
        for (i, event) in self.events.iter().enumerate() {
            let name = format!("e{i}");
            let id = match *event {
                EventSpec::Static { probability } => b.static_event(&name, probability)?,
                EventSpec::Dynamic { phases, lambda, mu } => {
                    b.dynamic_event(&name, erlang::repairable(phases, lambda, mu)?)?
                }
                EventSpec::Spare { lambda, mu } => {
                    b.triggered_event(&name, erlang::spare(lambda, mu)?)?
                }
                EventSpec::TriggeredErlang { phases, lambda, mu } => {
                    b.triggered_event(&name, erlang::triggered(phases, lambda, mu)?)?
                }
            };
            ids.push(id);
        }
        for (g, gate) in self.gates.iter().enumerate() {
            let this = self.gate_ref(g);
            let inputs: Result<Vec<NodeId>, FtError> = gate
                .inputs
                .iter()
                .map(|&r| {
                    if r < this && r < ids.len() {
                        Ok(ids[r])
                    } else {
                        Err(FtError::UnknownName {
                            name: format!("node #{r} referenced by gate g{g}"),
                        })
                    }
                })
                .collect();
            ids.push(b.gate(&format!("g{g}"), gate.kind, inputs?)?);
        }
        for &(g, e) in &self.triggers {
            b.trigger(ids[self.gate_ref(g)], ids[e])?;
        }
        let top = *ids.get(self.top).ok_or(FtError::MissingTop)?;
        b.top(top);
        b.build()
    }

    /// Serialize the spec in the `sdft-ft` text format (the replayable
    /// counterexample format committed under `tests/corpus/`).
    ///
    /// # Errors
    ///
    /// Returns an error if the spec does not build.
    pub fn to_ft_text(&self) -> Result<String, FtError> {
        Ok(format::to_string(&self.build()?))
    }

    /// Drop nodes unreachable from the top gate and from the trigger
    /// sources of reachable triggered events, remapping all references.
    ///
    /// Returns `None` when nothing was removed.
    #[must_use]
    pub fn compacted(&self) -> Option<TreeSpec> {
        let ne = self.events.len();
        let mut live = vec![false; self.num_nodes()];
        let mut stack = vec![self.top];
        while let Some(n) = stack.pop() {
            if live[n] {
                continue;
            }
            live[n] = true;
            if n >= ne {
                stack.extend(self.gates[n - ne].inputs.iter().copied());
            } else if self.events[n].is_triggered() {
                // Keep the trigger source alive: the event's behaviour
                // depends on its whole subtree.
                for &(g, e) in &self.triggers {
                    if e == n {
                        stack.push(self.gate_ref(g));
                    }
                }
            }
        }
        if live.iter().all(|&l| l) {
            return None;
        }
        let mut remap = vec![usize::MAX; self.num_nodes()];
        let mut events = Vec::new();
        for (i, event) in self.events.iter().enumerate() {
            if live[i] {
                remap[i] = events.len();
                events.push(*event);
            }
        }
        let live_events = events.len();
        let mut gates = Vec::new();
        for (g, gate) in self.gates.iter().enumerate() {
            if live[ne + g] {
                remap[ne + g] = live_events + gates.len();
                gates.push(GateSpec {
                    kind: gate.kind,
                    inputs: gate.inputs.iter().map(|&r| remap[r]).collect(),
                });
            }
        }
        let triggers = self
            .triggers
            .iter()
            .filter(|&&(g, e)| live[ne + g] && live[e])
            .map(|&(g, e)| (remap[ne + g] - live_events, remap[e]))
            .collect();
        Some(TreeSpec {
            events,
            gates,
            triggers,
            top: remap[self.top],
        })
    }
}
