//! Semantics-preserving tree rewrites for the metamorphic suite.
//!
//! Each rewrite returns a *new* [`FaultTree`] whose top-gate function —
//! and, crucially, whose per-cutset quantification — is unchanged, so
//! the pipeline must report the same frequency on both trees (up to
//! floating-point summation noise).
//!
//! The subtlety: trigger classification (§V-A) is *syntax*-sensitive.
//! Flattening `OR(d1, OR(d2, s))` into `OR(d1, d2, s)` inside a
//! triggering gate's subtree can flip the class from static branching
//! to static joins and legitimately change the quantified frequency.
//! The rewrites here therefore only touch gates that lie *outside*
//! every triggering gate's subtree, which leaves all classifications —
//! and hence the per-cutset models — untouched.

use sdft_ft::{FaultTree, FaultTreeBuilder, FtError, GateKind, NodeId};
use std::collections::{HashMap, HashSet};

/// Copy `tree` node-for-node, letting `map_inputs` replace each gate's
/// input list (in *original* node ids) and `extra` inject freshly built
/// nodes right before a given gate is copied.
fn copy_tree_with<F>(tree: &FaultTree, mut map_inputs: F) -> Result<FaultTree, FtError>
where
    F: FnMut(&mut FaultTreeBuilder, &HashMap<NodeId, NodeId>, NodeId) -> Option<Vec<NodeId>>,
{
    let mut b = FaultTreeBuilder::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for id in tree.node_ids() {
        let name = tree.name(id).to_owned();
        let new = if tree.is_gate(id) {
            let kind = tree.gate_kind(id).expect("gate");
            let inputs = match map_inputs(&mut b, &map, id) {
                Some(new_inputs) => new_inputs,
                None => tree.gate_inputs(id).iter().map(|o| map[o]).collect(),
            };
            b.gate(&name, kind, inputs)?
        } else {
            match tree.behavior(id).expect("basic event") {
                sdft_ft::Behavior::Static { probability } => b.static_event(&name, *probability)?,
                sdft_ft::Behavior::Dynamic(chain) => b.dynamic_event(&name, chain.clone())?,
                sdft_ft::Behavior::Triggered(chain) => b.triggered_event(&name, chain.clone())?,
            }
        };
        map.insert(id, new);
    }
    for event in tree.basic_events() {
        if let Some(source) = tree.trigger_source(event) {
            b.trigger(map[&source], map[&event])?;
        }
    }
    b.top(map[&tree.top()]);
    b.build()
}

/// The set of gates lying inside some triggering gate's subtree
/// (including the triggering gates themselves). Rewrites must not
/// restructure these.
fn trigger_protected_gates(tree: &FaultTree) -> HashSet<NodeId> {
    let mut protected = HashSet::new();
    for gate in tree.gates() {
        if !tree.triggers_of(gate).is_empty() {
            protected.extend(tree.subtree_gates(gate));
        }
    }
    protected
}

/// Flatten one nested same-kind AND/OR pair: `OR(…, OR(a, b), …)`
/// becomes `OR(…, a, b, …)` (associativity). Only parents outside all
/// trigger subtrees are considered; the inlined child gate is left in
/// place (it may be shared or act as a trigger source).
///
/// Returns `None` when the tree has no such pair.
///
/// # Errors
///
/// Propagates builder errors (which indicate a harness bug — the
/// rewrite preserves every validity condition).
pub fn flatten_once(tree: &FaultTree) -> Result<Option<FaultTree>, FtError> {
    let protected = trigger_protected_gates(tree);
    let mut target: Option<NodeId> = None;
    for gate in tree.gates() {
        if protected.contains(&gate) {
            continue;
        }
        let kind = tree.gate_kind(gate).expect("gate");
        if !matches!(kind, GateKind::And | GateKind::Or) {
            continue;
        }
        if tree
            .gate_inputs(gate)
            .iter()
            .any(|&c| tree.gate_kind(c) == Some(kind))
        {
            target = Some(gate);
            break;
        }
    }
    let Some(target) = target else {
        return Ok(None);
    };
    let kind = tree.gate_kind(target);
    let tree2 = copy_tree_with(tree, |_, map, gate| {
        if gate != target {
            return None;
        }
        let mut inputs = Vec::new();
        for &c in tree.gate_inputs(gate) {
            if tree.gate_kind(c) == kind {
                inputs.extend(tree.gate_inputs(c).iter().map(|o| map[o]));
            } else {
                inputs.push(map[&c]);
            }
        }
        Some(inputs)
    })?;
    Ok(Some(tree2))
}

/// Apply the absorption law once: pick an OR gate `P` outside all
/// trigger subtrees with input `x`, and extend it with a fresh gate
/// `AND(x, y)` for some other node `y`. Since `x ∨ (x ∧ y) = x`, the
/// top-gate function — and the minimal cutsets — are unchanged.
///
/// Returns `None` when no suitable OR gate exists.
///
/// # Errors
///
/// Propagates builder errors (harness bug).
pub fn absorb_once(tree: &FaultTree) -> Result<Option<FaultTree>, FtError> {
    let protected = trigger_protected_gates(tree);
    let mut choice: Option<(NodeId, NodeId, NodeId)> = None;
    for gate in tree.gates() {
        if protected.contains(&gate) || tree.gate_kind(gate) != Some(GateKind::Or) {
            continue;
        }
        let x = tree.gate_inputs(gate)[0];
        // The duplicated partner must already exist when `gate` is
        // copied, i.e. precede it in creation order.
        let y = tree
            .basic_events()
            .find(|&e| e != x && e.index() < gate.index());
        if let Some(y) = y {
            choice = Some((gate, x, y));
            break;
        }
    }
    let Some((target, x, y)) = choice else {
        return Ok(None);
    };
    let tree2 = copy_tree_with(tree, |b, map, gate| {
        if gate != target {
            return None;
        }
        let dup = b
            .and("oracle_absorb", [map[&x], map[&y]])
            .expect("fresh absorption gate");
        let mut inputs: Vec<NodeId> = tree.gate_inputs(gate).iter().map(|o| map[o]).collect();
        inputs.push(dup);
        Some(inputs)
    })?;
    Ok(Some(tree2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::format;

    const EXAMPLE: &str = "top t\n\
        basic a 0.1\n\
        basic b 0.2\n\
        basic c 0.3\n\
        gate inner or a b\n\
        gate t or inner c\n";

    #[test]
    fn flatten_inlines_nested_or() {
        let tree = format::parse_str(EXAMPLE).unwrap();
        let flat = flatten_once(&tree).unwrap().expect("flattenable");
        let top = flat.top();
        assert_eq!(flat.gate_inputs(top).len(), 3);
        assert!(
            (flat.exact_static_probability().unwrap() - tree.exact_static_probability().unwrap())
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn absorb_keeps_function() {
        let tree = format::parse_str(EXAMPLE).unwrap();
        let dup = absorb_once(&tree).unwrap().expect("absorbable");
        assert_eq!(dup.num_gates(), tree.num_gates() + 1);
        assert!(
            (dup.exact_static_probability().unwrap() - tree.exact_static_probability().unwrap())
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn rewrites_leave_trigger_subtrees_alone() {
        let tree = format::parse_str(
            "top t\n\
             basic a 0.1\n\
             dynamic x erlang k=1 lambda=0.01 mu=0\n\
             dynamic d spare lambda=0.01 mu=0.1\n\
             gate inner or a x\n\
             gate src or inner x\n\
             gate t and src d\n\
             trigger src d\n",
        )
        .unwrap();
        // The only nested same-kind pair (src → inner) is inside the
        // triggering gate's subtree, so nothing may be flattened.
        assert!(flatten_once(&tree).unwrap().is_none());
    }
}
