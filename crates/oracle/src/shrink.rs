//! Greedy counterexample minimization.
//!
//! When a check disagrees, the driver shrinks the offending
//! [`TreeSpec`] while preserving *that* check's failure: drop trigger
//! edges, simplify event behaviours, drop gate inputs, hoist
//! grandchildren, round rates, and finally garbage-collect unreachable
//! nodes. Each candidate is re-checked from scratch; candidates that no
//! longer build (e.g. a hoist that would create cyclic triggering) are
//! discarded automatically.

use crate::check::{check_spec, CheckConfig};
use crate::spec::{EventSpec, TreeSpec};
use sdft_ft::GateKind;

/// Round to one significant digit (shrinks `0.037281…` to `0.04`).
fn round_1sig(x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let mag = 10f64.powf(x.abs().log10().floor());
    (x / mag).round() * mag
}

fn fails_same(spec: &TreeSpec, cfg: &CheckConfig, check: &str) -> bool {
    check_spec(spec, cfg)
        .disagreements
        .iter()
        .any(|d| d.check == check)
}

/// All single-step shrink candidates of `spec`, smallest-effect last so
/// structural deletions are preferred.
fn candidates(spec: &TreeSpec) -> Vec<TreeSpec> {
    let mut out = Vec::new();

    // Drop a trigger edge, demoting the event to its untriggered twin.
    for (t, &(_, e)) in spec.triggers.iter().enumerate() {
        let mut c = spec.clone();
        c.triggers.remove(t);
        c.events[e] = c.events[e].untriggered();
        out.push(c);
    }

    // Demote a dynamic event to a static one.
    for (i, event) in spec.events.iter().enumerate() {
        if matches!(event, EventSpec::Dynamic { .. }) {
            let mut c = spec.clone();
            c.events[i] = EventSpec::Static { probability: 0.1 };
            out.push(c);
        }
    }

    // Drop one gate input (clamping at-least thresholds).
    for (g, gate) in spec.gates.iter().enumerate() {
        if gate.inputs.len() <= 1 {
            continue;
        }
        for i in 0..gate.inputs.len() {
            let mut c = spec.clone();
            c.gates[g].inputs.remove(i);
            if let GateKind::AtLeast(k) = c.gates[g].kind {
                let n = c.gates[g].inputs.len() as u32;
                if k > n {
                    c.gates[g].kind = GateKind::AtLeast(n);
                }
            }
            out.push(c);
        }
    }

    // Hoist: replace a gate input that is itself a gate by one of that
    // gate's own inputs.
    for (g, gate) in spec.gates.iter().enumerate() {
        for (i, &r) in gate.inputs.iter().enumerate() {
            if r < spec.events.len() {
                continue;
            }
            for &grand in &spec.gates[r - spec.events.len()].inputs {
                let mut c = spec.clone();
                c.gates[g].inputs[i] = grand;
                out.push(c);
            }
        }
    }

    // Focus on a subtree: make an input of the top gate the new top.
    if spec.top >= spec.events.len() {
        for &r in &spec.gates[spec.top - spec.events.len()].inputs {
            if r >= spec.events.len() {
                let mut c = spec.clone();
                c.top = r;
                out.push(c);
            }
        }
    }

    // Simplify event parameters.
    for (i, event) in spec.events.iter().enumerate() {
        let simpler: Vec<EventSpec> = match *event {
            EventSpec::Static { probability } => {
                let r = round_1sig(probability);
                if r == probability {
                    vec![]
                } else {
                    vec![EventSpec::Static { probability: r }]
                }
            }
            EventSpec::Dynamic { phases, lambda, mu } => {
                let mut v = Vec::new();
                if phases > 1 {
                    v.push(EventSpec::Dynamic {
                        phases: 1,
                        lambda,
                        mu,
                    });
                }
                if mu != 0.0 {
                    v.push(EventSpec::Dynamic {
                        phases,
                        lambda,
                        mu: 0.0,
                    });
                }
                if round_1sig(lambda) != lambda {
                    v.push(EventSpec::Dynamic {
                        phases,
                        lambda: round_1sig(lambda),
                        mu,
                    });
                }
                v
            }
            EventSpec::Spare { lambda, mu } => {
                let mut v = Vec::new();
                if mu != 0.0 {
                    v.push(EventSpec::Spare { lambda, mu: 0.0 });
                }
                if round_1sig(lambda) != lambda {
                    v.push(EventSpec::Spare {
                        lambda: round_1sig(lambda),
                        mu,
                    });
                }
                v
            }
            EventSpec::TriggeredErlang { phases, lambda, mu } => {
                let mut v = vec![EventSpec::Spare { lambda, mu }];
                if phases > 1 {
                    v.push(EventSpec::TriggeredErlang {
                        phases: 1,
                        lambda,
                        mu,
                    });
                }
                if round_1sig(lambda) != lambda {
                    v.push(EventSpec::TriggeredErlang {
                        phases,
                        lambda: round_1sig(lambda),
                        mu,
                    });
                }
                v
            }
        };
        for s in simpler {
            let mut c = spec.clone();
            c.events[i] = s;
            out.push(c);
        }
    }

    out
}

/// Shrink `spec` while check `check` keeps failing, spending at most
/// `max_attempts` re-checks. Returns the smallest failing spec found
/// (possibly the input itself).
#[must_use]
pub fn shrink(spec: &TreeSpec, cfg: &CheckConfig, check: &str, max_attempts: usize) -> TreeSpec {
    let mut current = spec.clone();
    let mut attempts = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if attempts >= max_attempts {
                break 'outer;
            }
            if cand.build().is_err() {
                continue;
            }
            attempts += 1;
            if fails_same(&cand, cfg, check) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    if let Some(compact) = current.compacted() {
        if compact.build().is_ok() && fails_same(&compact, cfg, check) {
            current = compact;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_seeded, GeneratorConfig};

    #[test]
    fn round_1sig_rounds() {
        assert!((round_1sig(0.037_281) - 0.04).abs() < 1e-12);
        assert!((round_1sig(123.4) - 100.0).abs() < 1e-9);
        assert_eq!(round_1sig(0.0), 0.0);
    }

    #[test]
    fn shrink_preserves_an_artificial_failure() {
        // "frequency_finite" cannot actually fail, so fabricate a check
        // that always fails by shrinking against a check name that the
        // harness reports for *this* spec: use a tautological predicate
        // through fails_same on a real failing name is impossible here,
        // so instead verify that shrinking against a never-failing name
        // returns the input unchanged.
        let spec = generate_seeded(&GeneratorConfig::small(), 7);
        let cfg = CheckConfig {
            sim_samples: 0,
            metamorphic: false,
            check_cache_consistency: false,
            ..CheckConfig::default()
        };
        let shrunk = shrink(&spec, &cfg, "never_fails", 10);
        assert_eq!(shrunk, spec);
    }

    #[test]
    fn candidates_shrink_structure() {
        let spec = generate_seeded(&GeneratorConfig::medium(), 3);
        let cands = candidates(&spec);
        assert!(!cands.is_empty());
        // Every candidate either loses structure or simplifies a value.
        for c in &cands {
            assert!(c.num_nodes() <= spec.num_nodes(), "candidate grew: {c:?}");
        }
    }
}
