//! Metamorphic invariants: rewrites with a *predicted* effect on the
//! quantified frequency.
//!
//! Semantics-preserving rewrites (gate flattening, absorption-law event
//! duplication — both restricted to gates outside trigger subtrees, see
//! [`crate::rewrite`]) must reproduce the frequency to within pure
//! floating-point summation noise. The trigger-to-AND translation must
//! reproduce `static_rea` through a second, independent analysis of
//! `FT̄`. Monotone perturbations (raise a λ, lower a μ, raise a static
//! probability, AND/OR a fresh event onto the top gate) must move the
//! frequency in the predicted direction.

use crate::check::{analysis_options, close_rel, leq_slack, CheckConfig, Outcome};
use crate::rewrite::{absorb_once, flatten_once};
use crate::spec::{EventSpec, GateSpec, TreeSpec};
use sdft_core::{analyze, translate, worst_case_probabilities, AnalysisResult};
use sdft_ft::{FaultTree, GateKind};

pub(crate) fn metamorphic_checks(
    tree: &FaultTree,
    spec: Option<&TreeSpec>,
    base: &AnalysisResult,
    cfg: &CheckConfig,
    out: &mut Outcome,
) {
    let opts = analysis_options(cfg);

    // --- Gate flattening: bitwise-level invariance. -----------------
    match flatten_once(tree) {
        Ok(Some(flat)) => match analyze(&flat, &opts) {
            Ok(r) => out.check(
                close_rel(r.frequency, base.frequency, cfg.tol_exact)
                    && close_rel(r.static_rea, base.static_rea, cfg.tol_exact),
                "metamorphic_flatten",
                || {
                    format!(
                        "flattening a same-kind gate pair changed the frequency: \
                         {} → {} (static REA {} → {})",
                        base.frequency, r.frequency, base.static_rea, r.static_rea
                    )
                },
            ),
            Err(e) => out.fail(
                "metamorphic_flatten",
                format!("analysis of flattened tree failed: {e}"),
            ),
        },
        Ok(None) => out.skip(),
        Err(e) => out.fail("metamorphic_flatten", format!("rewrite failed: {e}")),
    }

    // --- Absorption-law duplication under OR. -----------------------
    match absorb_once(tree) {
        Ok(Some(dup)) => match analyze(&dup, &opts) {
            Ok(r) => out.check(
                close_rel(r.frequency, base.frequency, cfg.tol_exact)
                    && close_rel(r.static_rea, base.static_rea, cfg.tol_exact),
                "metamorphic_absorb",
                || {
                    format!(
                        "absorption-law duplication changed the frequency: {} → {} \
                         (static REA {} → {})",
                        base.frequency, r.frequency, base.static_rea, r.static_rea
                    )
                },
            ),
            Err(e) => out.fail(
                "metamorphic_absorb",
                format!("analysis of duplicated tree failed: {e}"),
            ),
        },
        Ok(None) => out.skip(),
        Err(e) => out.fail("metamorphic_absorb", format!("rewrite failed: {e}")),
    }

    // --- Trigger-to-AND translation reproduces static_rea. ----------
    if tree.dynamic_basic_events().next().is_some() {
        let translated = worst_case_probabilities(tree, cfg.horizon, cfg.epsilon)
            .and_then(|wc| translate(tree, &wc));
        match translated {
            Ok(t) => match analyze(&t.tree, &opts) {
                Ok(r) => out.check(
                    close_rel(r.frequency, base.static_rea, cfg.tol_cross),
                    "metamorphic_translate",
                    || {
                        format!(
                            "analyzing the translated static tree FT̄ gives {}, but the \
                             pipeline's static REA is {}",
                            r.frequency, base.static_rea
                        )
                    },
                ),
                Err(e) => out.fail(
                    "metamorphic_translate",
                    format!("analysis of FT̄ failed: {e}"),
                ),
            },
            Err(e) => out.fail("metamorphic_translate", format!("translation failed: {e}")),
        }
    } else {
        out.skip();
    }

    // --- Spec-level monotone perturbations. -------------------------
    let Some(spec) = spec else {
        return;
    };
    monotone_checks(spec, base, cfg, out);
}

/// Analyze a perturbed spec; `None` (with a recorded failure) when the
/// perturbed spec no longer builds or analyzes — both indicate harness
/// or engine bugs worth shrinking.
fn analyze_spec(
    spec: &TreeSpec,
    cfg: &CheckConfig,
    name: &str,
    out: &mut Outcome,
) -> Option<AnalysisResult> {
    let tree = match spec.build() {
        Ok(t) => t,
        Err(e) => {
            out.fail(name, format!("perturbed spec does not build: {e}"));
            return None;
        }
    };
    match analyze(&tree, &analysis_options(cfg)) {
        Ok(r) => Some(r),
        Err(e) => {
            out.fail(name, format!("analysis of perturbed tree failed: {e}"));
            None
        }
    }
}

fn monotone_checks(spec: &TreeSpec, base: &AnalysisResult, cfg: &CheckConfig, out: &mut Outcome) {
    // Raising a failure rate must not lower the frequency.
    if let Some(i) = spec.events.iter().position(EventSpec::is_dynamic) {
        let mut up = spec.clone();
        match &mut up.events[i] {
            EventSpec::Dynamic { lambda, .. }
            | EventSpec::Spare { lambda, .. }
            | EventSpec::TriggeredErlang { lambda, .. } => *lambda *= 2.0,
            EventSpec::Static { .. } => unreachable!("position() picked a dynamic event"),
        }
        if let Some(r) = analyze_spec(&up, cfg, "monotone_lambda", out) {
            out.check(
                leq_slack(base.frequency, r.frequency, cfg.tol_cross),
                "monotone_lambda",
                || {
                    format!(
                        "doubling λ of e{i} lowered the frequency: {} → {}",
                        base.frequency, r.frequency
                    )
                },
            );
        }
    } else {
        out.skip();
    }

    // Lowering a repair rate must not lower the frequency.
    let repairable = spec.events.iter().position(|e| {
        matches!(
            e,
            EventSpec::Dynamic { mu, .. }
            | EventSpec::Spare { mu, .. }
            | EventSpec::TriggeredErlang { mu, .. }
            if *mu > 0.0
        )
    });
    if let Some(i) = repairable {
        let mut down = spec.clone();
        match &mut down.events[i] {
            EventSpec::Dynamic { mu, .. }
            | EventSpec::Spare { mu, .. }
            | EventSpec::TriggeredErlang { mu, .. } => *mu *= 0.5,
            EventSpec::Static { .. } => unreachable!("position() picked a repairable event"),
        }
        if let Some(r) = analyze_spec(&down, cfg, "monotone_mu", out) {
            out.check(
                leq_slack(base.frequency, r.frequency, cfg.tol_cross),
                "monotone_mu",
                || {
                    format!(
                        "halving μ of e{i} lowered the frequency: {} → {}",
                        base.frequency, r.frequency
                    )
                },
            );
        }
    } else {
        out.skip();
    }

    // Raising a static probability must not lower the frequency.
    let static_ev = spec
        .events
        .iter()
        .position(|e| matches!(e, EventSpec::Static { .. }));
    if let Some(i) = static_ev {
        let mut up = spec.clone();
        if let EventSpec::Static { probability } = &mut up.events[i] {
            *probability += 0.5 * (1.0 - *probability);
        }
        if let Some(r) = analyze_spec(&up, cfg, "monotone_prob", out) {
            out.check(
                leq_slack(base.frequency, r.frequency, cfg.tol_cross),
                "monotone_prob",
                || {
                    format!(
                        "raising the probability of e{i} lowered the frequency: {} → {}",
                        base.frequency, r.frequency
                    )
                },
            );
        }
    } else {
        out.skip();
    }

    // ANDing a fresh static event onto the top gate must not raise the
    // frequency; ORing one must not lower it.
    for (kind, name) in [
        (GateKind::And, "monotone_and_child"),
        (GateKind::Or, "monotone_or_child"),
    ] {
        let mut wrapped = spec.clone();
        wrapped.events.push(EventSpec::Static { probability: 0.5 });
        // Appending an event shifts every gate reference up by one.
        let shift = |r: usize| if r >= spec.events.len() { r + 1 } else { r };
        for gate in &mut wrapped.gates {
            for r in &mut gate.inputs {
                *r = shift(*r);
            }
        }
        wrapped.top = shift(wrapped.top);
        let new_event = spec.events.len();
        let top_ref = wrapped.gate_ref(wrapped.gates.len());
        wrapped.gates.push(GateSpec {
            kind,
            inputs: vec![wrapped.top, new_event],
        });
        wrapped.top = top_ref;
        if let Some(r) = analyze_spec(&wrapped, cfg, name, out) {
            let ok = match kind {
                GateKind::And => leq_slack(r.frequency, base.frequency, cfg.tol_cross),
                _ => leq_slack(base.frequency, r.frequency, cfg.tol_cross),
            };
            out.check(ok, name, || {
                format!(
                    "wrapping the top gate in {kind:?} with a p = 0.5 event moved the \
                     frequency the wrong way: {} → {}",
                    base.frequency, r.frequency
                )
            });
        }
    }
}
