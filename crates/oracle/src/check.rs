//! The N-way differential engine matrix and its tolerances.
//!
//! For every generated tree the harness runs the paper's cutset
//! pipeline and cross-checks it against whichever referees apply:
//!
//! * **product chain** (small trees) — the exact SD semantics. The
//!   rare-event approximation must satisfy the Bonferroni sandwich
//!   `exact ≤ freq` and, for trees without triggered events (where the
//!   per-cutset models are exact marginals and components independent),
//!   `freq ≤ exact + Σ_{i<j} ∏_{e∈Ci∪Cj} wc(e)`.
//! * **simulation** (larger trees) — a statistical referee with a
//!   Bonferroni-adjusted Wilson interval (`z` covers the many intervals
//!   a whole oracle run consults).
//! * **BDD** — on the worst-case-translated static tree `FT̄`, MOCUS
//!   and the BDD must produce the *identical* minimal cutset list, the
//!   cutoff run must match the exhaustive list filtered at the cutoff,
//!   and the pipeline's `static_rea` must sandwich the BDD's exact
//!   probability of `FT̄`.
//! * **metamorphic invariants** (see [`crate::metamorphic`]).
//!
//! Every failed comparison becomes a [`Disagreement`] with a stable
//! check name; the shrinker minimizes a spec while preserving *that*
//! check's failure.

use crate::spec::TreeSpec;
use sdft_bdd::Bdd;
use sdft_core::{
    analyze, translate, worst_case_probabilities, AnalysisOptions, AnalysisResult, Backend,
    CoreError,
};
use sdft_ft::{Behavior, EventProbabilities, FaultTree};
use sdft_mocus::MocusOptions;
use sdft_product::{failure_probability, ProductOptions};
use sdft_sim::{simulate, SimOptions};

/// Tolerances and budgets for one tree's worth of checks.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckConfig {
    /// Mission horizon `t`.
    pub horizon: f64,
    /// Transient-analysis truncation error.
    pub epsilon: f64,
    /// Relative tolerance for checks that should agree exactly up to
    /// floating-point noise.
    pub tol_exact: f64,
    /// Relative tolerance for checks crossing independent numerical
    /// paths (translation, monotone perturbations).
    pub tol_cross: f64,
    /// Product-chain state budget; trees whose estimated product
    /// exceeds it fall back to the simulation referee.
    pub max_product_states: usize,
    /// Simulation samples (`0` disables the statistical referee).
    pub sim_samples: usize,
    /// Wilson-score `z` for the simulation interval. The default `4.1`
    /// is Bonferroni-adjusted for ≈ 2000 intervals at a 5% family-wise
    /// error rate.
    pub sim_z: f64,
    /// Simulation seed (set per tree by the driver).
    pub sim_seed: u64,
    /// Run the metamorphic suite.
    pub metamorphic: bool,
    /// Re-run the base analysis with the quantification cache disabled
    /// and require bitwise-identical results.
    pub check_cache_consistency: bool,
    /// Re-run the base analysis with the opposite engine (streaming vs
    /// batch) and require bitwise-identical frequencies and identical
    /// cutset lists.
    pub check_streaming_consistency: bool,
    /// Re-run the base analysis with the modular-BDD backend and require
    /// bitwise-identical frequencies and cutset lists, a sound exact
    /// static probability, and bitwise agreement between the BDD
    /// backend's own streaming and batch runs.
    pub check_backend_consistency: bool,
    /// Shard count for the streaming subsumption filter (`0` = the
    /// engine's automatic choice; the driver cycles it per tree so the
    /// campaign covers the sharded reconciliation paths).
    pub filter_shards: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            horizon: 12.0,
            epsilon: 1e-12,
            tol_exact: 1e-12,
            tol_cross: 1e-9,
            max_product_states: 50_000,
            sim_samples: 20_000,
            sim_z: 4.1,
            sim_seed: 0x0_5EED,
            metamorphic: true,
            check_cache_consistency: true,
            check_streaming_consistency: true,
            check_backend_consistency: true,
            filter_shards: 0,
        }
    }
}

/// One failed cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct Disagreement {
    /// Stable name of the check that failed (shrinking preserves it).
    pub check: String,
    /// Human-readable evidence.
    pub details: String,
}

/// Tally of one tree's (or one whole run's) checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Outcome {
    /// Checks that ran and agreed.
    pub passed: usize,
    /// Checks skipped (budget exceeded, not applicable).
    pub skipped: usize,
    /// Checks that failed.
    pub disagreements: Vec<Disagreement>,
}

impl Outcome {
    pub(crate) fn pass(&mut self) {
        self.passed += 1;
    }

    pub(crate) fn skip(&mut self) {
        self.skipped += 1;
    }

    pub(crate) fn fail(&mut self, check: &str, details: String) {
        self.disagreements.push(Disagreement {
            check: check.to_owned(),
            details,
        });
    }

    pub(crate) fn check(&mut self, ok: bool, name: &str, details: impl FnOnce() -> String) {
        if ok {
            self.pass();
        } else {
            self.fail(name, details());
        }
    }

    /// Fold another outcome into this one.
    pub fn merge(&mut self, other: Outcome) {
        self.passed += other.passed;
        self.skipped += other.skipped;
        self.disagreements.extend(other.disagreements);
    }
}

/// `|a − b| ≤ rel · max(|a|, |b|)` with a tiny absolute floor.
#[must_use]
pub fn close_rel(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()) + 1e-300
}

/// `a ≤ b` up to relative slack plus a small absolute term covering
/// accumulated transient-analysis truncation error.
#[must_use]
pub fn leq_slack(a: f64, b: f64, rel: f64) -> bool {
    a <= b + rel * a.abs().max(b.abs()) + 1e-9
}

/// The pipeline options every oracle analysis uses: exhaustive MOCUS
/// (no cutoff — metamorphic rewrites must not shift borderline
/// cutsets), single-threaded for determinism on any host.
#[must_use]
pub fn analysis_options(cfg: &CheckConfig) -> AnalysisOptions {
    let mut opts = AnalysisOptions::new(cfg.horizon);
    opts.mocus = MocusOptions::exhaustive();
    opts.mocus.threads = 1;
    opts.threads = 1;
    opts.filter_shards = cfg.filter_shards;
    opts.epsilon = cfg.epsilon;
    opts
}

/// Upper bound on the product chain's state count: the product of the
/// per-component chain sizes (statics contribute a frozen 2-state
/// chain).
#[must_use]
pub fn product_size_estimate(tree: &FaultTree) -> f64 {
    let mut size = 1.0_f64;
    for event in tree.basic_events() {
        size *= match tree.behavior(event).expect("basic event") {
            Behavior::Static { .. } => 2.0,
            Behavior::Dynamic(c) => c.len() as f64,
            Behavior::Triggered(c) => c.len() as f64,
        };
    }
    size
}

/// Whether the tree contains triggered events (whose per-cutset models
/// are conservative over-approximations, voiding the two-sided
/// Bonferroni sandwich).
fn has_triggers(tree: &FaultTree) -> bool {
    tree.basic_events()
        .any(|e| tree.trigger_source(e).is_some())
}

/// `Σ_{i<j} ∏_{e ∈ Ci ∪ Cj} wc(e)` over the reported cutsets — the
/// Bonferroni pair term bounding how far the rare-event sum may exceed
/// the exact union probability. Falls back to the coarser
/// `Σ_{i<j} √(p̃i·p̃j)` bound above `cap` cutsets.
fn pair_bound(result: &AnalysisResult, wc: &EventProbabilities, cap: usize) -> f64 {
    let cutsets = &result.cutsets;
    if cutsets.len() > cap {
        let sqrt_sum: f64 = cutsets
            .iter()
            .map(|c| c.static_probability.max(0.0).sqrt())
            .sum();
        let sq_sum: f64 = cutsets.iter().map(|c| c.static_probability.max(0.0)).sum();
        return 0.5 * (sqrt_sum * sqrt_sum - sq_sum).max(0.0);
    }
    let mut bound = 0.0;
    for i in 0..cutsets.len() {
        for j in i + 1..cutsets.len() {
            let (a, b) = (cutsets[i].cutset.events(), cutsets[j].cutset.events());
            // Product over the merged union of the two sorted id lists.
            let (mut x, mut y, mut p) = (0, 0, 1.0_f64);
            while x < a.len() || y < b.len() {
                let e = if y >= b.len() || (x < a.len() && a[x] <= b[y]) {
                    let e = a[x];
                    if y < b.len() && b[y] == e {
                        y += 1;
                    }
                    x += 1;
                    e
                } else {
                    let e = b[y];
                    y += 1;
                    e
                };
                p *= wc.get(e);
            }
            bound += p;
        }
    }
    bound
}

/// Wilson score interval with an explicit `z`.
fn wilson(failures: usize, samples: usize, z: f64) -> (f64, f64) {
    if samples == 0 {
        return (0.0, 1.0);
    }
    let n = samples as f64;
    let p = failures as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Run the full engine matrix (and, if enabled, the metamorphic suite)
/// on a spec, including the spec-level monotone perturbations.
#[must_use]
pub fn check_spec(spec: &TreeSpec, cfg: &CheckConfig) -> Outcome {
    let mut out = Outcome::default();
    let tree = match spec.build() {
        Ok(tree) => tree,
        Err(e) => {
            out.fail("spec_build", format!("spec does not build: {e}"));
            return out;
        }
    };
    check_tree_into(&tree, Some(spec), cfg, &mut out);
    out
}

/// Run the engine matrix on an already-built tree (corpus replay path;
/// spec-level perturbations are skipped).
#[must_use]
pub fn check_tree(tree: &FaultTree, cfg: &CheckConfig) -> Outcome {
    let mut out = Outcome::default();
    check_tree_into(tree, None, cfg, &mut out);
    out
}

pub(crate) fn check_tree_into(
    tree: &FaultTree,
    spec: Option<&TreeSpec>,
    cfg: &CheckConfig,
    out: &mut Outcome,
) {
    let opts = analysis_options(cfg);
    let base = match analyze(tree, &opts) {
        Ok(base) => base,
        Err(e) => {
            out.fail("pipeline", format!("pipeline failed: {e}"));
            return;
        }
    };

    // Internal invariants of the result itself.
    out.check(
        base.frequency.is_finite() && base.frequency >= 0.0,
        "frequency_finite",
        || format!("frequency = {}", base.frequency),
    );
    out.check(
        leq_slack(base.frequency, base.static_rea, cfg.tol_cross),
        "frequency_le_static_rea",
        || {
            format!(
                "frequency {} exceeds static REA {}",
                base.frequency, base.static_rea
            )
        },
    );
    out.check(
        base.cutsets
            .iter()
            .all(|c| c.probability >= 0.0 && c.probability <= 1.0 + 1e-9),
        "cutset_probabilities_in_range",
        || {
            format!(
                "out-of-range cutset probability among {:?}",
                base.cutsets
                    .iter()
                    .map(|c| c.probability)
                    .collect::<Vec<_>>()
            )
        },
    );

    if cfg.check_cache_consistency {
        let mut nocache = opts;
        nocache.cache = false;
        match analyze(tree, &nocache) {
            Ok(second) => out.check(
                second.frequency.to_bits() == base.frequency.to_bits()
                    && second.static_rea.to_bits() == base.static_rea.to_bits(),
                "cache_bitwise",
                || {
                    format!(
                        "cache on: freq {} rea {}; cache off: freq {} rea {}",
                        base.frequency, base.static_rea, second.frequency, second.static_rea
                    )
                },
            ),
            Err(e) => out.fail("cache_bitwise", format!("cache-off analysis failed: {e}")),
        }
    }

    if cfg.check_streaming_consistency {
        // The base run used whichever engine `opts` selected (streaming
        // by default); the other engine must agree bitwise, down to the
        // cutset list and per-cutset probabilities.
        let mut flipped = opts;
        flipped.streaming = !opts.streaming;
        match analyze(tree, &flipped) {
            Ok(second) => out.check(
                second.frequency.to_bits() == base.frequency.to_bits()
                    && second.static_rea.to_bits() == base.static_rea.to_bits()
                    && second.cutsets.len() == base.cutsets.len()
                    && second.cutsets.iter().zip(&base.cutsets).all(|(s, b)| {
                        s.cutset == b.cutset
                            && s.probability.to_bits() == b.probability.to_bits()
                            && s.chain_states == b.chain_states
                    }),
                "stream_bitwise",
                || {
                    format!(
                        "engines disagree: base(streaming={}) freq {} rea {} ({} cutsets); \
                         flipped freq {} rea {} ({} cutsets)",
                        opts.streaming,
                        base.frequency,
                        base.static_rea,
                        base.cutsets.len(),
                        second.frequency,
                        second.static_rea,
                        second.cutsets.len(),
                    )
                },
            ),
            Err(e) => out.fail(
                "stream_bitwise",
                format!("opposite-engine analysis failed: {e}"),
            ),
        }
    }

    if cfg.check_backend_consistency {
        check_backend_bdd(tree, &base, &opts, cfg, out);
    }

    let wc = match worst_case_probabilities(tree, cfg.horizon, cfg.epsilon) {
        Ok(wc) => wc,
        Err(e) => {
            out.fail(
                "worst_case",
                format!("worst-case probabilities failed: {e}"),
            );
            return;
        }
    };
    let pairs = pair_bound(&base, &wc, 400);
    let triggered = has_triggers(tree);

    // --- Exact referee: the product Markov chain. -------------------
    let product_budget = ProductOptions {
        max_states: cfg.max_product_states,
    };
    let mut product_checked = false;
    if product_size_estimate(tree) <= cfg.max_product_states as f64 {
        match failure_probability(tree, cfg.horizon, &product_budget) {
            Ok(exact) => {
                product_checked = true;
                out.check(
                    leq_slack(exact, base.frequency, cfg.tol_cross),
                    "product_soundness",
                    || {
                        format!(
                            "exact product probability {exact} exceeds pipeline frequency {}",
                            base.frequency
                        )
                    },
                );
                if triggered {
                    out.skip(); // two-sided sandwich needs exact marginals
                } else {
                    out.check(
                        leq_slack(base.frequency, exact + pairs, cfg.tol_cross),
                        "product_sandwich",
                        || {
                            format!(
                                "pipeline frequency {} exceeds exact {exact} + pair bound {pairs}",
                                base.frequency
                            )
                        },
                    );
                }
            }
            Err(sdft_product::ProductError::TooManyStates { .. }) => out.skip(),
            Err(e) => out.fail("product_error", format!("product chain failed: {e}")),
        }
    } else {
        out.skip();
    }

    // --- Statistical referee: Monte-Carlo simulation. ---------------
    if !product_checked && cfg.sim_samples > 0 {
        let sim_opts = SimOptions {
            samples: cfg.sim_samples,
            horizon: cfg.horizon,
            seed: cfg.sim_seed,
        };
        match simulate(tree, &sim_opts) {
            Ok(r) => {
                let (lo, hi) = wilson(r.failures, r.samples, cfg.sim_z);
                out.check(
                    leq_slack(lo, base.frequency, cfg.tol_cross),
                    "sim_soundness",
                    || {
                        format!(
                            "simulation lower bound {lo} ({}/{} failures, z = {}) exceeds \
                             pipeline frequency {}",
                            r.failures, r.samples, cfg.sim_z, base.frequency
                        )
                    },
                );
                if triggered {
                    out.skip();
                } else {
                    out.check(
                        leq_slack(base.frequency, hi + pairs, cfg.tol_cross),
                        "sim_sandwich",
                        || {
                            format!(
                                "pipeline frequency {} exceeds simulation upper bound {hi} \
                                 ({}/{} failures, z = {}) + pair bound {pairs}",
                                base.frequency, r.failures, r.samples, cfg.sim_z
                            )
                        },
                    );
                }
            }
            Err(e) => out.fail("sim_error", format!("simulation failed: {e}")),
        }
    } else if !product_checked {
        out.skip();
    }

    // --- Structural referee: MOCUS vs BDD on FT̄. --------------------
    check_translated_static(tree, &base, cfg, out);

    // --- Fully static trees: exact enumeration. ---------------------
    if tree.is_static() {
        out.check(
            close_rel(base.frequency, base.static_rea, cfg.tol_exact),
            "static_frequency_is_rea",
            || {
                format!(
                    "static tree: frequency {} ≠ static REA {}",
                    base.frequency, base.static_rea
                )
            },
        );
    }

    if cfg.metamorphic {
        crate::metamorphic::metamorphic_checks(tree, spec, &base, cfg, out);
    }
}

/// The full pipeline under `--backend bdd` against the MOCUS base run:
/// bitwise-identical frequencies and cutset lists (same quantification
/// over the same canonical list), a sound exact static probability
/// (above every single cutset, below the REA sum), and bitwise
/// agreement between the BDD backend's own streaming and batch runs.
/// Trees whose diagram exceeds the node budget skip the arm.
fn check_backend_bdd(
    tree: &FaultTree,
    base: &AnalysisResult,
    opts: &AnalysisOptions,
    cfg: &CheckConfig,
    out: &mut Outcome,
) {
    let mut bdd_opts = *opts;
    bdd_opts.backend = Backend::Bdd;
    let second = match analyze(tree, &bdd_opts) {
        Ok(second) => second,
        Err(CoreError::Bdd(_)) => {
            out.skip(); // node budget exceeded — no BDD backend for this tree
            return;
        }
        Err(e) => {
            out.fail("backend_bitwise", format!("--backend bdd failed: {e}"));
            return;
        }
    };
    out.check(
        second.frequency.to_bits() == base.frequency.to_bits()
            && second.static_rea.to_bits() == base.static_rea.to_bits()
            && second.cutsets.len() == base.cutsets.len()
            && second.cutsets.iter().zip(&base.cutsets).all(|(s, b)| {
                s.cutset == b.cutset
                    && s.probability.to_bits() == b.probability.to_bits()
                    && s.chain_states == b.chain_states
            }),
        "backend_bitwise",
        || {
            format!(
                "backends disagree: mocus freq {} rea {} ({} cutsets); \
                 bdd freq {} rea {} ({} cutsets)",
                base.frequency,
                base.static_rea,
                base.cutsets.len(),
                second.frequency,
                second.static_rea,
                second.cutsets.len(),
            )
        },
    );
    match second.exact_static {
        Some(exact) => {
            out.check(
                exact.is_finite() && (0.0..=1.0 + 1e-9).contains(&exact),
                "backend_exact_in_range",
                || format!("exact static probability {exact} out of [0, 1]"),
            );
            out.check(
                leq_slack(exact, second.static_rea, cfg.tol_cross),
                "backend_exact_le_rea",
                || {
                    format!(
                        "exact static probability {exact} exceeds static REA {}",
                        second.static_rea
                    )
                },
            );
            let max_cutset = second
                .cutsets
                .iter()
                .map(|c| c.static_probability)
                .fold(0.0_f64, f64::max);
            out.check(
                leq_slack(max_cutset, exact, cfg.tol_cross),
                "backend_exact_ge_max_cutset",
                || {
                    format!(
                        "largest cutset probability {max_cutset} exceeds \
                         exact static probability {exact}"
                    )
                },
            );
        }
        None => out.fail(
            "backend_exact_in_range",
            "--backend bdd reported no exact static probability".to_owned(),
        ),
    }
    // The BDD backend must agree with itself across engines, down to
    // the exact probability's bits (construction is deterministic).
    let mut flipped = bdd_opts;
    flipped.streaming = !bdd_opts.streaming;
    match analyze(tree, &flipped) {
        Ok(third) => out.check(
            third.frequency.to_bits() == second.frequency.to_bits()
                && third.exact_static.map(f64::to_bits) == second.exact_static.map(f64::to_bits)
                && third.cutsets.len() == second.cutsets.len(),
            "backend_stream_bitwise",
            || {
                format!(
                    "bdd engines disagree: streaming={} freq {} exact {:?}; \
                     flipped freq {} exact {:?}",
                    bdd_opts.streaming,
                    second.frequency,
                    second.exact_static,
                    third.frequency,
                    third.exact_static,
                )
            },
        ),
        Err(e) => out.fail(
            "backend_stream_bitwise",
            format!("opposite-engine --backend bdd analysis failed: {e}"),
        ),
    }
}

/// MOCUS vs BDD on the worst-case translated static tree `FT̄`: the
/// minimal cutset lists must be identical, the cutoff run must match
/// the filtered exhaustive list, and the pipeline's `static_rea` must
/// sandwich the BDD's exact probability.
fn check_translated_static(
    tree: &FaultTree,
    base: &AnalysisResult,
    cfg: &CheckConfig,
    out: &mut Outcome,
) {
    let wc = match worst_case_probabilities(tree, cfg.horizon, cfg.epsilon) {
        Ok(wc) => wc,
        Err(e) => {
            out.fail(
                "worst_case",
                format!("worst-case probabilities failed: {e}"),
            );
            return;
        }
    };
    let translated = match translate(tree, &wc) {
        Ok(t) => t,
        Err(e) => {
            out.fail(
                "translate",
                format!("trigger-to-AND translation failed: {e}"),
            );
            return;
        }
    };
    let ft_bar = &translated.tree;
    let probs = match EventProbabilities::from_static(ft_bar) {
        Ok(p) => p,
        Err(e) => {
            out.fail("translate", format!("FT̄ is not static: {e}"));
            return;
        }
    };
    let mut mocus_opts = MocusOptions::exhaustive();
    mocus_opts.threads = 1;
    let mocus_list = match sdft_mocus::minimal_cutsets(ft_bar, &probs, &mocus_opts) {
        Ok(l) => l,
        Err(e) => {
            out.fail("mocus_on_translated", format!("MOCUS failed on FT̄: {e}"));
            return;
        }
    };
    let mut bdd = match Bdd::new(ft_bar) {
        Ok(b) => b,
        Err(e) => {
            out.skip();
            let _ = e; // node budget exceeded — no BDD referee for this tree
            return;
        }
    };
    let bdd_list = match bdd.minimal_cutsets() {
        Ok(l) => l,
        Err(_) => {
            out.skip();
            return;
        }
    };
    let normalize = |list: &sdft_ft::CutsetList| -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = list
            .iter()
            .map(|c| {
                let mut ids: Vec<usize> = c.events().iter().map(|e| e.index()).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        v.sort();
        v
    };
    let m = normalize(&mocus_list);
    let d = normalize(&bdd_list);
    out.check(m == d, "mocus_vs_bdd_cutsets", || {
        format!(
            "MOCUS found {} minimal cutsets on FT̄, BDD found {}; MOCUS-only: {:?}, BDD-only: {:?}",
            m.len(),
            d.len(),
            m.iter().filter(|c| !d.contains(c)).collect::<Vec<_>>(),
            d.iter().filter(|c| !m.contains(c)).collect::<Vec<_>>(),
        )
    });

    // Cutoff consistency: running MOCUS with a cutoff must keep exactly
    // the cutsets above it (up to fp noise at the boundary).
    let max_prob = mocus_list
        .iter()
        .map(|c| c.probability_with(|e| probs.get(e)))
        .fold(0.0_f64, f64::max);
    if max_prob > 0.0 {
        let cutoff = max_prob / 64.0;
        match sdft_mocus::minimal_cutsets(ft_bar, &probs, &MocusOptions::with_cutoff(cutoff)) {
            Ok(cut_list) => {
                let cut = normalize(&cut_list);
                let mut missing = Vec::new();
                for c in mocus_list.iter() {
                    let p = c.probability_with(|e| probs.get(e));
                    let ids: Vec<usize> = c.events().iter().map(|e| e.index()).collect();
                    if p > cutoff * (1.0 + 1e-9) && !cut.contains(&ids) {
                        missing.push((ids, p));
                    }
                }
                let spurious: Vec<&Vec<usize>> = cut.iter().filter(|c| !m.contains(c)).collect();
                out.check(
                    missing.is_empty() && spurious.is_empty(),
                    "mocus_cutoff_consistency",
                    || format!("cutoff {cutoff}: lost cutsets {missing:?}, spurious {spurious:?}"),
                );
            }
            Err(e) => out.fail(
                "mocus_cutoff_consistency",
                format!("cutoff MOCUS failed on FT̄: {e}"),
            ),
        }
    }

    // static_rea vs the exact probability of FT̄ (all-static, so the
    // two-sided Bonferroni sandwich always applies).
    let exact = bdd.top_probability(&probs);
    let pairs = {
        let mut bound = 0.0;
        let lists: Vec<&sdft_ft::Cutset> = mocus_list.iter().collect();
        if lists.len() <= 400 {
            for i in 0..lists.len() {
                for j in i + 1..lists.len() {
                    let mut ids: Vec<usize> = lists[i]
                        .events()
                        .iter()
                        .chain(lists[j].events())
                        .map(|e| e.index())
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    bound += ids
                        .iter()
                        .map(|&i| probs.get(sdft_ft::NodeId::from_index(i)))
                        .product::<f64>();
                }
            }
            bound
        } else {
            f64::INFINITY
        }
    };
    out.check(
        leq_slack(exact, base.static_rea, cfg.tol_cross),
        "static_rea_soundness",
        || {
            format!(
                "BDD exact probability of FT̄ {exact} exceeds static REA {}",
                base.static_rea
            )
        },
    );
    if pairs.is_finite() {
        out.check(
            leq_slack(base.static_rea, exact + pairs, cfg.tol_cross),
            "static_rea_sandwich",
            || {
                format!(
                    "static REA {} exceeds BDD exact {exact} + pair bound {pairs}",
                    base.static_rea
                )
            },
        );
    } else {
        out.skip();
    }

    // Exact enumeration referee for small static inputs.
    if tree.is_static() && tree.num_basic_events() <= 20 {
        match tree.exact_static_probability() {
            Ok(enumerated) => out.check(
                close_rel(enumerated, exact, 1e-10),
                "bdd_vs_enumeration",
                || format!("BDD says {exact}, exhaustive enumeration says {enumerated}"),
            ),
            Err(e) => out.fail("bdd_vs_enumeration", format!("enumeration failed: {e}")),
        }
    }
}
