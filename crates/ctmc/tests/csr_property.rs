//! Property-based tests for the CSR uniformization kernel: on random
//! chains, the kernel with steady-state detection disabled must be
//! *bitwise* identical to the original dense-loop implementation (kept
//! as `sdft_ctmc::reference`), and with detection enabled it must stay
//! within the documented error bound of the full Poisson window.

use proptest::prelude::*;
use sdft_ctmc::{
    reach_probability_many_with, reference, transient_distribution_many_with, Ctmc, CtmcBuilder,
    SolverOptions, SolverWorkspace,
};

/// A compact description of a random chain: transitions reference
/// states by modular index, so every spec builds a valid chain.
#[derive(Debug, Clone)]
struct ChainSpec {
    states: usize,
    transitions: Vec<(usize, usize, f64)>,
    failed: Vec<usize>,
    initial: usize,
}

fn arb_chain_spec() -> impl Strategy<Value = ChainSpec> {
    // State references use modular indexing, so every spec is valid.
    (
        2usize..6,
        prop::collection::vec((0usize..100, 0usize..100, 0.0f64..2.0), 1..12),
        prop::collection::vec(0usize..100, 0..3),
        0usize..100,
    )
        .prop_map(|(states, transitions, failed, initial)| ChainSpec {
            states,
            transitions,
            failed,
            initial,
        })
}

fn build_chain(spec: &ChainSpec) -> Ctmc {
    let n = spec.states;
    let mut b = CtmcBuilder::new(n);
    b.initial(spec.initial % n, 1.0);
    for &(from, to, rate) in &spec.transitions {
        b.rate(from % n, to % n, rate);
    }
    for &state in &spec.failed {
        b.failed(state % n);
    }
    b.build().expect("spec produces a valid chain")
}

const HORIZONS: [f64; 3] = [0.0, 1.5, 24.0];
const EPSILON: f64 = 1e-12;

fn exact() -> SolverOptions {
    SolverOptions {
        steady_state_detection: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With steady-state detection off, the CSR kernel performs the
    /// same floating-point operations as the dense loop — results must
    /// match bit for bit, for both the absorbing reach solve and the
    /// plain transient solve, sharing one workspace.
    #[test]
    fn csr_kernel_is_bitwise_equal_to_the_dense_loop(spec in arb_chain_spec()) {
        let chain = build_chain(&spec);
        let mut ws = SolverWorkspace::new();

        let (reach, _) =
            reach_probability_many_with(&chain, &HORIZONS, EPSILON, &exact(), &mut ws).unwrap();
        let expected = reference::reach_probability_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (i, (a, b)) in reach.iter().zip(&expected).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "reach horizon {}: {} vs {}", i, a, b);
        }

        let (dists, _) =
            transient_distribution_many_with(&chain, &HORIZONS, EPSILON, &exact(), &mut ws)
                .unwrap();
        let expected = reference::transient_distribution_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (pi, reference_pi) in dists.iter().zip(&expected) {
            for (s, (a, b)) in pi.iter().zip(reference_pi).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "state {}: {} vs {}", s, a, b);
            }
        }
    }

    /// With steady-state detection on (the default), results may close
    /// the Poisson series early but must stay within 2ε of the full
    /// window — we allow a comfortable 1e-9 at ε = 1e-12.
    #[test]
    fn steady_state_detection_stays_within_tolerance(spec in arb_chain_spec()) {
        let chain = build_chain(&spec);
        let mut ws = SolverWorkspace::new();

        let (reach, _) = reach_probability_many_with(
            &chain, &HORIZONS, EPSILON, &SolverOptions::default(), &mut ws,
        ).unwrap();
        let expected = reference::reach_probability_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (a, b) in reach.iter().zip(&expected) {
            prop_assert!((a - b).abs() <= 1e-9, "{} vs {}", a, b);
        }

        let (dists, _) = transient_distribution_many_with(
            &chain, &HORIZONS, EPSILON, &SolverOptions::default(), &mut ws,
        ).unwrap();
        let expected = reference::transient_distribution_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (pi, reference_pi) in dists.iter().zip(&expected) {
            for (a, b) in pi.iter().zip(reference_pi) {
                prop_assert!((a - b).abs() <= 1e-9, "{} vs {}", a, b);
            }
        }
    }
}

/// Regression: on a stiff repairable chain the detector must fire, cut
/// the step count by an order of magnitude, and still agree with the
/// dense loop to well under the error bound.
#[test]
fn stiff_chain_converges_early_and_agrees_with_the_dense_loop() {
    let chain = CtmcBuilder::new(2)
        .initial(0, 1.0)
        .rate(0, 1, 120.0)
        .rate(1, 0, 80.0)
        .failed(1)
        .build()
        .unwrap();
    let horizons = [50.0];
    let mut ws = SolverWorkspace::new();
    let (dists, stats) = transient_distribution_many_with(
        &chain,
        &horizons,
        1e-10,
        &SolverOptions::default(),
        &mut ws,
    )
    .unwrap();
    assert!(
        stats.steady_state_step.is_some(),
        "detector must fire on a stiff chain"
    );
    assert!(
        stats.steps_taken * 10 < stats.steps_budget,
        "expected an order-of-magnitude saving: took {} of {}",
        stats.steps_taken,
        stats.steps_budget
    );
    let expected = reference::transient_distribution_many(&chain, &horizons, 1e-10).unwrap();
    for (a, b) in dists[0].iter().zip(&expected[0]) {
        assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
    }
}
