//! Property-based tests for the CSR uniformization kernel: on random
//! chains, the kernel with steady-state detection disabled must be
//! *bitwise* identical to the original dense-loop implementation (kept
//! as `sdft_ctmc::reference`), and with detection enabled it must stay
//! within the documented error bound of the full Poisson window.

use proptest::prelude::*;
use sdft_ctmc::{
    kernel, reach_probability_many_with, reference, transient_distribution_many_with, Ctmc,
    CtmcBuilder, SolverOptions, SolverWorkspace,
};

/// A compact description of a random chain: transitions reference
/// states by modular index, so every spec builds a valid chain.
#[derive(Debug, Clone)]
struct ChainSpec {
    states: usize,
    transitions: Vec<(usize, usize, f64)>,
    failed: Vec<usize>,
    initial: usize,
}

fn arb_chain_spec() -> impl Strategy<Value = ChainSpec> {
    // State references use modular indexing, so every spec is valid.
    (
        2usize..6,
        prop::collection::vec((0usize..100, 0usize..100, 0.0f64..2.0), 1..12),
        prop::collection::vec(0usize..100, 0..3),
        0usize..100,
    )
        .prop_map(|(states, transitions, failed, initial)| ChainSpec {
            states,
            transitions,
            failed,
            initial,
        })
}

fn build_chain(spec: &ChainSpec) -> Ctmc {
    let n = spec.states;
    let mut b = CtmcBuilder::new(n);
    b.initial(spec.initial % n, 1.0);
    for &(from, to, rate) in &spec.transitions {
        b.rate(from % n, to % n, rate);
    }
    for &state in &spec.failed {
        b.failed(state % n);
    }
    b.build().expect("spec produces a valid chain")
}

const HORIZONS: [f64; 3] = [0.0, 1.5, 24.0];
const EPSILON: f64 = 1e-12;

fn exact() -> SolverOptions {
    SolverOptions {
        steady_state_detection: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With steady-state detection off, the CSR kernel performs the
    /// same floating-point operations as the dense loop — results must
    /// match bit for bit, for both the absorbing reach solve and the
    /// plain transient solve, sharing one workspace.
    #[test]
    fn csr_kernel_is_bitwise_equal_to_the_dense_loop(spec in arb_chain_spec()) {
        let chain = build_chain(&spec);
        let mut ws = SolverWorkspace::new();

        let (reach, _) =
            reach_probability_many_with(&chain, &HORIZONS, EPSILON, &exact(), &mut ws).unwrap();
        let expected = reference::reach_probability_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (i, (a, b)) in reach.iter().zip(&expected).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "reach horizon {}: {} vs {}", i, a, b);
        }

        let (dists, _) =
            transient_distribution_many_with(&chain, &HORIZONS, EPSILON, &exact(), &mut ws)
                .unwrap();
        let expected = reference::transient_distribution_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (pi, reference_pi) in dists.iter().zip(&expected) {
            for (s, (a, b)) in pi.iter().zip(reference_pi).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "state {}: {} vs {}", s, a, b);
            }
        }
    }

    /// With steady-state detection on (the default), results may close
    /// the Poisson series early but must stay within 2ε of the full
    /// window — we allow a comfortable 1e-9 at ε = 1e-12.
    #[test]
    fn steady_state_detection_stays_within_tolerance(spec in arb_chain_spec()) {
        let chain = build_chain(&spec);
        let mut ws = SolverWorkspace::new();

        let (reach, _) = reach_probability_many_with(
            &chain, &HORIZONS, EPSILON, &SolverOptions::default(), &mut ws,
        ).unwrap();
        let expected = reference::reach_probability_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (a, b) in reach.iter().zip(&expected) {
            prop_assert!((a - b).abs() <= 1e-9, "{} vs {}", a, b);
        }

        let (dists, _) = transient_distribution_many_with(
            &chain, &HORIZONS, EPSILON, &SolverOptions::default(), &mut ws,
        ).unwrap();
        let expected = reference::transient_distribution_many(&chain, &HORIZONS, EPSILON).unwrap();
        for (pi, reference_pi) in dists.iter().zip(&expected) {
            for (a, b) in pi.iter().zip(reference_pi) {
                prop_assert!((a - b).abs() <= 1e-9, "{} vs {}", a, b);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The blocked SpMV kernel must be bitwise-identical to the scalar
    /// reference on arbitrary CSR matrices: empty rows, duplicate and
    /// never-referenced (dangling) columns, row lengths not divisible by
    /// the lane width, and zero-mass states.
    #[test]
    fn blocked_spmv_is_bitwise_equal_to_the_scalar_reference(
        row_specs in prop::collection::vec(
            prop::collection::vec((0usize..100, 0.0f64..0.5), 0..10),
            1..16,
        ),
        masses in prop::collection::vec((0usize..4, 0.0f64..1.0), 1..16),
    ) {
        let n = row_specs.len();
        let mut row_offsets = vec![0u32];
        let mut cols = Vec::new();
        let mut probs = Vec::new();
        for row in &row_specs {
            for &(c, p) in row {
                cols.push((c % n) as u32);
                probs.push(p);
            }
            row_offsets.push(u32::try_from(cols.len()).unwrap());
        }
        let current: Vec<f64> = (0..n)
            .map(|s| {
                let (zero, m) = masses[s % masses.len()];
                if zero == 0 { 0.0 } else { m }
            })
            .collect();
        let mut scalar = vec![0.0f64; n];
        let mut blocked = vec![0.0f64; n];
        kernel::spmv_scalar(&row_offsets, &cols, &probs, &current, &mut scalar);
        kernel::spmv_blocked(&row_offsets, &cols, &probs, &current, &mut blocked);
        for (s, (a, b)) in scalar.iter().zip(&blocked).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "state {}: {} vs {}", s, a, b);
        }
    }

    /// A shared multi-horizon solve must return bitwise-identical
    /// per-horizon results to solving each horizon alone — with
    /// steady-state detection both off and on (where it may close some
    /// horizons mid-sequence while others keep stepping).
    #[test]
    fn shared_multi_horizon_solve_matches_independent_solves_bitwise(spec in arb_chain_spec()) {
        let chain = build_chain(&spec);
        let horizons = [0.5, 1.5, 24.0, 96.0];
        for options in [exact(), SolverOptions::default()] {
            let mut ws = SolverWorkspace::new();
            let (shared, _) =
                reach_probability_many_with(&chain, &horizons, EPSILON, &options, &mut ws)
                    .unwrap();
            for (h, &t) in horizons.iter().enumerate() {
                let mut solo = SolverWorkspace::new();
                let (alone, _) =
                    reach_probability_many_with(&chain, &[t], EPSILON, &options, &mut solo)
                        .unwrap();
                prop_assert_eq!(
                    shared[h].to_bits(), alone[0].to_bits(),
                    "horizon {}: {} vs {}", t, shared[h], alone[0]
                );
            }
        }
    }
}

/// Regression: on a stiff repairable chain the detector must fire, cut
/// the step count by an order of magnitude, and still agree with the
/// dense loop to well under the error bound.
#[test]
fn stiff_chain_converges_early_and_agrees_with_the_dense_loop() {
    let chain = CtmcBuilder::new(2)
        .initial(0, 1.0)
        .rate(0, 1, 120.0)
        .rate(1, 0, 80.0)
        .failed(1)
        .build()
        .unwrap();
    let horizons = [50.0];
    let mut ws = SolverWorkspace::new();
    let (dists, stats) = transient_distribution_many_with(
        &chain,
        &horizons,
        1e-10,
        &SolverOptions::default(),
        &mut ws,
    )
    .unwrap();
    assert!(
        stats.steady_state_step.is_some(),
        "detector must fire on a stiff chain"
    );
    assert!(
        stats.steps_taken * 10 < stats.steps_budget,
        "expected an order-of-magnitude saving: took {} of {}",
        stats.steps_taken,
        stats.steps_budget
    );
    let expected = reference::transient_distribution_many(&chain, &horizons, 1e-10).unwrap();
    for (a, b) in dists[0].iter().zip(&expected[0]) {
        assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
    }
}
