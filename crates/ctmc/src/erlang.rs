//! Erlang-phase failure and repair models (§VI-A of the paper).
//!
//! The paper replaces a static basic event with failure rate `λ` by a
//! phase-type chain: starting in phase 0, the chain moves from phase `i` to
//! phase `i+1` with rate `k·λ` and is failed in phase `k`. For `k = 1` this
//! is an exponentially distributed failure, for `k > 1` an Erlang
//! distribution with the same mean time to failure. Repair jumps from the
//! failed phase back to phase 0. For triggered events, passive (off)
//! phases with failure rates 100× lower are added, and repair is only
//! possible once the event has been triggered.

use crate::chain::{Ctmc, CtmcBuilder};
use crate::error::CtmcError;
use crate::triggered::{TriggeredCtmc, TriggeredCtmcBuilder};

/// Options for building a triggered Erlang model with
/// [`triggered_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErlangOptions {
    /// Number of phases `k ≥ 1`.
    pub phases: usize,
    /// Active failure rate `λ` (per phase rate is `k·λ`).
    pub failure_rate: f64,
    /// Repair rate `μ` from the failed phase back to phase 0; zero
    /// disables repair.
    pub repair_rate: f64,
    /// Ratio of passive (off) to active failure rates; the paper uses
    /// `0.01` ("failure rates in passive states 100 times lower"). Zero
    /// disables degradation while off.
    pub passive_factor: f64,
    /// Whether a latent-failed event keeps being repaired while off.
    /// The paper's experiments assume `false` ("the equipment cannot be
    /// repaired before it gets triggered, as nobody knows it is failed");
    /// Example 2's spare pump uses `true`.
    pub repair_while_off: bool,
}

impl ErlangOptions {
    /// Paper defaults: `passive_factor = 0.01`, no repair while off.
    #[must_use]
    pub fn new(phases: usize, failure_rate: f64, repair_rate: f64) -> Self {
        ErlangOptions {
            phases,
            failure_rate,
            repair_rate,
            passive_factor: 0.01,
            repair_while_off: false,
        }
    }

    fn validate(&self) -> Result<(), CtmcError> {
        if self.phases == 0 {
            return Err(CtmcError::ZeroPhases);
        }
        for (rate, name) in [
            (self.failure_rate, "failure"),
            (self.repair_rate, "repair"),
            (self.passive_factor, "passive factor"),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                let _ = name;
                return Err(CtmcError::InvalidRate {
                    from: 0,
                    to: 0,
                    rate,
                });
            }
        }
        Ok(())
    }
}

/// An always-on Erlang failure chain without repair: phases `0..=k`,
/// failed in phase `k`, per-phase rate `k·λ`.
///
/// # Errors
///
/// Returns an error if `phases` is zero or `failure_rate` is negative or
/// not finite.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// let chain = sdft_ctmc::erlang::plain(3, 1e-3)?;
/// assert_eq!(chain.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn plain(phases: usize, failure_rate: f64) -> Result<Ctmc, CtmcError> {
    repairable(phases, failure_rate, 0.0)
}

/// An always-on Erlang failure chain with repair from the failed phase
/// back to phase 0 at rate `repair_rate`.
///
/// # Errors
///
/// Returns an error if `phases` is zero or any rate is negative or not
/// finite.
pub fn repairable(phases: usize, failure_rate: f64, repair_rate: f64) -> Result<Ctmc, CtmcError> {
    let opts = ErlangOptions::new(phases, failure_rate, repair_rate);
    opts.validate()?;
    let k = phases;
    let mut b = CtmcBuilder::new(k + 1);
    b.initial(0, 1.0);
    let phase_rate = k as f64 * failure_rate;
    for i in 0..k {
        b.rate(i, i + 1, phase_rate);
    }
    if repair_rate > 0.0 {
        b.rate(k, 0, repair_rate);
    }
    b.failed(k);
    b.build()
}

/// A triggered Erlang model with the paper's §VI-A defaults: passive
/// failure rates 100× lower than active ones and no repair while off.
///
/// See [`triggered_with`] for the state layout.
///
/// # Errors
///
/// Returns an error if `phases` is zero or any rate is negative or not
/// finite.
pub fn triggered(
    phases: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<TriggeredCtmc, CtmcError> {
    triggered_with(ErlangOptions::new(phases, failure_rate, repair_rate))
}

/// A triggered Erlang model with full control over passive degradation and
/// off-repair.
///
/// State layout for `k = opts.phases`:
///
/// * off-states `0..=k` — passive phases; `k` is the *latent failed*
///   off-state (not in `F`, because the paper requires `F ⊆ S_on`),
/// * on-states `k+1..=2k+1` — active phases; `2k+1` is the failed state,
/// * `on(i) = i + k + 1`, `off(j) = j - k - 1` (phase is preserved across
///   mode switches),
/// * passive phase rate `k·λ·passive_factor`, active phase rate `k·λ`,
/// * repair `2k+1 → k+1` at `μ`, plus `k → 0` at `μ` when
///   `repair_while_off` is set.
///
/// # Errors
///
/// Returns an error if `opts.phases` is zero or any rate is negative or
/// not finite.
pub fn triggered_with(opts: ErlangOptions) -> Result<TriggeredCtmc, CtmcError> {
    opts.validate()?;
    let k = opts.phases;
    let mut b = TriggeredCtmcBuilder::new();
    for _ in 0..=k {
        b.off_state();
    }
    for _ in 0..=k {
        b.on_state();
    }
    b.initial(0, 1.0);
    let active = k as f64 * opts.failure_rate;
    let passive = active * opts.passive_factor;
    for i in 0..k {
        if passive > 0.0 {
            b.rate(i, i + 1, passive);
        }
        b.rate(k + 1 + i, k + 2 + i, active);
    }
    if opts.repair_rate > 0.0 {
        b.rate(2 * k + 1, k + 1, opts.repair_rate);
        if opts.repair_while_off {
            b.rate(k, 0, opts.repair_rate);
        }
    }
    for i in 0..=k {
        b.map(i, k + 1 + i);
    }
    b.failed(2 * k + 1);
    b.build()
}

/// The spare-pump model of Example 2: a single exponential failure phase,
/// no degradation while off, repair continuing while off.
///
/// # Errors
///
/// Returns an error if any rate is negative or not finite.
pub fn spare(failure_rate: f64, repair_rate: f64) -> Result<TriggeredCtmc, CtmcError> {
    triggered_with(ErlangOptions {
        phases: 1,
        failure_rate,
        repair_rate,
        passive_factor: 0.0,
        repair_while_off: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triggered::Mode;

    #[test]
    fn plain_erlang_mean_time_to_failure_is_preserved() {
        // Reach probability at the MTTF should be close for k = 1 and the
        // exact Erlang CDF for larger k; check closed forms.
        let lambda = 1e-2;
        for k in 1..=4usize {
            let c = plain(k, lambda).unwrap();
            assert_eq!(c.len(), k + 1);
            let t = 30.0;
            let p = c.reach_failed_probability(t, 1e-12).unwrap();
            // Erlang(k, k*lambda) CDF at t.
            let rt = k as f64 * lambda * t;
            let mut cdf = 1.0;
            let mut term = 1.0;
            let mut partial = 0.0;
            for n in 0..k {
                if n > 0 {
                    term *= rt / n as f64;
                }
                partial += term;
            }
            cdf -= (-rt).exp() * partial;
            assert!((p - cdf).abs() < 1e-9, "k={k}: {p} vs {cdf}");
        }
    }

    #[test]
    fn repair_lowers_long_run_failure_probability() {
        let no_repair = plain(1, 1e-3).unwrap();
        let repaired = repairable(1, 1e-3, 0.05).unwrap();
        let t = 1000.0;
        // Reaching failure at least once is the same with or without
        // repair for k = 1 (the first passage ignores what happens after),
        // so compare *being* failed instead.
        let pi_no = crate::transient::transient_distribution(&no_repair, t, 1e-12).unwrap();
        let pi_rep = crate::transient::transient_distribution(&repaired, t, 1e-12).unwrap();
        assert!(pi_rep[1] < pi_no[1] / 10.0);
    }

    #[test]
    fn triggered_layout_matches_documentation() {
        let k = 3;
        let c = triggered(k, 1e-3, 0.05).unwrap();
        assert_eq!(c.len(), 2 * (k + 1));
        for i in 0..=k {
            assert_eq!(c.mode(i), Mode::Off);
            assert_eq!(c.mode(k + 1 + i), Mode::On);
            assert_eq!(c.on_of(i), k + 1 + i);
            assert_eq!(c.off_of(k + 1 + i), i);
        }
        assert!(c.chain().is_failed(2 * k + 1));
        assert!(
            !c.chain().is_failed(k),
            "latent failed off-state must not be in F"
        );
        // No repair while off by default.
        assert!(c.chain().transitions_from(k).is_empty());
        // Passive rates are 100x lower.
        let passive = c.chain().transitions_from(0)[0].1;
        let active = c.chain().transitions_from(k + 1)[0].1;
        assert!((active / passive - 100.0).abs() < 1e-9);
    }

    #[test]
    fn spare_has_no_passive_degradation_and_off_repair() {
        let s = spare(1e-3, 0.05).unwrap();
        assert_eq!(s.len(), 4);
        // Off-ok state does not degrade.
        assert!(s.chain().transitions_from(0).is_empty());
        // Latent failed off-state is repaired.
        assert_eq!(s.chain().transitions_from(1), &[(0, 0.05)]);
    }

    #[test]
    fn worst_case_matches_always_on_chain() {
        let t = 24.0;
        for k in 1..=3usize {
            let trig = triggered(k, 2e-3, 0.1).unwrap();
            let always_on = repairable(k, 2e-3, 0.1).unwrap();
            let a = trig.worst_case_failure_probability(t, 1e-12).unwrap();
            let b = always_on.reach_failed_probability(t, 1e-12).unwrap();
            assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_zero_phases_and_bad_rates() {
        assert_eq!(plain(0, 1e-3), Err(CtmcError::ZeroPhases));
        assert!(matches!(
            repairable(1, -1.0, 0.0),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            triggered(1, 1e-3, f64::NAN),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            triggered_with(ErlangOptions {
                passive_factor: -0.5,
                ..ErlangOptions::new(1, 1.0, 0.0)
            }),
            Err(CtmcError::InvalidRate { .. })
        ));
    }
}
