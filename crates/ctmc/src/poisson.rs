use crate::error::CtmcError;

/// Truncated Poisson weights for uniformization, in the spirit of
/// Fox & Glynn (1988).
///
/// For a Poisson distribution with mean `lambda_t`, this computes an index
/// window `[left, right]` and weights `w[i] ≈ Pr[N = left + i]` such that
/// the total probability mass outside the window is below the requested
/// truncation error. Weights are computed by a stable recurrence anchored at
/// the mode with periodic rescaling, then normalized, which avoids both
/// underflow of individual terms and overflow of the running products.
///
/// # Example
///
/// ```
/// use sdft_ctmc::PoissonWeights;
///
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// let w = PoissonWeights::new(2.0, 1e-12)?;
/// let total: f64 = w.weights().iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// // Pr[N = 0] = e^{-2}
/// assert!((w.weight(0) - (-2.0f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    left: usize,
    weights: Vec<f64>,
}

impl PoissonWeights {
    /// Compute weights for mean `lambda_t` with truncation error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda_t` is negative or not finite, or if
    /// `epsilon` is not in `(0, 1)`.
    pub fn new(lambda_t: f64, epsilon: f64) -> Result<Self, CtmcError> {
        if !lambda_t.is_finite() || lambda_t < 0.0 {
            return Err(CtmcError::InvalidHorizon { horizon: lambda_t });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(CtmcError::InvalidEpsilon { epsilon });
        }
        if lambda_t == 0.0 {
            return Ok(PoissonWeights {
                left: 0,
                weights: vec![1.0],
            });
        }

        let mode = lambda_t.floor() as usize;
        // Unnormalized weights around the mode; the recurrence
        // p(i+1) = p(i) * lambda/(i+1) and p(i-1) = p(i) * i/lambda is
        // numerically stable in both directions starting from the mode.
        //
        // We work with an arbitrary anchor value of 1.0 at the mode and
        // normalize at the end. To bound the truncation error without
        // knowing the normalization constant up front, we use the fact that
        // the normalized mass of the neglected tails is at most
        // (neglected unnormalized mass) / (kept unnormalized mass); we keep
        // extending the window until the running tail term is epsilon/4
        // of the accumulated sum on each side, which over-approximates the
        // tails by a geometric-series argument away from the mode.
        const RESCALE_THRESHOLD: f64 = 1e280;
        // Near the Gaussian edge the tail beyond index i is roughly
        // sqrt(lambda) terms of comparable size, not a fast geometric
        // series; tighten the per-term stopping threshold accordingly so
        // the *total* neglected mass stays below epsilon.
        let tail_scale = 1.0 + lambda_t.sqrt();

        let mut down: Vec<f64> = Vec::new(); // weights mode-1, mode-2, ...
        let mut up: Vec<f64> = vec![1.0]; // weights mode, mode+1, ...
        let mut scale_up = 0i64; // power-of-two style scaling bookkeeping
        let mut scale_down = 0i64;

        // Upward sweep.
        {
            let mut w = 1.0f64;
            let mut sum = 1.0f64;
            let mut i = mode;
            loop {
                i += 1;
                w *= lambda_t / i as f64;
                if w > RESCALE_THRESHOLD {
                    // Rescale everything accumulated so far.
                    for v in up.iter_mut() {
                        *v /= RESCALE_THRESHOLD;
                    }
                    w /= RESCALE_THRESHOLD;
                    sum /= RESCALE_THRESHOLD;
                    scale_up += 1;
                }
                up.push(w);
                sum += w;
                // Past the mode the ratio lambda/(i+1) is < 1 and shrinking;
                // once the current term is tiny relative to the sum the
                // remaining tail is bounded by a geometric series with that
                // ratio, so it is safe to stop.
                if i as f64 > lambda_t && w * tail_scale < sum * epsilon / 8.0 {
                    break;
                }
            }
        }

        // Downward sweep.
        {
            let mut w = 1.0f64;
            let mut sum = 1.0f64;
            let mut i = mode;
            while i > 0 {
                w *= i as f64 / lambda_t;
                if w > RESCALE_THRESHOLD {
                    for v in down.iter_mut() {
                        *v /= RESCALE_THRESHOLD;
                    }
                    w /= RESCALE_THRESHOLD;
                    sum /= RESCALE_THRESHOLD;
                    scale_down += 1;
                }
                i -= 1;
                down.push(w);
                sum += w;
                if (i as f64) < lambda_t && w * tail_scale < sum * epsilon / 8.0 {
                    break;
                }
            }
        }

        // If either side was rescaled, the other side's values are
        // negligibly small relative to it only if its scale is lower;
        // reconcile scales by damping the smaller-scale side to zero-mass
        // (it is below 1e-280 of the mode in that case).
        let left = mode - down.len();
        let mut weights = Vec::with_capacity(down.len() + up.len());
        let common = scale_up.max(scale_down);
        let damp = |v: f64, s: i64| -> f64 {
            let mut v = v;
            let mut s = s;
            while s < common {
                v /= RESCALE_THRESHOLD;
                s += 1;
            }
            v
        };
        for &w in down.iter().rev() {
            weights.push(damp(w, scale_down));
        }
        for &w in &up {
            weights.push(damp(w, scale_up));
        }

        let total: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= total;
        }
        Ok(PoissonWeights { left, weights })
    }

    /// First index of the truncation window.
    #[must_use]
    pub fn left(&self) -> usize {
        self.left
    }

    /// Last index of the truncation window (inclusive).
    #[must_use]
    pub fn right(&self) -> usize {
        self.left + self.weights.len() - 1
    }

    /// Normalized weights for indices `left()..=right()`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `Pr[N = n]` within the window, zero outside it.
    #[must_use]
    pub fn weight(&self, n: usize) -> f64 {
        if n < self.left {
            0.0
        } else {
            self.weights.get(n - self.left).copied().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_poisson(lambda: f64, n: usize) -> f64 {
        // ln p = -lambda + n ln lambda - ln n!
        let mut ln_fact = 0.0;
        for i in 1..=n {
            ln_fact += (i as f64).ln();
        }
        (-lambda + n as f64 * lambda.ln() - ln_fact).exp()
    }

    #[test]
    fn zero_mean_is_point_mass() {
        let w = PoissonWeights::new(0.0, 1e-12).unwrap();
        assert_eq!(w.left(), 0);
        assert_eq!(w.right(), 0);
        assert_eq!(w.weight(0), 1.0);
        assert_eq!(w.weight(3), 0.0);
    }

    #[test]
    fn small_mean_matches_exact_values() {
        for &lambda in &[0.1, 0.5, 1.0, 2.5, 7.3, 20.0] {
            let w = PoissonWeights::new(lambda, 1e-13).unwrap();
            for n in w.left()..=w.right() {
                let exact = exact_poisson(lambda, n);
                assert!(
                    (w.weight(n) - exact).abs() < 1e-10,
                    "lambda={lambda} n={n}: {} vs {exact}",
                    w.weight(n)
                );
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.0, 1e-8, 3.0, 100.0, 5000.0] {
            let w = PoissonWeights::new(lambda, 1e-12).unwrap();
            let sum: f64 = w.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "lambda={lambda} sum={sum}");
        }
    }

    #[test]
    fn large_mean_window_brackets_the_mode() {
        let lambda = 10_000.0;
        let w = PoissonWeights::new(lambda, 1e-12).unwrap();
        assert!(w.left() < 10_000 && w.right() > 10_000);
        // Window should be O(sqrt(lambda)) wide, not O(lambda).
        assert!(
            w.weights().len() < 3_000,
            "window too wide: {}",
            w.weights().len()
        );
        // Mean of the truncated distribution is close to lambda.
        let mean: f64 = (w.left()..=w.right()).map(|n| n as f64 * w.weight(n)).sum();
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(PoissonWeights::new(-1.0, 1e-12).is_err());
        assert!(PoissonWeights::new(f64::NAN, 1e-12).is_err());
        assert!(PoissonWeights::new(f64::INFINITY, 1e-12).is_err());
        assert!(PoissonWeights::new(1.0, 0.0).is_err());
        assert!(PoissonWeights::new(1.0, 1.0).is_err());
        assert!(PoissonWeights::new(1.0, -0.1).is_err());
    }

    #[test]
    fn tail_mass_outside_window_is_small() {
        let lambda = 50.0;
        let w = PoissonWeights::new(lambda, 1e-10).unwrap();
        let mut outside = 0.0;
        for n in 0..w.left() {
            outside += exact_poisson(lambda, n);
        }
        for n in (w.right() + 1)..(w.right() + 200) {
            outside += exact_poisson(lambda, n);
        }
        assert!(outside < 1e-9, "outside mass {outside}");
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;

    #[test]
    fn very_large_means_stay_normalized_and_centered() {
        for &lambda in &[1e5, 1e6] {
            let w = PoissonWeights::new(lambda, 1e-10).unwrap();
            let sum: f64 = w.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "lambda={lambda}: sum {sum}");
            let mean: f64 = (w.left()..=w.right()).map(|n| n as f64 * w.weight(n)).sum();
            assert!(
                (mean - lambda).abs() / lambda < 1e-6,
                "lambda={lambda}: mean {mean}"
            );
            // Window width is O(sqrt(lambda) * z), far below O(lambda).
            let width = (w.right() - w.left()) as f64;
            assert!(width < 20.0 * lambda.sqrt(), "width {width}");
        }
    }

    #[test]
    fn transient_with_stiff_rates_is_stable() {
        // A chain mixing rates separated by 7 orders of magnitude.
        use crate::chain::CtmcBuilder;
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, 1e3)
            .rate(1, 0, 1e3)
            .rate(1, 2, 1e-4)
            .failed(2)
            .build()
            .unwrap();
        let p = crate::transient::reach_probability(&c, 100.0, 1e-10).unwrap();
        // Effective absorption rate ~ (1/2)·1e-4 => p ≈ 1-exp(-5e-3).
        let expected = 1.0 - (-0.5 * 1e-4f64 * 100.0).exp();
        assert!((p - expected).abs() / expected < 0.01, "{p} vs {expected}");
    }
}

#[cfg(test)]
mod tail_regression_tests {
    use super::*;

    /// Found in review: at large means the neglected tail used to exceed
    /// the requested epsilon by ~sqrt(lambda). Check the true outside
    /// mass with a high-precision stepping of the exact pmf.
    #[test]
    fn truncated_tail_respects_epsilon_at_large_means() {
        for &lambda in &[1e4_f64, 1e6] {
            let eps = 1e-10;
            let w = PoissonWeights::new(lambda, eps).unwrap();
            // Exact pmf via stable log-space stepping from the mode.
            let mode = lambda.floor();
            let mut outside = 0.0_f64;
            // Upper tail beyond the window.
            let mut ln_p = -lambda + mode * lambda.ln() - ln_factorial(mode);
            let mut i = mode;
            while i < w.right() as f64 + 4.0 * lambda.sqrt() {
                i += 1.0;
                ln_p += lambda.ln() - i.ln();
                if i > w.right() as f64 {
                    outside += ln_p.exp();
                }
            }
            // Lower tail below the window.
            let mut ln_p = -lambda + mode * lambda.ln() - ln_factorial(mode);
            let mut i = mode;
            while i > (w.left() as f64 - 4.0 * lambda.sqrt()).max(0.0) {
                ln_p -= lambda.ln() - i.ln();
                i -= 1.0;
                if i < w.left() as f64 {
                    outside += ln_p.exp();
                }
            }
            assert!(
                outside < eps,
                "lambda={lambda}: outside mass {outside:.3e} exceeds eps {eps:.0e}"
            );
        }
    }

    fn ln_factorial(n: f64) -> f64 {
        // Stirling with correction terms; plenty for n >= 1e4.
        n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
    }
}
