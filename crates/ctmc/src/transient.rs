//! Transient analysis by uniformization (Jensen's method).
//!
//! The public functions here are thin convenience wrappers over the CSR
//! uniformization kernel in [`crate::csr`]: they allocate a fresh
//! [`SolverWorkspace`](crate::SolverWorkspace) per call and use the
//! default solver options. Hot paths that solve many chains should call
//! [`reach_probability_many_with`](crate::reach_probability_many_with)
//! directly with a reused workspace.

use crate::chain::Ctmc;
use crate::csr::{self, SolverOptions, SolverWorkspace};
use crate::error::CtmcError;

/// Transient state distribution of `chain` at time `t` by uniformization.
///
/// Returns a vector `pi` with `pi[s] = Pr[X(t) = s]`, computed with total
/// truncation error at most roughly `epsilon`.
///
/// Uniformization replaces the CTMC with a discrete-time chain subordinated
/// to a Poisson process of rate `Λ = max exit rate`; the transient
/// distribution is the Poisson-weighted average of the DTMC's step
/// distributions (Jensen's method), with the Poisson series truncated by
/// [`PoissonWeights`](crate::PoissonWeights).
///
/// # Errors
///
/// Returns an error if `t` is negative or not finite, or `epsilon` is not
/// in `(0, 1)`.
///
/// # Example
///
/// ```
/// use sdft_ctmc::{transient_distribution, CtmcBuilder};
///
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// // Pure death process 0 -> 1 at rate 1: Pr[still in 0 at t] = e^{-t}.
/// let c = CtmcBuilder::new(2).initial(0, 1.0).rate(0, 1, 1.0).build()?;
/// let pi = transient_distribution(&c, 2.0, 1e-12)?;
/// assert!((pi[0] - (-2.0f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn transient_distribution(chain: &Ctmc, t: f64, epsilon: f64) -> Result<Vec<f64>, CtmcError> {
    let mut ws = SolverWorkspace::new();
    let (mut out, _) = csr::transient_distribution_many_with(
        chain,
        &[t],
        epsilon,
        &SolverOptions::default(),
        &mut ws,
    )?;
    Ok(out.pop().expect("one horizon yields one distribution"))
}

/// Transient distributions at several horizons from *one* uniformization
/// pass: the DTMC iterates are computed once up to the largest horizon's
/// truncation point and each horizon accumulates its own Poisson-weighted
/// sum. For `k` horizons this costs one pass plus `k` weight
/// computations — substantially cheaper than `k` independent calls when
/// the horizons share a chain (multi-horizon sweeps, §VI-B's T5).
///
/// Results are returned in the order of `horizons`.
///
/// # Errors
///
/// Returns an error if `horizons` is empty or contains an invalid value,
/// or `epsilon` is not in `(0, 1)`.
pub fn transient_distribution_many(
    chain: &Ctmc,
    horizons: &[f64],
    epsilon: f64,
) -> Result<Vec<Vec<f64>>, CtmcError> {
    let mut ws = SolverWorkspace::new();
    let (out, _) = csr::transient_distribution_many_with(
        chain,
        horizons,
        epsilon,
        &SolverOptions::default(),
        &mut ws,
    )?;
    Ok(out)
}

/// `Pr[reach F ≤ t]` at several horizons from one uniformization pass
/// (see [`transient_distribution_many`]).
///
/// # Errors
///
/// Same as [`transient_distribution_many`].
pub fn reach_probability_many(
    chain: &Ctmc,
    horizons: &[f64],
    epsilon: f64,
) -> Result<Vec<f64>, CtmcError> {
    let mut ws = SolverWorkspace::new();
    let (out, _) = csr::reach_probability_many_with(
        chain,
        horizons,
        epsilon,
        &SolverOptions::default(),
        &mut ws,
    )?;
    Ok(out)
}

/// `Pr[reach F ≤ t]` — probability that `chain` visits a failed state
/// within time `t`.
///
/// Computed by making all failed states absorbing and summing the transient
/// probability mass on them at time `t`: once a failed state is entered the
/// absorbed copy never leaves it, so its transient mass at `t` is exactly
/// the probability of having visited `F` by `t`. The CSR kernel applies
/// the absorption while building its sparse form, without cloning the
/// chain.
///
/// # Errors
///
/// Returns an error if `t` is negative or not finite, or `epsilon` is not
/// in `(0, 1)`.
pub fn reach_probability(chain: &Ctmc, t: f64, epsilon: f64) -> Result<f64, CtmcError> {
    let mut ws = SolverWorkspace::new();
    let (out, _) =
        csr::reach_probability_many_with(chain, &[t], epsilon, &SolverOptions::default(), &mut ws)?;
    Ok(out[0])
}

/// The pre-CSR dense-loop uniformization kernel, kept verbatim as the
/// oracle for the CSR kernel's compatibility tests. Not part of the
/// supported API.
#[doc(hidden)]
pub mod reference {
    use crate::chain::Ctmc;
    use crate::error::CtmcError;
    use crate::poisson::PoissonWeights;

    /// Dense-loop transient distribution (the original implementation).
    pub fn transient_distribution(
        chain: &Ctmc,
        t: f64,
        epsilon: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if !t.is_finite() || t < 0.0 {
            return Err(CtmcError::InvalidHorizon { horizon: t });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(CtmcError::InvalidEpsilon { epsilon });
        }
        let n = chain.len();
        let rate = chain.max_exit_rate();
        if rate == 0.0 || t == 0.0 {
            return Ok(chain.initial_distribution().to_vec());
        }
        let weights = PoissonWeights::new(rate * t, epsilon)?;

        let mut current = chain.initial_distribution().to_vec();
        let mut result = vec![0.0; n];
        let mut next = vec![0.0; n];
        for step in 0..=weights.right() {
            let w = weights.weight(step);
            if w > 0.0 {
                for s in 0..n {
                    result[s] += w * current[s];
                }
            }
            if step == weights.right() {
                break;
            }
            // One DTMC step: next = current * P where
            // P = I + R/rate (with diagonal 1 - exit/rate).
            for v in next.iter_mut() {
                *v = 0.0;
            }
            for s in 0..n {
                let mass = current[s];
                if mass == 0.0 {
                    continue;
                }
                let mut stay = mass;
                for &(to, r) in chain.transitions_from(s) {
                    let move_mass = mass * (r / rate);
                    next[to] += move_mass;
                    stay -= move_mass;
                }
                next[s] += stay.max(0.0);
            }
            std::mem::swap(&mut current, &mut next);
        }
        Ok(result)
    }

    /// Dense-loop multi-horizon transient distributions (the original
    /// implementation).
    pub fn transient_distribution_many(
        chain: &Ctmc,
        horizons: &[f64],
        epsilon: f64,
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        if horizons.is_empty() {
            return Err(CtmcError::InvalidHorizon { horizon: f64::NAN });
        }
        for &t in horizons {
            if !t.is_finite() || t < 0.0 {
                return Err(CtmcError::InvalidHorizon { horizon: t });
            }
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(CtmcError::InvalidEpsilon { epsilon });
        }
        let n = chain.len();
        let rate = chain.max_exit_rate();
        if rate == 0.0 {
            return Ok(vec![chain.initial_distribution().to_vec(); horizons.len()]);
        }
        let weights: Vec<PoissonWeights> = horizons
            .iter()
            .map(|&t| PoissonWeights::new(rate * t, epsilon))
            .collect::<Result<_, _>>()?;
        let max_right = weights.iter().map(PoissonWeights::right).max().unwrap_or(0);

        let mut current = chain.initial_distribution().to_vec();
        let mut next = vec![0.0; n];
        let mut results = vec![vec![0.0; n]; horizons.len()];
        for step in 0..=max_right {
            for (result, w) in results.iter_mut().zip(&weights) {
                let weight = w.weight(step);
                if weight > 0.0 {
                    for s in 0..n {
                        result[s] += weight * current[s];
                    }
                }
            }
            if step == max_right {
                break;
            }
            for v in next.iter_mut() {
                *v = 0.0;
            }
            for s in 0..n {
                let mass = current[s];
                if mass == 0.0 {
                    continue;
                }
                let mut stay = mass;
                for &(to, r) in chain.transitions_from(s) {
                    let move_mass = mass * (r / rate);
                    next[to] += move_mass;
                    stay -= move_mass;
                }
                next[s] += stay.max(0.0);
            }
            std::mem::swap(&mut current, &mut next);
        }
        Ok(results)
    }

    /// Dense-loop multi-horizon reach probabilities (the original
    /// implementation, including the `with_failed_absorbing` clone).
    pub fn reach_probability_many(
        chain: &Ctmc,
        horizons: &[f64],
        epsilon: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        let absorbed = chain.with_failed_absorbing();
        let distributions = transient_distribution_many(&absorbed, horizons, epsilon)?;
        Ok(distributions
            .into_iter()
            .map(|pi| {
                absorbed
                    .failed_states()
                    .map(|s| pi[s])
                    .sum::<f64>()
                    .clamp(0.0, 1.0)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    fn birth_death(lambda: f64, mu: f64) -> Ctmc {
        CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, lambda)
            .rate(1, 0, mu)
            .failed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn exponential_death_matches_closed_form() {
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 0.3)
            .failed(1)
            .build()
            .unwrap();
        for &t in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let p = reach_probability(&c, t, 1e-12).unwrap();
            let exact = 1.0 - (-0.3 * t).exp();
            assert!((p - exact).abs() < 1e-9, "t={t}: {p} vs {exact}");
        }
    }

    #[test]
    fn two_state_transient_matches_closed_form() {
        // For rates a (0->1) and b (1->0) starting in 0:
        // pi_1(t) = a/(a+b) (1 - e^{-(a+b)t}).
        let (a, b) = (0.4, 1.1);
        let c = birth_death(a, b);
        for &t in &[0.25, 1.0, 5.0, 50.0] {
            let pi = transient_distribution(&c, t, 1e-12).unwrap();
            let exact = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert!((pi[1] - exact).abs() < 1e-9, "t={t}: {} vs {exact}", pi[1]);
        }
    }

    #[test]
    fn reach_probability_exceeds_transient_probability_with_repairs() {
        // With repairs, having *visited* the failed state is more likely
        // than *being* failed at t.
        let c = birth_death(0.1, 2.0);
        let t = 10.0;
        let reach = reach_probability(&c, t, 1e-12).unwrap();
        let pi = transient_distribution(&c, t, 1e-12).unwrap();
        assert!(reach > pi[1] * 2.0, "reach={reach} transient={}", pi[1]);
        // Closed form for first-passage of an exponential clock that only
        // runs in state 0... with repairs the process returns to 0, so
        // reach(t) = 1 - exp integral; here simply check monotonicity and
        // bounds instead.
        assert!(reach <= 1.0 && reach >= 1.0 - (-0.1f64 * t).exp() - 1e-9);
    }

    #[test]
    fn erlang_two_phase_matches_closed_form() {
        // 0 ->(r) 1 ->(r) 2(failed): reach by t = 1 - e^{-rt}(1 + rt).
        let r = 0.7;
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, r)
            .rate(1, 2, r)
            .failed(2)
            .build()
            .unwrap();
        for &t in &[0.5, 2.0, 8.0] {
            let p = reach_probability(&c, t, 1e-12).unwrap();
            let exact = 1.0 - (-r * t).exp() * (1.0 + r * t);
            assert!((p - exact).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn zero_horizon_returns_initial_mass() {
        let c = birth_death(1.0, 1.0);
        let p = reach_probability(&c, 0.0, 1e-12).unwrap();
        assert_eq!(p, 0.0);
        let c2 = CtmcBuilder::new(2)
            .initial(0, 0.3)
            .initial(1, 0.7)
            .failed(1)
            .build()
            .unwrap();
        let p2 = reach_probability(&c2, 0.0, 1e-12).unwrap();
        assert!((p2 - 0.7).abs() < 1e-15);
    }

    #[test]
    fn rateless_chain_is_constant() {
        let c = CtmcBuilder::new(3)
            .initial(0, 0.2)
            .initial(1, 0.8)
            .failed(2)
            .build()
            .unwrap();
        let pi = transient_distribution(&c, 100.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.2, 0.8, 0.0]);
        assert_eq!(reach_probability(&c, 100.0, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn distribution_stays_normalized_on_larger_chain() {
        // Cyclic chain with heterogeneous rates.
        let n = 20;
        let mut b = CtmcBuilder::new(n);
        b.initial(0, 1.0);
        for s in 0..n {
            b.rate(s, (s + 1) % n, 0.5 + s as f64 * 0.37);
            b.rate(s, (s + 7) % n, 0.1);
        }
        let c = b.failed(n - 1).build().unwrap();
        let pi = transient_distribution(&c, 3.0, 1e-12).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn long_horizon_with_high_rates_is_stable() {
        let c = birth_death(120.0, 80.0);
        let pi = transient_distribution(&c, 50.0, 1e-10).unwrap();
        // Stationary distribution: (b, a)/(a+b) = (0.4, 0.6).
        assert!((pi[0] - 0.4).abs() < 1e-6);
        assert!((pi[1] - 0.6).abs() < 1e-6);
        let reach = reach_probability(&c, 50.0, 1e-10).unwrap();
        assert!((reach - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_horizon_and_epsilon() {
        let c = birth_death(1.0, 1.0);
        assert!(matches!(
            transient_distribution(&c, -1.0, 1e-12),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            transient_distribution(&c, f64::NAN, 1e-12),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            reach_probability(&c, 1.0, 2.0),
            Err(CtmcError::InvalidEpsilon { .. })
        ));
    }
}

#[cfg(test)]
mod many_tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    fn chain() -> Ctmc {
        CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, 0.3)
            .rate(1, 0, 0.7)
            .rate(1, 2, 0.05)
            .failed(2)
            .build()
            .unwrap()
    }

    #[test]
    fn many_matches_individual_calls() {
        let c = chain();
        let horizons = [0.0, 1.5, 24.0, 96.0];
        let batched = transient_distribution_many(&c, &horizons, 1e-12).unwrap();
        for (&t, pi) in horizons.iter().zip(&batched) {
            let single = transient_distribution(&c, t, 1e-12).unwrap();
            for (a, b) in pi.iter().zip(&single) {
                assert!((a - b).abs() < 1e-9, "t={t}");
            }
        }
        let reaches = reach_probability_many(&c, &horizons, 1e-12).unwrap();
        for (&t, &p) in horizons.iter().zip(&reaches) {
            let single = reach_probability(&c, t, 1e-12).unwrap();
            assert!((p - single).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn many_preserves_order_and_monotonicity() {
        let c = chain();
        let reaches = reach_probability_many(&c, &[96.0, 24.0, 48.0], 1e-12).unwrap();
        assert!(reaches[0] > reaches[2] && reaches[2] > reaches[1]);
    }

    #[test]
    fn many_rejects_bad_inputs() {
        let c = chain();
        assert!(matches!(
            transient_distribution_many(&c, &[], 1e-12),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            transient_distribution_many(&c, &[1.0, -2.0], 1e-12),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            reach_probability_many(&c, &[1.0], 0.0),
            Err(CtmcError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn rateless_chain_many() {
        let c = CtmcBuilder::new(2)
            .initial(0, 0.4)
            .initial(1, 0.6)
            .failed(1)
            .build()
            .unwrap();
        let out = transient_distribution_many(&c, &[1.0, 5.0], 1e-12).unwrap();
        assert_eq!(out, vec![vec![0.4, 0.6], vec![0.4, 0.6]]);
    }

    #[test]
    fn wrappers_match_reference_dense_loops() {
        let c = chain();
        let horizons = [0.5, 12.0, 48.0];
        let fast = reach_probability_many(&c, &horizons, 1e-12).unwrap();
        let dense = reference::reach_probability_many(&c, &horizons, 1e-12).unwrap();
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
