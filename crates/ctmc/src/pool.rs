//! A thread-safe pool of reusable solver workspaces.
//!
//! Uniformization reuses sized buffers across solves through
//! [`SolverWorkspace`]; a pool lets a staged pipeline hand warm
//! workspaces between quantification workers instead of pinning one
//! workspace per long-lived thread.

use crate::csr::SolverWorkspace;
use std::sync::Mutex;

/// A lock-protected stack of [`SolverWorkspace`]s. Acquire pops a warm
/// workspace (or creates an empty one), release pushes it back for the
/// next solve — any thread may do either, in any order.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<SolverWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Pop a pooled workspace, or create an empty one when the pool is
    /// drained (its buffers grow on first use).
    #[must_use]
    pub fn acquire(&self) -> SolverWorkspace {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a workspace to the pool, keeping its grown buffers warm
    /// for the next [`acquire`](Self::acquire).
    pub fn release(&self, workspace: SolverWorkspace) {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .push(workspace);
    }

    /// Number of workspaces currently pooled (not checked out).
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_recycles_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.acquire();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(WorkspacePool::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let ws = pool.acquire();
                        pool.release(ws);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let idle = pool.idle();
        assert!((1..=4).contains(&idle));
    }
}
