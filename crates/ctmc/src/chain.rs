use crate::error::CtmcError;
use crate::transient;

/// A finite continuous-time Markov chain with a distinguished set of
/// *failed* states.
///
/// States are identified by dense indices `0..len()`. The rate matrix is
/// stored sparsely: for each state, the list of `(target, rate)` pairs of
/// its outgoing transitions. Diagonal entries are implicit (the exit rate of
/// a state is the sum of its outgoing rates).
///
/// Construct chains with [`CtmcBuilder`], which validates all inputs.
///
/// # Example
///
/// ```
/// use sdft_ctmc::CtmcBuilder;
///
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// // ok --1e-3--> fail, repaired at 0.05 (Example 2 of the paper).
/// let chain = CtmcBuilder::new(2)
///     .initial(0, 1.0)
///     .rate(0, 1, 1e-3)
///     .rate(1, 0, 0.05)
///     .failed(1)
///     .build()?;
/// assert_eq!(chain.len(), 2);
/// assert!(chain.is_failed(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    /// Outgoing transitions per state: `(target, rate)`, rate > 0.
    transitions: Vec<Vec<(usize, f64)>>,
    /// Initial distribution; sums to 1.
    initial: Vec<f64>,
    /// Failure flag per state.
    failed: Vec<bool>,
    /// Cached exit rate per state (sum of its outgoing rates).
    exit_rates: Vec<f64>,
    /// Cached largest exit rate (the uniformization constant `Λ`).
    max_exit_rate: f64,
}

impl Ctmc {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the chain has no states. Always `false` for a built chain,
    /// provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Outgoing transitions of `state` as `(target, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn transitions_from(&self, state: usize) -> &[(usize, f64)] {
        &self.transitions[state]
    }

    /// Total exit rate of `state` (sum of its outgoing rates). Cached at
    /// construction — the transient kernel reads this per state on every
    /// uniformization pass.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit_rates[state]
    }

    /// The largest exit rate over all states (the uniformization
    /// constant). Cached at construction.
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.max_exit_rate
    }

    /// Initial probability of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn initial_probability(&self, state: usize) -> f64 {
        self.initial[state]
    }

    /// The full initial distribution.
    #[must_use]
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }

    /// Whether `state` is a failed state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn is_failed(&self, state: usize) -> bool {
        self.failed[state]
    }

    /// Indices of all failed states.
    pub fn failed_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(s, _)| s)
    }

    /// Number of (positive-rate) transitions in the chain.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// `Pr[reach F ≤ t]` — the probability that the chain visits a failed
    /// state within the time horizon `t`, with truncation error `epsilon`.
    ///
    /// This is the quantity written `Pr[Reach≤t(F)]` in the paper; see
    /// [`reach_probability`](crate::reach_probability) for details.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` is negative or not finite, or if `epsilon`
    /// is not in `(0, 1)`.
    pub fn reach_failed_probability(&self, t: f64, epsilon: f64) -> Result<f64, CtmcError> {
        transient::reach_probability(self, t, epsilon)
    }

    /// Replace the initial distribution, validating the replacement.
    ///
    /// # Errors
    ///
    /// Returns an error if `initial` has the wrong length, contains invalid
    /// probabilities, or does not sum to one.
    pub fn with_initial_distribution(mut self, initial: Vec<f64>) -> Result<Self, CtmcError> {
        validate_initial(&initial, self.len())?;
        self.initial = initial;
        Ok(self)
    }

    /// A copy of this chain with every transition rate multiplied by
    /// `factor` (uncertainty and sensitivity studies rescale component
    /// rates this way). The structure, initial distribution and failed
    /// set are unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` is negative or not finite.
    pub fn with_scaled_rates(&self, factor: f64) -> Result<Ctmc, CtmcError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(CtmcError::InvalidRate {
                from: 0,
                to: 0,
                rate: factor,
            });
        }
        let mut scaled = self.clone();
        for transitions in scaled.transitions.iter_mut() {
            for (_, rate) in transitions.iter_mut() {
                *rate *= factor;
            }
            // Zero rates are never stored.
            transitions.retain(|&(_, rate)| rate > 0.0);
        }
        (scaled.exit_rates, scaled.max_exit_rate) = cached_exit_rates(&scaled.transitions);
        Ok(scaled)
    }

    /// A copy of this chain in which every failed state is absorbing
    /// (all outgoing transitions of failed states removed).
    #[must_use]
    pub fn with_failed_absorbing(&self) -> Ctmc {
        let mut out = self.clone();
        for (s, trans) in out.transitions.iter_mut().enumerate() {
            if out.failed[s] {
                trans.clear();
            }
        }
        (out.exit_rates, out.max_exit_rate) = cached_exit_rates(&out.transitions);
        out
    }
}

/// Per-state exit rates and their maximum, computed once per structural
/// change so the solver never re-sums transition lists.
fn cached_exit_rates(transitions: &[Vec<(usize, f64)>]) -> (Vec<f64>, f64) {
    let exit_rates: Vec<f64> = transitions
        .iter()
        .map(|row| row.iter().map(|&(_, r)| r).sum())
        .collect();
    let max = exit_rates.iter().copied().fold(0.0, f64::max);
    (exit_rates, max)
}

fn validate_initial(initial: &[f64], len: usize) -> Result<(), CtmcError> {
    if initial.len() != len {
        return Err(CtmcError::StateOutOfRange {
            state: initial.len(),
            len,
        });
    }
    let mut sum = 0.0;
    for (state, &p) in initial.iter().enumerate() {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(CtmcError::InvalidInitialProbability { state, prob: p });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > 1e-9 {
        return Err(CtmcError::InitialDistributionNotNormalized { sum });
    }
    Ok(())
}

/// Builder for [`Ctmc`] values.
///
/// All setters are non-consuming and chainable; [`CtmcBuilder::build`]
/// validates the accumulated data.
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    len: usize,
    rates: Vec<(usize, usize, f64)>,
    initial: Vec<(usize, f64)>,
    failed: Vec<usize>,
}

impl CtmcBuilder {
    /// Start building a chain with `states` states.
    #[must_use]
    pub fn new(states: usize) -> Self {
        CtmcBuilder {
            len: states,
            rates: Vec::new(),
            initial: Vec::new(),
            failed: Vec::new(),
        }
    }

    /// Add a transition `from -> to` with the given `rate`.
    ///
    /// Zero rates are accepted and ignored at build time; negative, NaN or
    /// infinite rates are rejected by [`CtmcBuilder::build`]. Repeated
    /// transitions between the same pair of states accumulate.
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> &mut Self {
        self.rates.push((from, to, rate));
        self
    }

    /// Assign initial probability `prob` to `state`. Repeated assignments
    /// to the same state accumulate.
    pub fn initial(&mut self, state: usize, prob: f64) -> &mut Self {
        self.initial.push((state, prob));
        self
    }

    /// Mark `state` as failed.
    pub fn failed(&mut self, state: usize) -> &mut Self {
        self.failed.push(state);
        self
    }

    /// Validate and build the chain.
    ///
    /// # Errors
    ///
    /// Returns an error if the state space is empty, any referenced state is
    /// out of range, any rate or initial probability is invalid, or the
    /// initial distribution does not sum to one.
    pub fn build(&self) -> Result<Ctmc, CtmcError> {
        if self.len == 0 {
            return Err(CtmcError::EmptyStateSpace);
        }
        let check = |state: usize| -> Result<(), CtmcError> {
            if state >= self.len {
                Err(CtmcError::StateOutOfRange {
                    state,
                    len: self.len,
                })
            } else {
                Ok(())
            }
        };
        let mut transitions = vec![Vec::new(); self.len];
        for &(from, to, rate) in &self.rates {
            check(from)?;
            check(to)?;
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::InvalidRate { from, to, rate });
            }
            if rate == 0.0 || from == to {
                continue;
            }
            match transitions[from].iter_mut().find(|(t, _)| *t == to) {
                Some((_, r)) => *r += rate,
                None => transitions[from].push((to, rate)),
            }
        }
        let mut initial = vec![0.0; self.len];
        for &(state, prob) in &self.initial {
            check(state)?;
            if !prob.is_finite() || prob < 0.0 {
                return Err(CtmcError::InvalidInitialProbability { state, prob });
            }
            initial[state] += prob;
        }
        validate_initial(&initial, self.len)?;
        let mut failed = vec![false; self.len];
        for &state in &self.failed {
            check(state)?;
            failed[state] = true;
        }
        let (exit_rates, max_exit_rate) = cached_exit_rates(&transitions);
        Ok(Ctmc {
            transitions,
            initial,
            failed,
            exit_rates,
            max_exit_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 1e-3)
            .rate(1, 0, 0.05)
            .failed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_exposes_structure() {
        let c = two_state();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.transitions_from(0), &[(1, 1e-3)]);
        assert_eq!(c.transitions_from(1), &[(0, 0.05)]);
        assert_eq!(c.transition_count(), 2);
        assert!((c.exit_rate(0) - 1e-3).abs() < 1e-15);
        assert!((c.max_exit_rate() - 0.05).abs() < 1e-15);
        assert!(c.is_failed(1));
        assert!(!c.is_failed(0));
        assert_eq!(c.failed_states().collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.initial_probability(0), 1.0);
    }

    #[test]
    fn rejects_empty_state_space() {
        assert_eq!(CtmcBuilder::new(0).build(), Err(CtmcError::EmptyStateSpace));
    }

    #[test]
    fn rejects_out_of_range_state() {
        let err = CtmcBuilder::new(2).initial(0, 1.0).rate(0, 5, 1.0).build();
        assert_eq!(err, Err(CtmcError::StateOutOfRange { state: 5, len: 2 }));
        let err = CtmcBuilder::new(2).initial(0, 1.0).failed(9).build();
        assert_eq!(err, Err(CtmcError::StateOutOfRange { state: 9, len: 2 }));
    }

    #[test]
    fn rejects_negative_rate() {
        let err = CtmcBuilder::new(2).initial(0, 1.0).rate(0, 1, -1.0).build();
        assert_eq!(
            err,
            Err(CtmcError::InvalidRate {
                from: 0,
                to: 1,
                rate: -1.0
            })
        );
    }

    #[test]
    fn rejects_nan_rate() {
        let err = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, f64::NAN)
            .build();
        assert!(matches!(err, Err(CtmcError::InvalidRate { .. })));
    }

    #[test]
    fn rejects_unnormalized_initial_distribution() {
        let err = CtmcBuilder::new(2).initial(0, 0.4).build();
        assert!(matches!(
            err,
            Err(CtmcError::InitialDistributionNotNormalized { .. })
        ));
    }

    #[test]
    fn rejects_negative_initial_probability() {
        let err = CtmcBuilder::new(2).initial(0, -0.5).initial(1, 1.5).build();
        assert!(matches!(
            err,
            Err(CtmcError::InvalidInitialProbability { .. })
        ));
    }

    #[test]
    fn zero_rates_and_self_loops_are_dropped() {
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 0.0)
            .rate(0, 0, 3.0)
            .build()
            .unwrap();
        assert_eq!(c.transition_count(), 0);
    }

    #[test]
    fn parallel_rates_accumulate() {
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 1.0)
            .rate(0, 1, 2.0)
            .build()
            .unwrap();
        assert_eq!(c.transitions_from(0), &[(1, 3.0)]);
    }

    #[test]
    fn absorbing_transform_removes_failed_exits() {
        let c = two_state().with_failed_absorbing();
        assert_eq!(c.transitions_from(1), &[]);
        assert_eq!(c.transitions_from(0), &[(1, 1e-3)]);
    }

    #[test]
    fn cached_rates_follow_transforms() {
        let c = two_state();
        let scaled = c.with_scaled_rates(2.0).unwrap();
        assert!((scaled.exit_rate(0) - 2e-3).abs() < 1e-15);
        assert!((scaled.max_exit_rate() - 0.1).abs() < 1e-15);
        let absorbed = c.with_failed_absorbing();
        assert_eq!(absorbed.exit_rate(1), 0.0);
        assert!((absorbed.max_exit_rate() - 1e-3).abs() < 1e-18);
        let zeroed = c.with_scaled_rates(0.0).unwrap();
        assert_eq!(zeroed.max_exit_rate(), 0.0);
        assert_eq!(zeroed.exit_rate(1), 0.0);
    }

    #[test]
    fn with_initial_distribution_replaces_and_validates() {
        let c = two_state()
            .with_initial_distribution(vec![0.25, 0.75])
            .unwrap();
        assert_eq!(c.initial_distribution(), &[0.25, 0.75]);
        let err = two_state().with_initial_distribution(vec![0.5, 0.1]);
        assert!(matches!(
            err,
            Err(CtmcError::InitialDistributionNotNormalized { .. })
        ));
        let err = two_state().with_initial_distribution(vec![1.0]);
        assert!(matches!(err, Err(CtmcError::StateOutOfRange { .. })));
    }
}
