use crate::chain::{Ctmc, CtmcBuilder};
use crate::error::CtmcError;

/// Operating mode of a state of a [`TriggeredCtmc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The equipment is switched off (standby / not demanded).
    Off,
    /// The equipment is switched on (operating).
    On,
}

/// A triggered continuous-time Markov chain (§III-A of the paper).
///
/// The state space is partitioned into *off* states `S_off` and *on* states
/// `S_on` such that
///
/// * all failed states are on-states (`F ⊆ S_on`),
/// * the initial distribution supports only off-states, and
/// * total maps `on : S_off → S_on` and `off : S_on → S_off` describe the
///   instantaneous mode switch taken when the triggering gate fails or is
///   repaired.
///
/// Construct values with [`TriggeredCtmcBuilder`], which validates these
/// invariants.
///
/// # Example
///
/// ```
/// use sdft_ctmc::TriggeredCtmcBuilder;
///
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// // The spare pump of Example 2: off <-> on, fails at 1e-3 while on,
/// // repaired at 0.05 (repairs continue while off through the off-failed
/// // latent state 3).
/// let spare = TriggeredCtmcBuilder::new()
///     .off_state()        // 0: off, ok
///     .on_state()         // 1: on, ok
///     .on_state()         // 2: on, failed
///     .off_state()        // 3: off, failed (latent)
///     .initial(0, 1.0)
///     .rate(1, 2, 1e-3)
///     .rate(2, 1, 0.05)
///     .rate(3, 0, 0.05)
///     .map(0, 1)
///     .map(3, 2)
///     .failed(2)
///     .build()?;
/// assert_eq!(spare.on_of(0), 1);
/// assert_eq!(spare.off_of(2), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TriggeredCtmc {
    chain: Ctmc,
    modes: Vec<Mode>,
    /// `on_map[s]` for off-states: the on-state entered when triggered.
    on_map: Vec<usize>,
    /// `off_map[s]` for on-states: the off-state entered when untriggered.
    off_map: Vec<usize>,
}

impl TriggeredCtmc {
    /// The underlying CTMC (rates, initial distribution, failed states).
    #[must_use]
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// Whether the chain has no states; always `false` for built values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// The mode of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn mode(&self, state: usize) -> Mode {
        self.modes[state]
    }

    /// The on-state entered from off-state `state` when triggered.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or not an off-state.
    #[must_use]
    pub fn on_of(&self, state: usize) -> usize {
        assert_eq!(self.modes[state], Mode::Off, "on_of on an on-state");
        self.on_map[state]
    }

    /// The off-state entered from on-state `state` when untriggered.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or not an on-state.
    #[must_use]
    pub fn off_of(&self, state: usize) -> usize {
        assert_eq!(self.modes[state], Mode::On, "off_of on an off-state");
        self.off_map[state]
    }

    /// The worst-case probability that the event fails at least once within
    /// horizon `t`, over all ways it may be triggered (§V-B2).
    ///
    /// For the chains built by this crate (monotone degradation with
    /// repairs), the supremum over all embedding fault trees is attained
    /// when the event is triggered at time zero and never untriggered; this
    /// method computes exactly that: the initial distribution is shifted by
    /// the `on` map and (un)triggering is ignored afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` is negative or not finite, or `epsilon` is
    /// not in `(0, 1)`.
    pub fn worst_case_failure_probability(&self, t: f64, epsilon: f64) -> Result<f64, CtmcError> {
        let shifted = self.triggered_at_zero()?;
        shifted.reach_failed_probability(t, epsilon)
    }

    /// A copy with every transition rate multiplied by `factor`
    /// (see [`Ctmc::with_scaled_rates`]); modes and maps are unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` is negative or not finite.
    pub fn with_scaled_rates(&self, factor: f64) -> Result<TriggeredCtmc, CtmcError> {
        Ok(TriggeredCtmc {
            chain: self.chain.with_scaled_rates(factor)?,
            modes: self.modes.clone(),
            on_map: self.on_map.clone(),
            off_map: self.off_map.clone(),
        })
    }

    /// The plain CTMC obtained by triggering at time zero: the initial
    /// distribution is pushed through the `on` map and mode information is
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if the shifted distribution fails validation, which
    /// cannot happen for values produced by [`TriggeredCtmcBuilder`].
    pub fn triggered_at_zero(&self) -> Result<Ctmc, CtmcError> {
        let mut init = vec![0.0; self.len()];
        for s in 0..self.len() {
            let p = self.chain.initial_probability(s);
            if p > 0.0 {
                init[self.on_map[s]] += p;
            }
        }
        self.chain.clone().with_initial_distribution(init)
    }
}

/// Builder for [`TriggeredCtmc`] values.
#[derive(Debug, Clone, Default)]
pub struct TriggeredCtmcBuilder {
    modes: Vec<Mode>,
    maps: Vec<(usize, usize)>,
    rates: Vec<(usize, usize, f64)>,
    initial: Vec<(usize, f64)>,
    failed: Vec<usize>,
}

impl TriggeredCtmcBuilder {
    /// Start building an empty triggered chain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an off-state, returning `&mut self`; the state gets the next
    /// free index (`0`, `1`, ...) in declaration order.
    pub fn off_state(&mut self) -> &mut Self {
        self.modes.push(Mode::Off);
        self
    }

    /// Append an on-state.
    pub fn on_state(&mut self) -> &mut Self {
        self.modes.push(Mode::On);
        self
    }

    /// Declare the mode switch pair `on(off_state) = on_state` and
    /// `off(on_state) = off_state`.
    pub fn map(&mut self, off_state: usize, on_state: usize) -> &mut Self {
        self.maps.push((off_state, on_state));
        self
    }

    /// Add a transition `from -> to` at `rate` (accumulating duplicates).
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> &mut Self {
        self.rates.push((from, to, rate));
        self
    }

    /// Assign initial probability (accumulating duplicates).
    pub fn initial(&mut self, state: usize, prob: f64) -> &mut Self {
        self.initial.push((state, prob));
        self
    }

    /// Mark a state as failed.
    pub fn failed(&mut self, state: usize) -> &mut Self {
        self.failed.push(state);
        self
    }

    /// Validate and build the triggered chain.
    ///
    /// # Errors
    ///
    /// In addition to the plain-CTMC validation of [`CtmcBuilder::build`],
    /// this rejects chains where a failed state is off, the initial
    /// distribution supports an on-state, or the mode maps are not total
    /// mode-respecting functions.
    pub fn build(&self) -> Result<TriggeredCtmc, CtmcError> {
        let n = self.modes.len();
        let mut builder = CtmcBuilder::new(n);
        for &(f, t, r) in &self.rates {
            builder.rate(f, t, r);
        }
        for &(s, p) in &self.initial {
            builder.initial(s, p);
        }
        for &s in &self.failed {
            builder.failed(s);
        }
        let chain = builder.build()?;

        for s in chain.failed_states() {
            if self.modes[s] == Mode::Off {
                return Err(CtmcError::FailedStateNotOn { state: s });
            }
        }
        for s in 0..n {
            if chain.initial_probability(s) > 0.0 && self.modes[s] == Mode::On {
                return Err(CtmcError::InitialStateNotOff { state: s });
            }
        }

        let mut on_map = vec![usize::MAX; n];
        let mut off_map = vec![usize::MAX; n];
        for &(off_s, on_s) in &self.maps {
            if off_s >= n || on_s >= n {
                return Err(CtmcError::StateOutOfRange {
                    state: off_s.max(on_s),
                    len: n,
                });
            }
            if self.modes[off_s] != Mode::Off {
                return Err(CtmcError::InvalidModeMap {
                    state: off_s,
                    reason: "map source must be an off-state",
                });
            }
            if self.modes[on_s] != Mode::On {
                return Err(CtmcError::InvalidModeMap {
                    state: on_s,
                    reason: "map target must be an on-state",
                });
            }
            on_map[off_s] = on_s;
            off_map[on_s] = off_s;
        }
        for s in 0..n {
            match self.modes[s] {
                Mode::Off if on_map[s] == usize::MAX => {
                    return Err(CtmcError::InvalidModeMap {
                        state: s,
                        reason: "off-state has no on-map entry (on must be total)",
                    });
                }
                Mode::On if off_map[s] == usize::MAX => {
                    return Err(CtmcError::InvalidModeMap {
                        state: s,
                        reason: "on-state has no off-map entry (off must be total)",
                    });
                }
                _ => {}
            }
        }

        Ok(TriggeredCtmc {
            chain,
            modes: self.modes.clone(),
            on_map,
            off_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spare_pump() -> TriggeredCtmc {
        TriggeredCtmcBuilder::new()
            .off_state() // 0 off ok
            .on_state() // 1 on ok
            .on_state() // 2 on failed
            .off_state() // 3 off failed latent
            .initial(0, 1.0)
            .rate(1, 2, 1e-3)
            .rate(2, 1, 0.05)
            .rate(3, 0, 0.05)
            .map(0, 1)
            .map(3, 2)
            .failed(2)
            .build()
            .unwrap()
    }

    #[test]
    fn exposes_modes_and_maps() {
        let p = spare_pump();
        assert_eq!(p.len(), 4);
        assert_eq!(p.mode(0), Mode::Off);
        assert_eq!(p.mode(1), Mode::On);
        assert_eq!(p.on_of(0), 1);
        assert_eq!(p.on_of(3), 2);
        assert_eq!(p.off_of(1), 0);
        assert_eq!(p.off_of(2), 3);
        assert!(p.chain().is_failed(2));
    }

    #[test]
    #[should_panic(expected = "on_of on an on-state")]
    fn on_of_panics_for_on_state() {
        let _ = spare_pump().on_of(1);
    }

    #[test]
    fn worst_case_equals_plain_exponential_reach() {
        // Triggered at zero and never untriggered, the spare pump behaves
        // like the plain repairable pump from state 1.
        let p = spare_pump();
        let t = 24.0;
        let worst = p.worst_case_failure_probability(t, 1e-12).unwrap();
        let plain = crate::erlang::repairable(1, 1e-3, 0.05).unwrap();
        let expected = plain.reach_failed_probability(t, 1e-12).unwrap();
        assert!((worst - expected).abs() < 1e-12, "{worst} vs {expected}");
    }

    #[test]
    fn triggered_at_zero_shifts_initial_mass() {
        let p = spare_pump();
        let shifted = p.triggered_at_zero().unwrap();
        assert_eq!(shifted.initial_probability(0), 0.0);
        assert_eq!(shifted.initial_probability(1), 1.0);
    }

    #[test]
    fn rejects_failed_off_state() {
        let err = TriggeredCtmcBuilder::new()
            .off_state()
            .on_state()
            .initial(0, 1.0)
            .map(0, 1)
            .failed(0)
            .build();
        assert_eq!(err, Err(CtmcError::FailedStateNotOn { state: 0 }));
    }

    #[test]
    fn rejects_initial_on_state() {
        let err = TriggeredCtmcBuilder::new()
            .off_state()
            .on_state()
            .initial(1, 1.0)
            .map(0, 1)
            .build();
        assert_eq!(err, Err(CtmcError::InitialStateNotOff { state: 1 }));
    }

    #[test]
    fn rejects_partial_maps() {
        let err = TriggeredCtmcBuilder::new()
            .off_state()
            .on_state()
            .on_state()
            .initial(0, 1.0)
            .map(0, 1)
            .failed(2)
            .build();
        assert!(matches!(
            err,
            Err(CtmcError::InvalidModeMap { state: 2, .. })
        ));
    }

    #[test]
    fn rejects_wrong_direction_map() {
        let err = TriggeredCtmcBuilder::new()
            .off_state()
            .on_state()
            .initial(0, 1.0)
            .map(1, 0) // swapped: source is on, target is off
            .build();
        assert!(matches!(err, Err(CtmcError::InvalidModeMap { .. })));
    }
}
