//! Mean time to failure: the expected first-passage time into the failed
//! states.
//!
//! For a chain with failed set `F`, the MTTF from state `s ∉ F` satisfies
//! the linear system `x_s = 1/E_s + Σ_{s'} (R(s,s')/E_s) · x_{s'}` where
//! `E_s` is the exit rate of `s` (and `x_s = 0` on `F`). The system is
//! solved by Gauss–Seidel iteration, which converges for any chain that
//! reaches `F` almost surely; states that cannot reach `F` have infinite
//! MTTF, detected up front by a reachability pass.

use crate::chain::Ctmc;
use crate::error::CtmcError;
use crate::stationary::StationaryOptions;

impl Ctmc {
    /// The mean time to failure from the chain's initial distribution.
    ///
    /// Returns `f64::INFINITY` when the chain reaches a failed state with
    /// probability less than one (some initial mass is trapped in states
    /// that cannot reach `F`, or in states with no exit at all).
    ///
    /// # Errors
    ///
    /// Returns an error if the tolerance is invalid or the Gauss–Seidel
    /// iteration does not converge within the budget (see
    /// [`StationaryOptions`]).
    ///
    /// # Example
    ///
    /// ```
    /// use sdft_ctmc::{erlang, StationaryOptions};
    ///
    /// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
    /// // An Erlang-k chain preserves the mean time to failure 1/λ.
    /// for k in 1..=4 {
    ///     let chain = erlang::plain(k, 1e-3)?;
    ///     let mttf = chain.mean_time_to_failure(&StationaryOptions::default())?;
    ///     assert!((mttf - 1000.0).abs() < 1e-6);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn mean_time_to_failure(&self, options: &StationaryOptions) -> Result<f64, CtmcError> {
        if !options.tolerance.is_finite() || options.tolerance <= 0.0 {
            return Err(CtmcError::InvalidEpsilon {
                epsilon: options.tolerance,
            });
        }
        let n = self.len();
        let failed: Vec<bool> = (0..n).map(|s| self.is_failed(s)).collect();

        // Backward reachability: which states can reach F at all?
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in 0..n {
            for &(to, _) in self.transitions_from(s) {
                predecessors[to].push(s);
            }
        }
        let mut can_reach = failed.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&s| failed[s]).collect();
        while let Some(s) = queue.pop() {
            for &p in &predecessors[s] {
                if !can_reach[p] {
                    can_reach[p] = true;
                    queue.push(p);
                }
            }
        }

        // Forward reachability from the initial support: if the chain
        // can wander anywhere F is unreachable (a trap entered at time
        // zero *or later*), the expectation diverges.
        let mut forward = vec![false; n];
        let mut queue: Vec<usize> = (0..n)
            .filter(|&s| self.initial_probability(s) > 0.0)
            .collect();
        for &s in &queue {
            forward[s] = true;
        }
        while let Some(s) = queue.pop() {
            for &(to, _) in self.transitions_from(s) {
                if !forward[to] {
                    forward[to] = true;
                    queue.push(to);
                }
            }
        }
        if (0..n).any(|s| forward[s] && !can_reach[s]) {
            return Ok(f64::INFINITY);
        }

        // Gauss–Seidel on the reachable transient states (every one of
        // them can reach F, so exit rates are positive).
        let mut x = vec![0.0f64; n];
        for _ in 0..options.max_iterations {
            let mut delta = 0.0f64;
            for s in 0..n {
                if failed[s] || !forward[s] {
                    continue;
                }
                let exit = self.exit_rate(s);
                debug_assert!(exit > 0.0, "transient state with F reachable has exits");
                let mut acc = 1.0;
                for &(to, rate) in self.transitions_from(s) {
                    if !failed[to] {
                        acc += rate * x[to];
                    }
                }
                let new = acc / exit;
                delta += (new - x[s]).abs();
                x[s] = new;
            }
            if delta < options.tolerance {
                let mttf: f64 = (0..n).map(|s| self.initial_probability(s) * x[s]).sum();
                return Ok(mttf);
            }
        }
        Err(CtmcError::DidNotConverge {
            iterations: options.max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::CtmcBuilder;
    use crate::erlang;

    fn opts() -> StationaryOptions {
        StationaryOptions::default()
    }

    #[test]
    fn exponential_mttf_is_reciprocal_rate() {
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 4e-3)
            .failed(1)
            .build()
            .unwrap();
        let mttf = c.mean_time_to_failure(&opts()).unwrap();
        assert!((mttf - 250.0).abs() < 1e-6);
    }

    #[test]
    fn erlang_preserves_mttf() {
        for k in 1..=4usize {
            let c = erlang::plain(k, 2e-3).unwrap();
            let mttf = c.mean_time_to_failure(&opts()).unwrap();
            assert!((mttf - 500.0).abs() < 1e-6, "k={k}: {mttf}");
        }
    }

    #[test]
    fn repair_extends_mttf_for_multiphase_chains() {
        // With k >= 2 the repair from the failed state does not matter
        // (first passage), but a *degradation* repair does. Compare a
        // 2-phase chain with and without a mid-phase repair 1 -> 0.
        let lambda = 1e-2;
        let plain = erlang::plain(2, lambda).unwrap();
        let mut b = CtmcBuilder::new(3);
        b.initial(0, 1.0)
            .rate(0, 1, 2.0 * lambda)
            .rate(1, 2, 2.0 * lambda)
            .rate(1, 0, 0.05) // inspection catches degradation
            .failed(2);
        let inspected = b.build().unwrap();
        let m_plain = plain.mean_time_to_failure(&opts()).unwrap();
        let m_inspected = inspected.mean_time_to_failure(&opts()).unwrap();
        assert!(m_inspected > m_plain * 2.0, "{m_inspected} vs {m_plain}");
    }

    #[test]
    fn unreachable_failure_gives_infinite_mttf() {
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, 1.0) // 1 is a sink without failure
            .failed(2)
            .build()
            .unwrap();
        let mttf = c.mean_time_to_failure(&opts()).unwrap();
        assert!(mttf.is_infinite());
    }

    #[test]
    fn partially_trapped_initial_mass_is_infinite() {
        let c = CtmcBuilder::new(3)
            .initial(0, 0.5)
            .initial(1, 0.5) // trapped: no transitions out of 1
            .rate(0, 2, 1.0)
            .failed(2)
            .build()
            .unwrap();
        assert!(c.mean_time_to_failure(&opts()).unwrap().is_infinite());
    }

    #[test]
    fn initially_failed_mass_contributes_zero() {
        let c = CtmcBuilder::new(2)
            .initial(0, 0.5)
            .initial(1, 0.5)
            .rate(0, 1, 0.1)
            .failed(1)
            .build()
            .unwrap();
        let mttf = c.mean_time_to_failure(&opts()).unwrap();
        assert!((mttf - 0.5 * 10.0).abs() < 1e-6);
    }

    #[test]
    fn mttf_matches_transient_integral() {
        // MTTF = ∫ (1 - F(t)) dt; approximate the integral numerically
        // from reach probabilities and compare.
        let c = erlang::repairable(2, 5e-2, 0.0).unwrap();
        let mttf = c.mean_time_to_failure(&opts()).unwrap();
        let mut integral = 0.0;
        let dt = 0.25;
        let mut t = 0.0;
        while t < 400.0 {
            let p = c.reach_failed_probability(t + dt / 2.0, 1e-10).unwrap();
            integral += (1.0 - p) * dt;
            t += dt;
        }
        assert!(
            (mttf - integral).abs() / mttf < 0.01,
            "{mttf} vs {integral}"
        );
    }
}

#[cfg(test)]
mod trap_regression_tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    /// Found in review: a non-failed sink reachable only *after* time
    /// zero must give MTTF = ∞, not a divide-by-zero / non-convergence.
    #[test]
    fn reachable_trap_yields_infinite_mttf() {
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, 1.0) // state 1 is an OK sink
            .rate(0, 2, 1.0)
            .failed(2)
            .build()
            .unwrap();
        let mttf = c
            .mean_time_to_failure(&StationaryOptions::default())
            .unwrap();
        assert!(mttf.is_infinite());
    }

    /// Unreachable junk states must not disturb the solve.
    #[test]
    fn unreachable_states_are_ignored() {
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 2, 0.5)
            .rate(1, 0, 9.0) // state 1 never entered
            .failed(2)
            .build()
            .unwrap();
        let mttf = c
            .mean_time_to_failure(&StationaryOptions::default())
            .unwrap();
        assert!((mttf - 2.0).abs() < 1e-9);
    }
}
