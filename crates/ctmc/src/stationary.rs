//! Long-run (stationary/limiting) analysis of CTMCs.
//!
//! For repairable equipment the classic complement to the time-bounded
//! reachability of [`reach_probability`](crate::reach_probability) is the
//! *steady-state unavailability*: the long-run fraction of time the
//! component spends failed. It is computed by power iteration on the
//! lazy uniformized chain `P' = ½I + ½(I + R/Λ)`, which shares the
//! CTMC's stationary distribution and is aperiodic by construction.

use crate::chain::Ctmc;
use crate::error::CtmcError;

/// Options for the power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryOptions {
    /// Convergence tolerance on the L1 distance between iterates.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for StationaryOptions {
    fn default() -> Self {
        StationaryOptions {
            tolerance: 1e-12,
            max_iterations: 1_000_000,
        }
    }
}

/// The limiting distribution of `chain` started from its initial
/// distribution.
///
/// For an irreducible chain this is the unique stationary distribution;
/// for reducible chains (e.g. with absorbing states) it is the limit
/// reached from the configured initial distribution.
///
/// # Errors
///
/// Returns an error if the options are invalid or the iteration does not
/// converge within the budget.
///
/// # Example
///
/// ```
/// use sdft_ctmc::{limiting_distribution, CtmcBuilder, StationaryOptions};
///
/// # fn main() -> Result<(), sdft_ctmc::CtmcError> {
/// // Failure rate 1e-3, repair rate 0.05: unavailability λ/(λ+μ).
/// let chain = CtmcBuilder::new(2)
///     .initial(0, 1.0)
///     .rate(0, 1, 1e-3)
///     .rate(1, 0, 0.05)
///     .failed(1)
///     .build()?;
/// let pi = limiting_distribution(&chain, &StationaryOptions::default())?;
/// assert!((pi[1] - 1e-3 / (1e-3 + 0.05)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn limiting_distribution(
    chain: &Ctmc,
    options: &StationaryOptions,
) -> Result<Vec<f64>, CtmcError> {
    if !options.tolerance.is_finite() || options.tolerance <= 0.0 {
        return Err(CtmcError::InvalidEpsilon {
            epsilon: options.tolerance,
        });
    }
    let n = chain.len();
    let rate = chain.max_exit_rate();
    if rate == 0.0 {
        return Ok(chain.initial_distribution().to_vec());
    }
    // Stiffness guard: per-iteration movement of the *slowest* component
    // scales with (min positive exit rate)/Λ, so a plain iterate-to-
    // iterate test would declare victory while slow components have not
    // moved at all. Scale the tolerance by the rate separation; genuinely
    // stiff chains then fail with DidNotConverge instead of silently
    // returning their initial distribution.
    let min_exit = (0..n)
        .map(|s| chain.exit_rate(s))
        .filter(|&e| e > 0.0)
        .fold(f64::INFINITY, f64::min);
    let effective_tolerance = (options.tolerance * (min_exit / rate)).max(f64::MIN_POSITIVE);
    let mut current = chain.initial_distribution().to_vec();
    let mut next = vec![0.0; n];
    for _ in 0..options.max_iterations {
        // One lazy uniformized step: next = ½ current + ½ current·P.
        for (v, c) in next.iter_mut().zip(&current) {
            *v = 0.5 * c;
        }
        for s in 0..n {
            let mass = current[s];
            if mass == 0.0 {
                continue;
            }
            let mut stay = mass;
            for &(to, r) in chain.transitions_from(s) {
                let moved = mass * (r / rate);
                next[to] += 0.5 * moved;
                stay -= moved;
            }
            next[s] += 0.5 * stay.max(0.0);
        }
        let delta: f64 = current.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut current, &mut next);
        if delta < effective_tolerance {
            return Ok(current);
        }
    }
    Err(CtmcError::DidNotConverge {
        iterations: options.max_iterations,
    })
}

impl Ctmc {
    /// The steady-state unavailability: the long-run probability mass on
    /// failed states.
    ///
    /// # Errors
    ///
    /// Returns an error if the power iteration does not converge (see
    /// [`limiting_distribution`]).
    pub fn steady_state_unavailability(
        &self,
        options: &StationaryOptions,
    ) -> Result<f64, CtmcError> {
        let pi = limiting_distribution(self, options)?;
        Ok(self.failed_states().map(|s| pi[s]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::CtmcBuilder;
    use crate::erlang;

    #[test]
    fn two_state_matches_closed_form() {
        let (lambda, mu) = (2e-3, 0.08);
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, lambda)
            .rate(1, 0, mu)
            .failed(1)
            .build()
            .unwrap();
        let u = c
            .steady_state_unavailability(&StationaryOptions::default())
            .unwrap();
        assert!((u - lambda / (lambda + mu)).abs() < 1e-9);
    }

    #[test]
    fn erlang_chain_unavailability() {
        // Erlang-k degradation with repair: balance equations give equal
        // flow through every phase, so π_i = π_0 for phases 0..k-1 (rate
        // kλ each) and π_k = π_0·(kλ/μ). Unavailability =
        // (kλ/μ) / (k + kλ/μ).
        for k in 1..=3usize {
            let (lambda, mu) = (5e-3, 0.1);
            let chain = erlang::repairable(k, lambda, mu).unwrap();
            let u = chain
                .steady_state_unavailability(&StationaryOptions::default())
                .unwrap();
            let ratio = k as f64 * lambda / mu;
            let expected = ratio / (k as f64 + ratio);
            assert!((u - expected).abs() < 1e-9, "k={k}: {u} vs {expected}");
        }
    }

    #[test]
    fn absorbing_chain_limits_to_absorbing_mass() {
        // 0 -> 1 absorbing: everything ends up failed.
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 0.5)
            .failed(1)
            .build()
            .unwrap();
        let u = c
            .steady_state_unavailability(&StationaryOptions::default())
            .unwrap();
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rateless_chain_keeps_initial_distribution() {
        let c = CtmcBuilder::new(2)
            .initial(0, 0.7)
            .initial(1, 0.3)
            .failed(1)
            .build()
            .unwrap();
        let pi = limiting_distribution(&c, &StationaryOptions::default()).unwrap();
        assert_eq!(pi, vec![0.7, 0.3]);
    }

    #[test]
    fn respects_iteration_budget() {
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 1e-9) // extremely slow mixing
            .rate(1, 0, 1.0)
            .build()
            .unwrap();
        let err = limiting_distribution(
            &c,
            &StationaryOptions {
                tolerance: 1e-15,
                max_iterations: 3,
            },
        );
        assert!(matches!(
            err,
            Err(CtmcError::DidNotConverge { iterations: 3 })
        ));
    }

    #[test]
    fn rejects_bad_tolerance() {
        let c = CtmcBuilder::new(1).initial(0, 1.0).build().unwrap();
        assert!(matches!(
            limiting_distribution(
                &c,
                &StationaryOptions {
                    tolerance: 0.0,
                    max_iterations: 1
                }
            ),
            Err(CtmcError::InvalidEpsilon { .. })
        ));
    }
}

#[cfg(test)]
mod stiffness_regression_tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    /// Found in review: a fast component inflating Λ next to a very slow
    /// one must not make the iteration stop before the slow component
    /// has mixed — better an explicit non-convergence than a silently
    /// wrong distribution.
    #[test]
    fn stiff_chain_errors_instead_of_lying() {
        let c = CtmcBuilder::new(3)
            .initial(0, 1.0)
            .rate(0, 1, 1e-10)
            .rate(1, 0, 1e-10)
            .rate(2, 0, 1000.0)
            .failed(1)
            .build()
            .unwrap();
        let result = limiting_distribution(
            &c,
            &StationaryOptions {
                tolerance: 1e-12,
                max_iterations: 10_000,
            },
        );
        assert!(
            matches!(result, Err(CtmcError::DidNotConverge { .. })),
            "stiff chain must not return a fake limit: {result:?}"
        );
    }

    /// Moderately separated rates still converge to the right answer.
    #[test]
    fn moderate_separation_still_converges() {
        let (lambda, mu) = (1e-3, 0.5);
        let c = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, lambda)
            .rate(1, 0, mu)
            .failed(1)
            .build()
            .unwrap();
        let u = c
            .steady_state_unavailability(&StationaryOptions::default())
            .unwrap();
        assert!((u - lambda / (lambda + mu)).abs() < 1e-9);
    }
}
