use crate::chain::Ctmc;
use crate::triggered::{Mode, TriggeredCtmc};

/// A stable, hash-friendly structural signature of a chain definition.
///
/// Two chains have equal signatures iff they are *identical as labelled
/// transition systems over their dense state indices*: same state count,
/// same sparse rate matrix (bit-exact rates), same initial distribution,
/// same failed set — and, for triggered chains, the same mode partition
/// and (un)triggering maps. Node names do not exist at this level, so the
/// signature is automatically independent of how the surrounding fault
/// tree labels its events.
///
/// Signatures are cheap to hash and compare, and they order
/// deterministically (lexicographic over the canonical byte encoding),
/// so collections of signatures can be sorted into a canonical order.
///
/// The equality guarantee is exact, not probabilistic: the signature *is*
/// the full canonical encoding, not a digest of it, so equal signatures
/// imply bitwise-identical transient analysis results.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChainSignature(Vec<u8>);

impl ChainSignature {
    /// The canonical byte encoding backing this signature.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the canonical encoding in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the encoding is empty (never true for built chains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Incremental writer for canonical signature encodings. All integers are
/// written little-endian at fixed width and floats as their IEEE-754 bit
/// patterns, so the encoding is deterministic across platforms.
#[derive(Debug, Default)]
pub(crate) struct SignatureWriter {
    bytes: Vec<u8>,
}

impl SignatureWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn tag(&mut self, tag: u8) {
        self.bytes.push(tag);
    }

    pub(crate) fn usize(&mut self, value: usize) {
        self.bytes.extend_from_slice(&(value as u64).to_le_bytes());
    }

    pub(crate) fn f64(&mut self, value: f64) {
        // Bit pattern, so +0.0 and -0.0 (and NaN payloads) stay distinct;
        // exactness matters more than float-semantics equality here.
        self.bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    pub(crate) fn finish(self) -> ChainSignature {
        ChainSignature(self.bytes)
    }
}

impl Ctmc {
    /// The structural signature of this chain (see [`ChainSignature`]).
    #[must_use]
    pub fn structural_signature(&self) -> ChainSignature {
        let mut w = SignatureWriter::new();
        w.tag(b'C');
        self.write_signature(&mut w);
        w.finish()
    }

    pub(crate) fn write_signature(&self, w: &mut SignatureWriter) {
        w.usize(self.len());
        for state in 0..self.len() {
            let transitions = self.transitions_from(state);
            w.usize(transitions.len());
            for &(to, rate) in transitions {
                w.usize(to);
                w.f64(rate);
            }
        }
        for &p in self.initial_distribution() {
            w.f64(p);
        }
        for state in 0..self.len() {
            w.tag(u8::from(self.is_failed(state)));
        }
    }
}

impl TriggeredCtmc {
    /// The structural signature of this triggered chain: the underlying
    /// chain's signature extended with the mode partition and the
    /// (un)triggering maps (see [`ChainSignature`]).
    #[must_use]
    pub fn structural_signature(&self) -> ChainSignature {
        let mut w = SignatureWriter::new();
        w.tag(b'T');
        self.chain().write_signature(&mut w);
        for state in 0..self.len() {
            match self.mode(state) {
                Mode::Off => {
                    w.tag(0);
                    w.usize(self.on_of(state));
                }
                Mode::On => {
                    w.tag(1);
                    w.usize(self.off_of(state));
                }
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::chain::CtmcBuilder;
    use crate::erlang;

    #[test]
    fn identical_chains_share_a_signature() {
        let a = erlang::repairable(2, 1e-3, 0.05).unwrap();
        let b = erlang::repairable(2, 1e-3, 0.05).unwrap();
        assert_eq!(a.structural_signature(), b.structural_signature());
    }

    #[test]
    fn rates_state_counts_and_failed_sets_distinguish() {
        let base = erlang::repairable(2, 1e-3, 0.05).unwrap();
        let other_rate = erlang::repairable(2, 2e-3, 0.05).unwrap();
        let other_phases = erlang::repairable(3, 1e-3, 0.05).unwrap();
        assert_ne!(
            base.structural_signature(),
            other_rate.structural_signature()
        );
        assert_ne!(
            base.structural_signature(),
            other_phases.structural_signature()
        );

        let failed1 = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 1.0)
            .failed(1)
            .build()
            .unwrap();
        let failed_none = CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, 1.0)
            .build()
            .unwrap();
        assert_ne!(
            failed1.structural_signature(),
            failed_none.structural_signature()
        );
    }

    #[test]
    fn triggered_mode_structure_distinguishes() {
        let spare = erlang::spare(1e-3, 0.05).unwrap();
        let same = erlang::spare(1e-3, 0.05).unwrap();
        assert_eq!(spare.structural_signature(), same.structural_signature());
        let other = erlang::spare(1e-3, 0.06).unwrap();
        assert_ne!(spare.structural_signature(), other.structural_signature());
        // A triggered chain never collides with a plain chain.
        let plain = erlang::repairable(1, 1e-3, 0.05).unwrap();
        assert_ne!(spare.structural_signature(), plain.structural_signature());
    }

    #[test]
    fn signatures_order_deterministically() {
        let a = erlang::repairable(1, 1e-3, 0.05)
            .unwrap()
            .structural_signature();
        let b = erlang::repairable(2, 1e-3, 0.05)
            .unwrap()
            .structural_signature();
        let mut sorted = vec![b.clone(), a.clone()];
        sorted.sort();
        let mut again = vec![a, b];
        again.sort();
        assert_eq!(sorted, again);
        assert!(!sorted[0].is_empty());
        assert_eq!(sorted[0].as_bytes().len(), sorted[0].len());
    }
}
