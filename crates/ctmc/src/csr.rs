//! The uniformization kernel: the uniformized DTMC in CSR form, a
//! reusable [`SolverWorkspace`], and steady-state detection.
//!
//! Every transient query bottoms out here. The kernel precomputes the
//! uniformized DTMC `P = I + R/Λ` as one flat CSR layout — row offsets,
//! column indices and the jump probabilities `r/Λ` — so the inner
//! matrix–vector loop does no division and no nested-`Vec` pointer
//! chasing. Absorption of failed states is applied *while building the
//! CSR* (failed rows are simply left empty), which removes the full-chain
//! clone the old `with_failed_absorbing` path paid per solve.
//!
//! # Exact compatibility
//!
//! With steady-state detection off, the kernel performs bit-for-bit the
//! same floating-point operations as the reference dense loop (see
//! `transient::reference`): jump masses are `mass * (r/Λ)` in the
//! original transition order and the diagonal stay mass is the per-row
//! residual `mass - Σ jumps` clamped at zero — not a precomputed stay
//! *probability*, which would round differently. Results are therefore
//! bitwise-identical to the pre-CSR solver whenever steady-state
//! detection does not trigger.
//!
//! # The SpMV kernels
//!
//! Two SpMV implementations live in [`kernel`]: the scalar reference
//! loop and a blocked variant that unrolls each row into
//! [`kernel::SPMV_LANES`]-wide product blocks. The blocked path computes
//! the four jump masses of a block with independent multiplies (which
//! the compiler packs into SIMD lanes) but keeps the scatter and the
//! running stay-residual chain serial and in the original entry order,
//! so it performs exactly the scalar path's floating-point operations —
//! the two are bitwise-identical by construction, which the property
//! suite pins on random CSR matrices. Selection is deterministic: the
//! blocked kernel is always used unless the `SDFT_SPMV_KERNEL=scalar`
//! environment variable forces the reference path (read once per
//! process); it never depends on runtime CPU detection, so results can
//! never vary across machines.
//!
//! # Steady-state detection
//!
//! Uniformization needs `O(Λt)` DTMC steps; on stiff repairable chains
//! (fast repair, slow failure) the iterates converge long before the
//! Poisson window is exhausted. After each step the kernel measures
//! `δ = ‖π_{k} − π_{k-1}‖₁`. Successive-difference L1 norms are
//! non-increasing under a stochastic matrix (`‖(π−π′)P‖₁ ≤ ‖π−π′‖₁`), so
//! once `δ · remaining_h ≤ ε` every iterate inside horizon `h`'s
//! remaining Poisson window is within `ε` of `π_k` in L1, and the kernel
//! closes *that horizon's* series analytically: the horizon adds
//! `(Σ its remaining weights) · π_k` and drops out of the weight pass.
//! Each horizon is closed against its **own** remaining window — exactly
//! the decision an independent single-horizon solve would take at the
//! same step — so a shared multi-horizon solve returns bitwise-identical
//! per-horizon results to solving each horizon alone, even when
//! detection fires mid-sequence. Stepping stops once every horizon has
//! closed (by detection or by exhausting its window). The extra error is
//! at most `ε` per horizon on top of the Poisson truncation error —
//! total `≤ 2ε`. Periodic uniformized chains (no state at the maximum
//! exit rate) simply never satisfy the criterion and run the full
//! window; `Λ` is *not* padded, precisely so that the detection-off
//! results stay bitwise-identical to the old solver.
//!
//! # CSR reuse across solves
//!
//! A workspace remembers which chain its CSR buffers were built from
//! (the chain's exact [`crate::ChainSignature`] plus the absorbing
//! flag). When the next solve presents a structurally identical chain —
//! common when near-duplicate cutset models stream through a shared
//! [`crate::WorkspacePool`] in one epoch — the build is skipped and the
//! buffers reused as-is. Equal signatures mean identical transition
//! systems, so the reused CSR is bitwise the one a fresh build would
//! produce.

use crate::chain::Ctmc;
use crate::error::CtmcError;
use crate::poisson::PoissonWeights;
use crate::signature::ChainSignature;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The raw SpMV entry points, public so the property suite can pin the
/// blocked kernel bitwise against the scalar reference on arbitrary CSR
/// inputs (empty rows, duplicate/dangling columns, row lengths not
/// divisible by the block width).
pub mod kernel {
    /// Lane width of the blocked kernel. Fixed (never CPU-detected) so
    /// the operation order — and therefore every rounding decision — is
    /// identical on every machine.
    pub const SPMV_LANES: usize = 4;

    /// Signature shared by both SpMV kernels:
    /// `(row_offsets, cols, probs, current, next)`.
    pub type SpmvFn = fn(&[u32], &[u32], &[f64], &[f64], &mut [f64]);

    /// One DTMC step `next = current · P` over the CSR form — the scalar
    /// reference loop. The diagonal is the per-row residual (clamped at
    /// zero), matching the reference dense loop bit for bit.
    pub fn spmv_scalar(
        row_offsets: &[u32],
        cols: &[u32],
        probs: &[f64],
        current: &[f64],
        next: &mut [f64],
    ) {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (s, &mass) in current.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let mut stay = mass;
            for i in row_offsets[s] as usize..row_offsets[s + 1] as usize {
                let move_mass = mass * probs[i];
                next[cols[i] as usize] += move_mass;
                stay -= move_mass;
            }
            next[s] += stay.max(0.0);
        }
    }

    /// One DTMC step over the CSR form with rows blocked into
    /// [`SPMV_LANES`]-wide chunks. The block's jump masses are
    /// independent multiplies (vectorizable); the scatter and the stay
    /// chain run serially in the original entry order, so duplicate
    /// columns and the running residual round exactly as
    /// [`spmv_scalar`] does — the two kernels are bitwise-identical on
    /// every input.
    pub fn spmv_blocked(
        row_offsets: &[u32],
        cols: &[u32],
        probs: &[f64],
        current: &[f64],
        next: &mut [f64],
    ) {
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (s, &mass) in current.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let begin = row_offsets[s] as usize;
            let end = row_offsets[s + 1] as usize;
            let row_probs = &probs[begin..end];
            let row_cols = &cols[begin..end];
            let mut stay = mass;
            let mut p_blocks = row_probs.chunks_exact(SPMV_LANES);
            let mut c_blocks = row_cols.chunks_exact(SPMV_LANES);
            for (p, c) in p_blocks.by_ref().zip(c_blocks.by_ref()) {
                let m = [mass * p[0], mass * p[1], mass * p[2], mass * p[3]];
                next[c[0] as usize] += m[0];
                next[c[1] as usize] += m[1];
                next[c[2] as usize] += m[2];
                next[c[3] as usize] += m[3];
                stay -= m[0];
                stay -= m[1];
                stay -= m[2];
                stay -= m[3];
            }
            for (&p, &c) in p_blocks.remainder().iter().zip(c_blocks.remainder()) {
                let move_mass = mass * p;
                next[c as usize] += move_mass;
                stay -= move_mass;
            }
            next[s] += stay.max(0.0);
        }
    }
}

/// Which SpMV implementation [`solve`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvKernel {
    /// The scalar reference loop ([`kernel::spmv_scalar`]).
    Scalar,
    /// The blocked 4-lane kernel ([`kernel::spmv_blocked`]), bitwise
    /// equal to the scalar path. The default.
    Blocked,
}

/// The process-wide SpMV kernel selection: [`SpmvKernel::Blocked`]
/// unless `SDFT_SPMV_KERNEL=scalar` forces the reference path. Read
/// once, so the choice is stable for the life of the process.
#[must_use]
pub fn selected_spmv_kernel() -> SpmvKernel {
    static CHOICE: OnceLock<SpmvKernel> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var("SDFT_SPMV_KERNEL").as_deref() {
        Ok("scalar") => SpmvKernel::Scalar,
        _ => SpmvKernel::Blocked,
    })
}

/// Knobs of the uniformization kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Close each horizon's Poisson series once successive DTMC iterates
    /// have converged within that horizon's remaining window (see the
    /// module docs). Adds at most the truncation `ε` of extra error per
    /// horizon; disable for bitwise compatibility with the plain Jensen
    /// iteration.
    pub steady_state_detection: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            steady_state_detection: true,
        }
    }
}

/// Counters and timings of one kernel solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// States of the chain.
    pub states: usize,
    /// Stored CSR entries (off-diagonal transitions after absorption).
    pub nonzeros: usize,
    /// DTMC steps actually performed.
    pub steps_taken: usize,
    /// DTMC steps a full Poisson window would need (the largest
    /// horizon's truncation point).
    pub steps_budget: usize,
    /// The first step at which steady-state detection closed a horizon,
    /// if it closed any.
    pub steady_state_step: Option<usize>,
    /// Wall-clock spent obtaining the CSR form (building it, or proving
    /// through the chain signature that the workspace already holds it).
    pub csr_build: Duration,
    /// Whether the CSR was reused from the workspace's previous solve
    /// instead of rebuilt (see the module docs).
    pub csr_shared: bool,
    /// CSR entries the stepping loop streamed: `nonzeros × steps_taken`.
    /// Deterministic for a fixed chain and horizon set; divide by
    /// [`SolveStats::spmv_time`] for the kernel's sustained throughput.
    pub spmv_nonzeros: u64,
    /// Wall-clock of the stepping loop (SpMV plus the Poisson weight
    /// accumulation it feeds).
    pub spmv_time: Duration,
    /// Poisson window length (`right + 1`) per horizon — the number of
    /// weight applications each horizon needs, used to attribute the
    /// shared pass's cost across horizons.
    pub per_horizon_steps: Vec<usize>,
}

impl SolveStats {
    /// DTMC steps avoided by steady-state detection.
    #[must_use]
    pub fn steps_saved(&self) -> usize {
        self.steps_budget - self.steps_taken
    }
}

/// Reusable buffers for the uniformization kernel: the CSR scratch and
/// the current/next/result vectors. One workspace per worker thread
/// amortizes all solver allocations across an analysis run — each solve
/// only grows the buffers on the largest chain seen so far, and the CSR
/// buffers carry their owning chain's signature so a structurally
/// identical follow-up solve skips the rebuild entirely.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    row_offsets: Vec<u32>,
    cols: Vec<u32>,
    probs: Vec<f64>,
    current: Vec<f64>,
    next: Vec<f64>,
    results: Vec<Vec<f64>>,
    /// Identity of the CSR currently in the buffers: the chain's exact
    /// structural signature and whether failed rows were absorbed.
    csr_key: Option<(ChainSignature, bool)>,
    /// The uniformization constant of the memoized CSR.
    csr_rate: f64,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// `Pr[reach F ≤ t]` at several horizons from one uniformization pass of
/// the CSR kernel, with explicit solver options and a reusable
/// workspace. Returns the per-horizon probabilities and the solve's
/// kernel statistics.
///
/// # Errors
///
/// Returns an error if `horizons` is empty or contains an invalid
/// value, or `epsilon` is not in `(0, 1)`.
pub fn reach_probability_many_with(
    chain: &Ctmc,
    horizons: &[f64],
    epsilon: f64,
    options: &SolverOptions,
    workspace: &mut SolverWorkspace,
) -> Result<(Vec<f64>, SolveStats), CtmcError> {
    let stats = solve(chain, horizons, epsilon, true, options, workspace)?;
    let probabilities = workspace.results[..horizons.len()]
        .iter()
        .map(|pi| {
            chain
                .failed_states()
                .map(|s| pi[s])
                .sum::<f64>()
                .clamp(0.0, 1.0)
        })
        .collect();
    Ok((probabilities, stats))
}

/// Transient distributions at several horizons from one uniformization
/// pass of the CSR kernel, with explicit solver options and a reusable
/// workspace (see [`reach_probability_many_with`]).
///
/// # Errors
///
/// Same as [`reach_probability_many_with`].
pub fn transient_distribution_many_with(
    chain: &Ctmc,
    horizons: &[f64],
    epsilon: f64,
    options: &SolverOptions,
    workspace: &mut SolverWorkspace,
) -> Result<(Vec<Vec<f64>>, SolveStats), CtmcError> {
    let stats = solve(chain, horizons, epsilon, false, options, workspace)?;
    let distributions = workspace.results[..horizons.len()].to_vec();
    Ok((distributions, stats))
}

/// Build the uniformized DTMC in CSR form inside the workspace and
/// return the uniformization constant `Λ`. With `absorbing`, failed
/// states get empty rows (all their mass stays put) and `Λ` is the
/// maximum exit rate over the *non-failed* states — exactly the rate the
/// old `with_failed_absorbing` copy exposed.
fn build_csr(chain: &Ctmc, absorbing: bool, ws: &mut SolverWorkspace) -> f64 {
    let n = chain.len();
    ws.row_offsets.clear();
    ws.cols.clear();
    ws.probs.clear();
    ws.row_offsets.reserve(n + 1);

    let mut rate = 0.0f64;
    for s in 0..n {
        if !(absorbing && chain.is_failed(s)) {
            rate = rate.max(chain.exit_rate(s));
        }
    }
    if rate == 0.0 {
        ws.row_offsets.resize(n + 1, 0);
        return 0.0;
    }
    let entry = |value: usize| u32::try_from(value).expect("chain fits 32-bit CSR indices");
    for s in 0..n {
        ws.row_offsets.push(entry(ws.cols.len()));
        if absorbing && chain.is_failed(s) {
            continue;
        }
        for &(to, r) in chain.transitions_from(s) {
            ws.cols.push(entry(to));
            ws.probs.push(r / rate);
        }
    }
    ws.row_offsets.push(entry(ws.cols.len()));
    rate
}

fn prepare_results(ws: &mut SolverWorkspace, count: usize, n: usize) {
    if ws.results.len() < count {
        ws.results.resize_with(count, Vec::new);
    }
    for result in ws.results.iter_mut().take(count) {
        result.clear();
        result.resize(n, 0.0);
    }
}

/// The shared kernel: validate, obtain the CSR (rebuilding only when the
/// workspace's memoized CSR belongs to a different chain), run the
/// Poisson-weighted iteration with per-horizon steady-state closing, and
/// leave the per-horizon distributions in `ws.results[..horizons.len()]`.
fn solve(
    chain: &Ctmc,
    horizons: &[f64],
    epsilon: f64,
    absorbing: bool,
    options: &SolverOptions,
    ws: &mut SolverWorkspace,
) -> Result<SolveStats, CtmcError> {
    if horizons.is_empty() {
        return Err(CtmcError::InvalidHorizon { horizon: f64::NAN });
    }
    for &t in horizons {
        if !t.is_finite() || t < 0.0 {
            return Err(CtmcError::InvalidHorizon { horizon: t });
        }
    }
    if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
        return Err(CtmcError::InvalidEpsilon { epsilon });
    }

    let n = chain.len();
    let build_begin = Instant::now();
    let signature = chain.structural_signature();
    let csr_shared = ws
        .csr_key
        .as_ref()
        .is_some_and(|(held, held_absorbing)| *held_absorbing == absorbing && *held == signature);
    let rate = if csr_shared {
        ws.csr_rate
    } else {
        let rate = build_csr(chain, absorbing, ws);
        ws.csr_key = Some((signature, absorbing));
        ws.csr_rate = rate;
        rate
    };
    let csr_build = build_begin.elapsed();
    prepare_results(ws, horizons.len(), n);

    if rate == 0.0 {
        for result in ws.results.iter_mut().take(horizons.len()) {
            result.copy_from_slice(chain.initial_distribution());
        }
        return Ok(SolveStats {
            states: n,
            nonzeros: 0,
            steps_taken: 0,
            steps_budget: 0,
            steady_state_step: None,
            csr_build,
            csr_shared,
            spmv_nonzeros: 0,
            spmv_time: Duration::ZERO,
            per_horizon_steps: vec![1; horizons.len()],
        });
    }

    let weights: Vec<PoissonWeights> = horizons
        .iter()
        .map(|&t| PoissonWeights::new(rate * t, epsilon))
        .collect::<Result<_, _>>()?;
    let rights: Vec<usize> = weights.iter().map(PoissonWeights::right).collect();
    let max_right = rights.iter().copied().max().unwrap_or(0);

    ws.current.clear();
    ws.current.extend_from_slice(chain.initial_distribution());
    ws.next.clear();
    ws.next.resize(n, 0.0);

    let spmv: kernel::SpmvFn = match selected_spmv_kernel() {
        SpmvKernel::Scalar => kernel::spmv_scalar,
        SpmvKernel::Blocked => kernel::spmv_blocked,
    };
    let nonzeros = ws.probs.len();
    let mut steps_taken = 0;
    let mut steady_state_step = None;
    // Horizons drop out of the weight pass as they finish: either their
    // Poisson window is exhausted, or steady-state detection closed
    // their series early. Stepping stops when none remain open.
    let mut closed = vec![false; horizons.len()];
    let mut open = horizons.len();
    let stepping_begin = Instant::now();
    for step in 0..=max_right {
        for (h, (result, w)) in ws.results.iter_mut().zip(&weights).enumerate() {
            if closed[h] {
                continue;
            }
            let weight = w.weight(step);
            if weight > 0.0 {
                for (r, &c) in result.iter_mut().zip(&ws.current) {
                    *r += weight * c;
                }
            }
            if step == rights[h] {
                closed[h] = true;
                open -= 1;
            }
        }
        if open == 0 {
            break;
        }
        spmv(
            &ws.row_offsets,
            &ws.cols,
            &ws.probs,
            &ws.current,
            &mut ws.next,
        );
        std::mem::swap(&mut ws.current, &mut ws.next);
        steps_taken = step + 1;

        if options.steady_state_detection {
            // `ws.next` still holds the previous iterate.
            let delta: f64 = ws
                .current
                .iter()
                .zip(&ws.next)
                .map(|(a, b)| (a - b).abs())
                .sum();
            for (h, (result, w)) in ws.results.iter_mut().zip(&weights).enumerate() {
                if closed[h] {
                    continue;
                }
                // Each horizon is judged against its own remaining
                // window — the identical decision an independent
                // single-horizon solve takes at this step, so shared and
                // independent solves agree bitwise.
                let remaining = rights[h] - steps_taken;
                if remaining > 0 && delta * remaining as f64 <= epsilon {
                    let mut tail = 0.0;
                    for k in steps_taken..=w.right() {
                        tail += w.weight(k);
                    }
                    if tail > 0.0 {
                        for (r, &c) in result.iter_mut().zip(&ws.current) {
                            *r += tail * c;
                        }
                    }
                    closed[h] = true;
                    open -= 1;
                    steady_state_step.get_or_insert(steps_taken);
                }
            }
            if open == 0 {
                break;
            }
        }
    }
    let spmv_time = stepping_begin.elapsed();

    Ok(SolveStats {
        states: n,
        nonzeros,
        steps_taken,
        steps_budget: max_right,
        steady_state_step,
        csr_build,
        csr_shared,
        spmv_nonzeros: nonzeros as u64 * steps_taken as u64,
        spmv_time,
        per_horizon_steps: weights.iter().map(|w| w.right() + 1).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    const SSD_OFF: SolverOptions = SolverOptions {
        steady_state_detection: false,
    };
    const SSD_ON: SolverOptions = SolverOptions {
        steady_state_detection: true,
    };

    fn birth_death(lambda: f64, mu: f64) -> Ctmc {
        CtmcBuilder::new(2)
            .initial(0, 1.0)
            .rate(0, 1, lambda)
            .rate(1, 0, mu)
            .failed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_dense_reference_bitwise_without_ssd() {
        let mut b = CtmcBuilder::new(5);
        b.initial(0, 0.6).initial(2, 0.4);
        for s in 0..5usize {
            b.rate(s, (s + 1) % 5, 0.3 + s as f64 * 0.41);
            b.rate(s, (s + 2) % 5, 0.07);
        }
        let c = b.failed(4).build().unwrap();
        let horizons = [0.0, 1.5, 24.0, 96.0];
        let mut ws = SolverWorkspace::new();
        let (fast, _) =
            reach_probability_many_with(&c, &horizons, 1e-12, &SSD_OFF, &mut ws).unwrap();
        let dense =
            crate::transient::reference::reach_probability_many(&c, &horizons, 1e-12).unwrap();
        for (a, b) in fast.iter().zip(&dense) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        let (fast_pi, _) =
            transient_distribution_many_with(&c, &horizons, 1e-12, &SSD_OFF, &mut ws).unwrap();
        let dense_pi =
            crate::transient::reference::transient_distribution_many(&c, &horizons, 1e-12).unwrap();
        assert_eq!(fast_pi, dense_pi);
    }

    #[test]
    fn blocked_and_scalar_kernels_agree_on_a_fixed_chain() {
        let mut b = CtmcBuilder::new(6);
        b.initial(0, 1.0);
        for s in 0..6usize {
            for k in 1..=5usize {
                b.rate(s, (s + k) % 6, 0.01 + (s * 5 + k) as f64 * 0.13);
            }
        }
        let c = b.failed(5).build().unwrap();
        let mut ws = SolverWorkspace::new();
        build_csr(&c, true, &mut ws);
        let current: Vec<f64> = (0..6).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let mut scalar = vec![0.0; 6];
        let mut blocked = vec![0.0; 6];
        kernel::spmv_scalar(&ws.row_offsets, &ws.cols, &ws.probs, &current, &mut scalar);
        kernel::spmv_blocked(&ws.row_offsets, &ws.cols, &ws.probs, &current, &mut blocked);
        for (a, b) in scalar.iter().zip(&blocked) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn steady_state_detection_cuts_stiff_chains_short() {
        // Λt = 120 · 50 = 6000, but the two-state chain mixes in tens of
        // steps; detection must fire early and stay within ε.
        let c = birth_death(120.0, 80.0);
        let mut ws = SolverWorkspace::new();
        let (p, stats) = reach_probability_many_with(&c, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
        assert!(stats.steady_state_step.is_some());
        assert!(
            stats.steps_taken * 10 < stats.steps_budget,
            "took {} of {}",
            stats.steps_taken,
            stats.steps_budget
        );
        assert!(stats.steps_saved() > 0);
        assert!((p[0] - 1.0).abs() < 1e-9);
        let (pi, _) =
            transient_distribution_many_with(&c, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
        assert!((pi[0][0] - 0.4).abs() < 1e-6);
        assert!((pi[0][1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn ssd_stays_within_epsilon_of_the_full_window() {
        let c = birth_death(120.0, 80.0);
        let mut ws = SolverWorkspace::new();
        let horizons = [10.0, 50.0];
        let eps = 1e-10;
        let (on, on_stats) =
            reach_probability_many_with(&c, &horizons, eps, &SSD_ON, &mut ws).unwrap();
        let (off, off_stats) =
            reach_probability_many_with(&c, &horizons, eps, &SSD_OFF, &mut ws).unwrap();
        assert!(on_stats.steady_state_step.is_some());
        assert_eq!(off_stats.steady_state_step, None);
        assert_eq!(off_stats.steps_taken, off_stats.steps_budget);
        for (a, b) in on.iter().zip(&off) {
            assert!((a - b).abs() <= 2.0 * eps, "{a} vs {b}");
        }
    }

    /// The tentpole guarantee of the shared multi-horizon solve: every
    /// horizon's result is bitwise the result of solving that horizon
    /// alone, including when steady-state detection closes some horizons
    /// mid-sequence.
    #[test]
    fn shared_solve_is_bitwise_identical_to_independent_solves() {
        let stiff = birth_death(120.0, 80.0);
        let mut b = CtmcBuilder::new(4);
        b.initial(0, 1.0);
        b.rate(0, 1, 0.9)
            .rate(1, 2, 1.4)
            .rate(2, 0, 0.3)
            .rate(2, 3, 0.2);
        let drifting = b.failed(3).build().unwrap();
        for chain in [&stiff, &drifting] {
            for options in [&SSD_ON, &SSD_OFF] {
                let horizons = [0.5, 10.0, 50.0, 200.0];
                let mut ws = SolverWorkspace::new();
                let (shared, shared_stats) =
                    reach_probability_many_with(chain, &horizons, 1e-10, options, &mut ws).unwrap();
                for (h, &t) in horizons.iter().enumerate() {
                    let mut solo_ws = SolverWorkspace::new();
                    let (solo, _) =
                        reach_probability_many_with(chain, &[t], 1e-10, options, &mut solo_ws)
                            .unwrap();
                    assert_eq!(
                        shared[h].to_bits(),
                        solo[0].to_bits(),
                        "horizon {t}: {} vs {}",
                        shared[h],
                        solo[0]
                    );
                }
                // The shared pass never steps past the largest horizon's
                // own budget.
                assert!(shared_stats.steps_taken <= shared_stats.steps_budget);
            }
        }
    }

    #[test]
    fn workspace_reuses_the_csr_for_an_identical_chain() {
        let a = birth_death(120.0, 80.0);
        let b = birth_death(120.0, 80.0);
        let other = birth_death(60.0, 80.0);
        let mut ws = SolverWorkspace::new();
        let (_, first) = reach_probability_many_with(&a, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
        assert!(!first.csr_shared);
        let (p_fresh, again) =
            reach_probability_many_with(&b, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
        assert!(again.csr_shared, "identical chain must reuse the CSR");
        let (_, rebuilt) =
            reach_probability_many_with(&other, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
        assert!(!rebuilt.csr_shared, "different chain must rebuild");
        // Reuse is bitwise-invisible.
        let mut cold = SolverWorkspace::new();
        let (p_cold, _) =
            reach_probability_many_with(&b, &[50.0], 1e-10, &SSD_ON, &mut cold).unwrap();
        assert_eq!(p_fresh[0].to_bits(), p_cold[0].to_bits());
    }

    #[test]
    fn workspace_is_reusable_across_different_chains() {
        let big = birth_death(120.0, 80.0);
        let mut b = CtmcBuilder::new(4);
        b.initial(0, 1.0);
        b.rate(0, 1, 0.2).rate(1, 2, 0.4).rate(2, 3, 0.1);
        let small = b.failed(3).build().unwrap();
        let mut ws = SolverWorkspace::new();
        for _ in 0..3 {
            let (p_big, s_big) =
                reach_probability_many_with(&big, &[50.0], 1e-10, &SSD_ON, &mut ws).unwrap();
            assert!((p_big[0] - 1.0).abs() < 1e-9);
            assert_eq!(s_big.states, 2);
            let (p_small, s_small) =
                reach_probability_many_with(&small, &[24.0], 1e-12, &SSD_ON, &mut ws).unwrap();
            assert_eq!(s_small.states, 4);
            assert_eq!(s_small.nonzeros, 3);
            let dense = crate::transient::reference::reach_probability_many(&small, &[24.0], 1e-12)
                .unwrap();
            assert!((p_small[0] - dense[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn rateless_chain_reports_zero_steps() {
        let c = CtmcBuilder::new(2)
            .initial(0, 0.3)
            .initial(1, 0.7)
            .failed(1)
            .build()
            .unwrap();
        let mut ws = SolverWorkspace::new();
        let (p, stats) =
            reach_probability_many_with(&c, &[5.0, 10.0], 1e-12, &SSD_ON, &mut ws).unwrap();
        assert_eq!(p, vec![0.7, 0.7]);
        assert_eq!(stats.steps_taken, 0);
        assert_eq!(stats.steps_budget, 0);
        assert_eq!(stats.per_horizon_steps, vec![1, 1]);
        assert_eq!(stats.nonzeros, 0);
        assert_eq!(stats.spmv_nonzeros, 0);
    }

    #[test]
    fn per_horizon_steps_track_the_poisson_windows() {
        let c = birth_death(0.4, 1.1);
        let mut ws = SolverWorkspace::new();
        let horizons = [1.0, 24.0, 96.0];
        let (_, stats) =
            reach_probability_many_with(&c, &horizons, 1e-12, &SSD_OFF, &mut ws).unwrap();
        assert_eq!(stats.per_horizon_steps.len(), 3);
        assert!(stats.per_horizon_steps[0] < stats.per_horizon_steps[1]);
        assert!(stats.per_horizon_steps[1] < stats.per_horizon_steps[2]);
        assert_eq!(
            stats.steps_budget + 1,
            *stats.per_horizon_steps.iter().max().unwrap()
        );
        assert_eq!(
            stats.spmv_nonzeros,
            stats.nonzeros as u64 * stats.steps_taken as u64
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let c = birth_death(1.0, 1.0);
        let mut ws = SolverWorkspace::new();
        assert!(matches!(
            reach_probability_many_with(&c, &[], 1e-12, &SSD_ON, &mut ws),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            reach_probability_many_with(&c, &[1.0, -2.0], 1e-12, &SSD_ON, &mut ws),
            Err(CtmcError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            reach_probability_many_with(&c, &[1.0], 0.0, &SSD_ON, &mut ws),
            Err(CtmcError::InvalidEpsilon { .. })
        ));
    }
}
