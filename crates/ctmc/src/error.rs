use std::fmt;

/// Errors produced when constructing or analysing a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The chain has no states.
    EmptyStateSpace,
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        len: usize,
    },
    /// A transition rate was negative, NaN or infinite.
    InvalidRate {
        /// Source state of the transition.
        from: usize,
        /// Target state of the transition.
        to: usize,
        /// The offending rate.
        rate: f64,
    },
    /// An initial probability was negative, NaN or infinite.
    InvalidInitialProbability {
        /// The state whose initial probability is invalid.
        state: usize,
        /// The offending probability.
        prob: f64,
    },
    /// The initial distribution does not sum to one (within tolerance).
    InitialDistributionNotNormalized {
        /// The actual sum of the provided initial probabilities.
        sum: f64,
    },
    /// The analysis horizon was negative, NaN or infinite.
    InvalidHorizon {
        /// The offending horizon.
        horizon: f64,
    },
    /// The requested truncation error is not in `(0, 1)`.
    InvalidEpsilon {
        /// The offending truncation error.
        epsilon: f64,
    },
    /// A failed state of a triggered chain is not an *on* state
    /// (the paper requires `F ⊆ S_on`).
    FailedStateNotOn {
        /// The offending state.
        state: usize,
    },
    /// The initial distribution of a triggered chain gives positive
    /// probability to an *on* state (the paper requires support in `S_off`).
    InitialStateNotOff {
        /// The offending state.
        state: usize,
    },
    /// The (un)triggering map is missing an entry or maps to the wrong mode.
    InvalidModeMap {
        /// The state whose map entry is invalid.
        state: usize,
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// An Erlang model was requested with zero phases.
    ZeroPhases,
    /// An iterative computation did not converge within its budget.
    DidNotConverge {
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::EmptyStateSpace => write!(f, "chain has no states"),
            CtmcError::StateOutOfRange { state, len } => {
                write!(
                    f,
                    "state index {state} out of range for chain with {len} states"
                )
            }
            CtmcError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            CtmcError::InvalidInitialProbability { state, prob } => {
                write!(f, "invalid initial probability {prob} for state {state}")
            }
            CtmcError::InitialDistributionNotNormalized { sum } => {
                write!(f, "initial distribution sums to {sum}, expected 1")
            }
            CtmcError::InvalidHorizon { horizon } => {
                write!(f, "invalid analysis horizon {horizon}")
            }
            CtmcError::InvalidEpsilon { epsilon } => {
                write!(
                    f,
                    "invalid truncation error {epsilon}, expected a value in (0, 1)"
                )
            }
            CtmcError::FailedStateNotOn { state } => {
                write!(
                    f,
                    "failed state {state} is not an on-state (F must be a subset of S_on)"
                )
            }
            CtmcError::InitialStateNotOff { state } => {
                write!(
                    f,
                    "initial distribution supports on-state {state} (support must lie in S_off)"
                )
            }
            CtmcError::InvalidModeMap { state, reason } => {
                write!(f, "invalid mode map at state {state}: {reason}")
            }
            CtmcError::ZeroPhases => write!(f, "Erlang model requires at least one phase"),
            CtmcError::DidNotConverge { iterations } => {
                write!(f, "iteration did not converge within {iterations} steps")
            }
        }
    }
}

impl std::error::Error for CtmcError {}
