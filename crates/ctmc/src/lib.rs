#![warn(missing_docs)]

//! Continuous-time Markov chains for fault tree analysis.
//!
//! This crate provides the Markov-chain substrate used by the SD fault tree
//! analysis of Krčál & Krčál (DSN 2015):
//!
//! * [`Ctmc`] — a finite CTMC with a sparse rate matrix, an initial
//!   distribution and a set of *failed* states,
//! * [`transient_distribution`] / [`reach_probability`] — time-bounded
//!   reachability `Pr[reach F ≤ t]` by uniformization (Jensen's method)
//!   with stable Poisson weights,
//! * [`TriggeredCtmc`] — a CTMC whose state space is partitioned into
//!   *on*/*off* modes with total (un)triggering maps, modelling equipment
//!   that is switched on by the failure of a gate (§III-A of the paper),
//! * [`erlang`] — builders for the Erlang-phase failure/repair models used
//!   in the paper's experimental evaluation (§VI-A),
//! * [`limiting_distribution`] — long-run analysis (steady-state
//!   unavailability of repairable equipment).
//!
//! # Example
//!
//! ```
//! use sdft_ctmc::erlang;
//!
//! # fn main() -> Result<(), sdft_ctmc::CtmcError> {
//! // A pump that fails in operation once per 1000 h and is repaired once
//! // per 20 h (Example 2 of the paper), analysed over a 24 h mission.
//! let pump = erlang::repairable(1, 1e-3, 0.05)?;
//! let p = pump.reach_failed_probability(24.0, 1e-12)?;
//! assert!(p > 0.0 && p < 24.0 * 1e-3);
//! # Ok(())
//! # }
//! ```

mod chain;
mod csr;
pub mod erlang;
mod error;
mod mttf;
mod poisson;
mod pool;
mod signature;
mod stationary;
mod transient;
mod triggered;

pub use chain::{Ctmc, CtmcBuilder};
pub use csr::{
    kernel, reach_probability_many_with, selected_spmv_kernel, transient_distribution_many_with,
    SolveStats, SolverOptions, SolverWorkspace, SpmvKernel,
};
pub use error::CtmcError;
pub use poisson::PoissonWeights;
pub use pool::WorkspacePool;
pub use signature::ChainSignature;
pub use stationary::{limiting_distribution, StationaryOptions};
#[doc(hidden)]
pub use transient::reference;
pub use transient::{
    reach_probability, reach_probability_many, transient_distribution, transient_distribution_many,
};
pub use triggered::{Mode, TriggeredCtmc, TriggeredCtmcBuilder};

/// Default truncation error for Poisson weights / transient analysis.
pub const DEFAULT_EPSILON: f64 = 1e-12;
