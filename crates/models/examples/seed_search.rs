//! Throwaway calibration helper: scan seeds until the generated models
//! land inside the paper's BE/gate/MCS bands.

use sdft_ft::EventProbabilities;
use sdft_mocus::{minimal_cutsets, MocusOptions};
use sdft_models::industrial::{generate, model1, model2};

fn main() {
    let targets = [
        ("model1", model1(), 2_995usize, 52_213usize, 74_130usize),
        ("model2", model2(), 2_040, 56_863, 76_921),
    ];
    let within =
        |got: usize, want: usize, tol: f64| (got as f64 - want as f64).abs() / want as f64 <= tol;
    for (name, base, be_t, gates_t, mcs_t) in targets {
        for offset in 0u64..200 {
            let mut config = base.clone();
            config.seed = base.seed.wrapping_add(offset * 0x9e37);
            let tree = generate(&config);
            let be = tree.num_basic_events();
            let gates = tree.num_gates();
            if !(within(be, be_t, 0.10) && within(gates, gates_t, 0.15)) {
                continue;
            }
            let probs = EventProbabilities::from_static(&tree).unwrap();
            let Ok(mcs) = minimal_cutsets(&tree, &probs, &MocusOptions::default()) else {
                continue;
            };
            let rea = mcs.rare_event_approximation(|e| probs.get(e));
            let ok = within(mcs.len(), mcs_t, 0.10) && (5e-10..=5e-9).contains(&rea);
            println!(
                "{name} seed={:#x} be={be} gates={gates} mcs={} rea={rea:.3e} {}",
                config.seed,
                mcs.len(),
                if ok { "OK" } else { "" }
            );
            if ok {
                break;
            }
        }
    }
}
