//! Dynamic annotation of static fault trees by importance ranking
//! (§VI-B of the paper).
//!
//! The paper replaces the top-percentage of basic events by Fussell–Vesely
//! importance with dynamic (Erlang-`k`, repairable) events, and builds
//! *triggering chains* among dynamic events of equal importance — such
//! events play the role of symmetric redundant parts, so "start the next
//! one when the previous one has failed" is the natural timed refinement.
//!
//! A chain `e₁ → e₂ → e₃` is realized with per-event wrapper gates:
//! `e₂` is triggered by a fresh gate `OR(e₁)` and `e₃` by `OR(e₂)`. Each
//! wrapper subtree contains exactly one dynamic event, so every
//! triggering gate has *static branching* (§V-A) — the cheapest class for
//! the per-cutset quantification, which is what lets the analysis scale
//! to these model sizes.

use sdft_ctmc::erlang;
use sdft_ft::{Behavior, FaultTree, FaultTreeBuilder, FtError, NodeId};
use std::collections::HashMap;

/// Configuration of the annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationConfig {
    /// Fraction of basic events to make dynamic (top of the ranking).
    pub dynamic_fraction: f64,
    /// Fraction of basic events to place in triggering chains (the paper
    /// uses a tenth of the dynamic fraction).
    pub trigger_fraction: f64,
    /// Erlang phases `k` per dynamic event.
    pub phases: usize,
    /// Repair rate `μ` (0 disables repairs).
    pub repair_rate: f64,
    /// Mission time used to derive the failure rate from the event's
    /// static probability (`λ = -ln(1-p)/T`), preserving the worst-case
    /// failure probability at that horizon.
    pub mission_time: f64,
    /// Maximum length of one triggering chain.
    pub max_chain: usize,
}

impl AnnotationConfig {
    /// The paper's §VI-B setup for a given percentage of dynamic events:
    /// `trigger% = dynamic% / 10`, `k = 1`, repairs once per 100 h,
    /// 24 h mission.
    #[must_use]
    pub fn percent_dynamic(percent: f64) -> Self {
        AnnotationConfig {
            dynamic_fraction: percent / 100.0,
            trigger_fraction: percent / 1000.0,
            phases: 1,
            repair_rate: 0.01,
            mission_time: 24.0,
            max_chain: 4,
        }
    }
}

/// The outcome of [`annotate`].
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The rebuilt SD fault tree.
    pub tree: FaultTree,
    /// How many basic events became dynamic.
    pub dynamic_events: usize,
    /// How many of those are triggered (chain members after the first).
    pub triggered_events: usize,
}

/// Replace the top-ranked basic events of a *static* `tree` with dynamic
/// events, chaining equal-importance events with triggers.
///
/// `ranking` is a descending importance ranking (e.g. from
/// `sdft_importance::fussell_vesely_ranking`); only basic-event entries
/// are considered, and events with zero probability are skipped (they
/// have no failure rate to preserve).
///
/// # Errors
///
/// Returns an error if the tree is not static or rebuilding fails.
pub fn annotate(
    tree: &FaultTree,
    ranking: &[(NodeId, f64)],
    config: &AnnotationConfig,
) -> Result<Annotated, FtError> {
    let num_events = tree.num_basic_events();
    let dynamic_target = ((num_events as f64) * config.dynamic_fraction).round() as usize;
    let trigger_target = ((num_events as f64) * config.trigger_fraction).round() as usize;

    // Pick the top of the ranking, keeping the ranking order.
    let mut chosen: Vec<(NodeId, f64)> = Vec::new();
    for &(event, score) in ranking {
        if chosen.len() >= dynamic_target {
            break;
        }
        match tree.behavior(event) {
            Some(Behavior::Static { probability }) if *probability > 0.0 => {
                chosen.push((event, score));
            }
            Some(Behavior::Static { .. }) => {}
            _ => {
                return Err(FtError::KindMismatch {
                    name: tree.name(event).to_owned(),
                    expected: "a static basic event",
                })
            }
        }
    }

    // Group consecutive equal-importance events into chains and assign
    // trigger roles until the budget is exhausted.
    let mut role: HashMap<NodeId, Role> = HashMap::new();
    let mut triggered_events = 0;
    let mut i = 0;
    while i < chosen.len() {
        let (first, score) = chosen[i];
        let mut group = vec![first];
        let mut j = i + 1;
        while j < chosen.len() && group.len() < config.max_chain && approx_equal(chosen[j].1, score)
        {
            group.push(chosen[j].0);
            j += 1;
        }
        role.insert(first, Role::Plain);
        for window in group.windows(2) {
            if triggered_events < trigger_target {
                role.insert(
                    window[1],
                    Role::Triggered {
                        predecessor: window[0],
                    },
                );
                triggered_events += 1;
            } else {
                role.insert(window[1], Role::Plain);
            }
        }
        i = j;
    }
    for &(event, _) in &chosen {
        role.entry(event).or_insert(Role::Plain);
    }

    // Rebuild the tree. Original ids are preserved (nodes are copied in
    // creation order); wrapper gates and triggers are appended at the end.
    let mut b = FaultTreeBuilder::new();
    for id in tree.node_ids() {
        let name = tree.name(id);
        if tree.is_gate(id) {
            b.gate(
                name,
                tree.gate_kind(id).expect("gate"),
                tree.gate_inputs(id).to_vec(),
            )?;
            continue;
        }
        let probability = tree
            .static_probability(id)
            .ok_or_else(|| FtError::KindMismatch {
                name: name.to_owned(),
                expected: "a static basic event",
            })?;
        match role.get(&id) {
            None => {
                b.static_event(name, probability)?;
            }
            Some(Role::Plain) => {
                let lambda = rate_for(probability, config.mission_time, config.phases);
                let chain = erlang::repairable(config.phases, lambda, config.repair_rate)?;
                b.dynamic_event(name, chain)?;
            }
            Some(Role::Triggered { .. }) => {
                let lambda = rate_for(probability, config.mission_time, config.phases);
                let chain = erlang::triggered(config.phases, lambda, config.repair_rate)?;
                b.triggered_event(name, chain)?;
            }
        }
    }
    b.top(tree.top());
    // Wrapper gates and trigger edges.
    for (&event, r) in &role {
        if let Role::Triggered { predecessor } = r {
            let wrapper = b.gate(
                &format!("{}__start", tree.name(event)),
                sdft_ft::GateKind::Or,
                [*predecessor],
            )?;
            b.trigger(wrapper, event)?;
        }
    }
    let rebuilt = b.build()?;
    Ok(Annotated {
        tree: rebuilt,
        dynamic_events: chosen.len(),
        triggered_events,
    })
}

#[derive(Debug, Clone, Copy)]
enum Role {
    Plain,
    Triggered { predecessor: NodeId },
}

fn approx_equal(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale < 1e-9
}

/// The failure rate `λ` of an Erlang-`k` chain (per-phase rate `kλ`)
/// whose probability of having failed by `mission_time` equals
/// `probability`.
///
/// Preserving the *mission-horizon failure probability* — rather than the
/// paper's mean time to failure — keeps the worst-case probabilities, and
/// with them the minimal cutset list, identical across `k`, so the phase
/// sweep (T4) isolates the cost of larger per-cutset chains. For `k = 1`
/// both conventions coincide (`λ = -ln(1-p)/T`).
fn rate_for(probability: f64, mission_time: f64, phases: usize) -> f64 {
    let p = probability.min(1.0 - 1e-12);
    if phases <= 1 {
        return -(1.0 - p).ln() / mission_time;
    }
    // Erlang(k, kλ) CDF at T is monotone in λ: bisect.
    let cdf = |lambda: f64| -> f64 {
        let rt = phases as f64 * lambda * mission_time;
        let mut term = 1.0;
        let mut partial = 1.0;
        for n in 1..phases {
            term *= rt / n as f64;
            partial += term;
        }
        1.0 - (-rt).exp() * partial
    };
    let mut lo = 0.0;
    let mut hi = -(1.0 - p).ln() / mission_time; // exponential rate
    while cdf(hi) < p {
        hi *= 2.0; // Erlang fails later, so the rate must grow
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::industrial;
    use sdft_ft::EventProbabilities;
    use sdft_importance::fussell_vesely_ranking;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    fn ranked_model() -> (FaultTree, Vec<(NodeId, f64)>) {
        let tree = industrial::generate(&industrial::model1().scaled(0.03));
        let probs = EventProbabilities::from_static(&tree).unwrap();
        let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
        let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
        (tree, ranking)
    }

    #[test]
    fn annotation_hits_the_targets() {
        let (tree, ranking) = ranked_model();
        let cfg = AnnotationConfig::percent_dynamic(20.0);
        let annotated = annotate(&tree, &ranking, &cfg).unwrap();
        let expected = (tree.num_basic_events() as f64 * 0.2).round() as usize;
        assert_eq!(annotated.dynamic_events, expected);
        assert_eq!(annotated.tree.dynamic_basic_events().count(), expected);
        assert!(annotated.triggered_events <= expected);
        // Structure below wrappers is unchanged.
        assert_eq!(annotated.tree.num_basic_events(), tree.num_basic_events());
        assert_eq!(
            annotated.tree.num_gates(),
            tree.num_gates() + annotated.triggered_events
        );
    }

    #[test]
    fn triggered_events_follow_equal_importance_predecessors() {
        let (tree, ranking) = ranked_model();
        let cfg = AnnotationConfig::percent_dynamic(50.0);
        let annotated = annotate(&tree, &ranking, &cfg).unwrap();
        let t = &annotated.tree;
        let mut found = 0;
        for event in t.dynamic_basic_events() {
            if let Some(gate) = t.trigger_source(event) {
                // The wrapper has exactly one input: the predecessor.
                let inputs = t.gate_inputs(gate);
                assert_eq!(inputs.len(), 1);
                assert!(t.behavior(inputs[0]).is_some_and(Behavior::is_dynamic));
                found += 1;
            }
        }
        assert_eq!(found, annotated.triggered_events);
        assert!(found > 0, "expected some triggered events at 50%");
    }

    #[test]
    fn zero_percent_is_the_identity() {
        let (tree, ranking) = ranked_model();
        let cfg = AnnotationConfig::percent_dynamic(0.0);
        let annotated = annotate(&tree, &ranking, &cfg).unwrap();
        assert_eq!(annotated.dynamic_events, 0);
        assert!(annotated.tree.is_static());
        assert_eq!(annotated.tree.num_gates(), tree.num_gates());
    }

    #[test]
    fn rate_preserves_worst_case_probability() {
        let p = 0.0123;
        let t = 24.0;
        let lambda = rate_for(p, t, 1);
        let back = 1.0 - (-lambda * t).exp();
        assert!((back - p).abs() < 1e-12);
    }

    #[test]
    fn erlang_rate_preserves_horizon_probability() {
        let p = 3.4e-4;
        let t = 24.0;
        for k in 2..=4usize {
            let lambda = rate_for(p, t, k);
            let chain = erlang::repairable(k, lambda, 0.0).unwrap();
            let back = chain.reach_failed_probability(t, 1e-13).unwrap();
            assert!(
                (back - p).abs() / p < 1e-6,
                "k={k}: {back} vs {p} (lambda {lambda})"
            );
            // The Erlang rate exceeds the exponential rate.
            assert!(lambda > rate_for(p, t, 1));
        }
    }
}
