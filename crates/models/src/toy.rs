//! The running example of the paper: an emergency cooling system with a
//! water tank and two redundant pumps (Examples 1 and 3).

use sdft_ctmc::erlang;
use sdft_ft::{FaultTree, FaultTreeBuilder};

/// Example 1: the purely static toy model.
///
/// Basic events: `a`/`c` — pumps 1/2 fail to start (3·10⁻³), `b`/`d` —
/// pumps fail in operation (1·10⁻³), `e` — water tank fails (3·10⁻⁶).
/// The minimal cutsets are `{e}`, `{a,c}`, `{a,d}`, `{b,c}`, `{b,d}`.
#[must_use]
pub fn example1() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let a = b.static_event("a", 3e-3).expect("valid");
    let bb = b.static_event("b", 1e-3).expect("valid");
    let c = b.static_event("c", 3e-3).expect("valid");
    let d = b.static_event("d", 1e-3).expect("valid");
    let e = b.static_event("e", 3e-6).expect("valid");
    let p1 = b.or("pump1", [a, bb]).expect("valid");
    let p2 = b.or("pump2", [c, d]).expect("valid");
    let pumps = b.and("pumps", [p1, p2]).expect("valid");
    let top = b.or("cooling", [pumps, e]).expect("valid");
    b.top(top);
    b.build().expect("example 1 is a valid fault tree")
}

/// Example 3: the SD refinement of [`example1`].
///
/// The failures in operation become dynamic: `b` is an always-on
/// repairable pump (failure rate 10⁻³/h, repair rate 0.05/h, Example 2)
/// and `d` is a spare pump triggered by the failure of pump 1.
#[must_use]
pub fn example3() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let a = b.static_event("a", 3e-3).expect("valid");
    let bb = b
        .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).expect("valid"))
        .expect("valid");
    let c = b.static_event("c", 3e-3).expect("valid");
    let d = b
        .triggered_event("d", erlang::spare(1e-3, 0.05).expect("valid"))
        .expect("valid");
    let e = b.static_event("e", 3e-6).expect("valid");
    let p1 = b.or("pump1", [a, bb]).expect("valid");
    let p2 = b.or("pump2", [c, d]).expect("valid");
    let pumps = b.and("pumps", [p1, p2]).expect("valid");
    let top = b.or("cooling", [pumps, e]).expect("valid");
    b.trigger(p1, d).expect("valid");
    b.top(top);
    b.build().expect("example 3 is a valid fault tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_has_the_paper_structure() {
        let t = example1();
        assert_eq!(t.num_basic_events(), 5);
        assert_eq!(t.num_gates(), 4);
        assert!(t.is_static());
    }

    #[test]
    fn example3_is_dynamic_with_one_trigger() {
        let t = example3();
        assert_eq!(t.dynamic_basic_events().count(), 2);
        let d = t.node_by_name("d").unwrap();
        assert_eq!(t.trigger_source(d), t.node_by_name("pump1"));
    }
}
