//! A parametric generator for industrial-scale, PSA-shaped fault trees —
//! the stand-in for the proprietary nuclear safety studies of §VI-B.
//!
//! The generated trees have the structure of a real probabilistic safety
//! assessment:
//!
//! * a top OR over *accident sequences* (event-tree style), each the AND
//!   of an initiating event and the failure of 2–4 safety functions,
//! * a pool of *front-line systems* shared across sequences, each with
//!   redundant trains,
//! * per-train *support systems* (cooling, power), themselves layered,
//!   creating cross-system minimal cutsets,
//! * per-component failure-mode pairs (demand + operation — the
//!   operation modes are the natural dynamic candidates for
//!   [`crate::annotate`]),
//! * deep pass-through *transfer gate* chains between the sequence logic
//!   and the system gates — the reason real PSA models have an order of
//!   magnitude more gates than basic events.
//!
//! All structure is drawn deterministically from the seed, so
//! [`model1`]/[`model2`] always produce the same trees. The default
//! configurations are calibrated to land near the paper's model sizes
//! (≈3,000 / ≈2,000 basic events, ≈52k / ≈57k gates, ≈75k minimal
//! cutsets above the 10⁻¹⁵ cutoff).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdft_ft::{FaultTree, FaultTreeBuilder, NodeId};

/// Configuration of the industrial generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IndustrialConfig {
    /// RNG seed; the tree is a deterministic function of the config.
    pub seed: u64,
    /// Number of initiating-event basic events.
    pub initiating_events: usize,
    /// Number of accident sequences (each picks one initiating event).
    pub sequences: usize,
    /// Number of front-line safety systems in the pool.
    pub front_line_systems: usize,
    /// Safety functions demanded per sequence (inclusive range).
    pub functions_per_sequence: (usize, usize),
    /// Fraction of sequences demanding exactly two functions (the
    /// dominant, cutoff-surviving sequences).
    pub two_function_fraction: f64,
    /// Components per front-line train.
    pub components_per_train: usize,
    /// Number of first-level support systems (cooling and the like).
    pub support_systems: usize,
    /// Components per support train.
    pub support_components: usize,
    /// Number of second-level support systems (power and the like).
    pub deep_support_systems: usize,
    /// Transfer-gate chain depth between sequences and systems
    /// (inclusive range).
    pub transfer_depth: (usize, usize),
    /// Log-uniform range of component failure-mode probabilities.
    pub component_prob: (f64, f64),
    /// Log-uniform range of initiating-event probabilities.
    pub initiating_prob: (f64, f64),
    /// Fraction of front-line systems built with three trains failing
    /// 2-of-3 (a voting gate) instead of two trains failing AND-wise.
    /// The paper's formalism has no voting gates, so the calibrated
    /// [`model1`]/[`model2`] use 0; raise it to exercise the at-least
    /// extension at scale.
    pub three_train_fraction: f64,
}

impl IndustrialConfig {
    /// Scale every count by `factor` (for quick runs and CI); clamps so
    /// the model stays well-formed.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(2);
        IndustrialConfig {
            seed: self.seed,
            initiating_events: scale(self.initiating_events),
            sequences: scale(self.sequences),
            front_line_systems: scale(self.front_line_systems),
            functions_per_sequence: self.functions_per_sequence,
            two_function_fraction: self.two_function_fraction,
            components_per_train: self.components_per_train.max(2),
            support_systems: scale(self.support_systems),
            support_components: self.support_components,
            deep_support_systems: scale(self.deep_support_systems),
            transfer_depth: self.transfer_depth,
            component_prob: self.component_prob,
            initiating_prob: self.initiating_prob,
            three_train_fraction: self.three_train_fraction,
        }
    }
}

/// Configuration calibrated towards the paper's model 1 (2,995 basic
/// events, 52,213 gates, 74,130 MCS above 10⁻¹⁵).
#[must_use]
pub fn model1() -> IndustrialConfig {
    IndustrialConfig {
        seed: 0x227d6,
        initiating_events: 300,
        sequences: 2_000,
        front_line_systems: 44,
        functions_per_sequence: (2, 4),
        two_function_fraction: 0.055,
        components_per_train: 12,
        support_systems: 12,
        support_components: 8,
        deep_support_systems: 4,
        transfer_depth: (6, 12),
        component_prob: (1e-5, 6.9e-4),
        initiating_prob: (1e-6, 1.2e-3),
        three_train_fraction: 0.0,
    }
}

/// Configuration calibrated towards the paper's model 2 (2,040 basic
/// events, 56,863 gates, 76,921 MCS) — fewer events, more gate logic and
/// heavier sequences, which is what made model 2 the slower one in the
/// paper.
#[must_use]
pub fn model2() -> IndustrialConfig {
    IndustrialConfig {
        seed: 0x189a0,
        initiating_events: 330,
        sequences: 2_400,
        front_line_systems: 30,
        functions_per_sequence: (2, 4),
        two_function_fraction: 0.035,
        components_per_train: 10,
        support_systems: 10,
        support_components: 7,
        deep_support_systems: 3,
        transfer_depth: (6, 10),
        component_prob: (1e-5, 6.0e-4),
        initiating_prob: (1e-6, 1.2e-3),
        three_train_fraction: 0.0,
    }
}

struct Gen {
    b: FaultTreeBuilder,
    rng: StdRng,
    counter: usize,
}

impl Gen {
    fn log_uniform(&mut self, range: (f64, f64)) -> f64 {
        let (lo, hi) = range;
        let u: f64 = self.rng.gen();
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// Draw the per-component failure data for one system; redundant
    /// trains share it (identical hardware), which gives symmetric
    /// components identical Fussell-Vesely importance - the property the
    /// SVI-B triggering chains rely on.
    fn component_data(&mut self, components: usize, prob_range: (f64, f64)) -> Vec<(f64, f64)> {
        (0..components)
            .map(|_| (self.log_uniform(prob_range), self.log_uniform(prob_range)))
            .collect()
    }

    /// A component: an OR gate over a demand failure mode and an
    /// operation failure mode (both static here; annotation converts
    /// operation modes into dynamic chains).
    fn component(&mut self, name: &str, probs: (f64, f64)) -> NodeId {
        let demand = self
            .b
            .static_event(&format!("{name}_fts"), probs.0)
            .expect("valid event");
        let run = self
            .b
            .static_event(&format!("{name}_ftr"), probs.1)
            .expect("valid event");
        self.b
            .or(&format!("{name}_fail"), [demand, run])
            .expect("valid gate")
    }

    /// A train: OR over its components plus optional support inputs.
    fn train(&mut self, name: &str, data: &[(f64, f64)], supports: &[NodeId]) -> NodeId {
        let mut inputs = Vec::with_capacity(data.len() + supports.len());
        for (c, &probs) in data.iter().enumerate() {
            inputs.push(self.component(&format!("{name}_c{c}"), probs));
        }
        inputs.extend_from_slice(supports);
        self.b.or(name, inputs).expect("valid train gate")
    }

    /// A chain of pass-through transfer gates above `node`.
    fn transfer_chain(&mut self, node: NodeId, depth: usize) -> NodeId {
        let mut current = node;
        for _ in 0..depth {
            let name = self.fresh("xfer");
            current = self.b.or(&name, [current]).expect("valid transfer gate");
        }
        current
    }
}

/// Generate an industrial-scale PSA-shaped fault tree.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero systems or sequences).
#[must_use]
pub fn generate(config: &IndustrialConfig) -> FaultTree {
    assert!(
        config.front_line_systems > 0,
        "need at least one front-line system"
    );
    assert!(config.sequences > 0, "need at least one sequence");
    let mut g = Gen {
        b: FaultTreeBuilder::new(),
        rng: StdRng::seed_from_u64(config.seed),
        counter: 0,
    };
    // Second-level supports (power buses and the like): 2 trains, no
    // further dependencies. Their components are rarer, keeping the
    // shared-support cutsets from dominating the risk.
    let deep_prob = (
        config.component_prob.0 * 0.05,
        config.component_prob.1 * 0.05,
    );
    let deep: Vec<[NodeId; 2]> = (0..config.deep_support_systems)
        .map(|i| {
            let data = g.component_data(config.support_components, deep_prob);
            [
                g.train(&format!("pwr{i}_t1"), &data, &[]),
                g.train(&format!("pwr{i}_t2"), &data, &[]),
            ]
        })
        .collect();

    // First-level supports: 2 trains, each optionally backed by a deep
    // support train (train-aligned, so subtrees stay pure-OR).
    let support_prob = (config.component_prob.0 * 0.1, config.component_prob.1 * 0.1);
    let supports: Vec<[NodeId; 2]> = (0..config.support_systems)
        .map(|i| {
            let backing = if deep.is_empty() {
                None
            } else {
                let pick = g.rng.gen_range(0..deep.len());
                Some(deep[pick])
            };
            let data = g.component_data(config.support_components, support_prob);
            let t1_sup: Vec<NodeId> = backing.map(|b| vec![b[0]]).unwrap_or_default();
            let t1 = g.train(&format!("sup{i}_t1"), &data, &t1_sup);
            let t2_sup: Vec<NodeId> = backing.map(|b| vec![b[1]]).unwrap_or_default();
            let t2 = g.train(&format!("sup{i}_t2"), &data, &t2_sup);
            [t1, t2]
        })
        .collect();

    // Front-line systems: 2 trains; system failure = AND of the trains.
    let systems: Vec<NodeId> = (0..config.front_line_systems)
        .map(|i| {
            let backing = if supports.is_empty() {
                None
            } else {
                let pick = g.rng.gen_range(0..supports.len());
                Some(supports[pick])
            };
            let data = g.component_data(config.components_per_train, config.component_prob);
            let t1_sup: Vec<NodeId> = backing.map(|b| vec![b[0]]).unwrap_or_default();
            let t1 = g.train(&format!("sys{i}_t1"), &data, &t1_sup);
            let t2_sup: Vec<NodeId> = backing.map(|b| vec![b[1]]).unwrap_or_default();
            let t2 = g.train(&format!("sys{i}_t2"), &data, &t2_sup);
            let third_train =
                config.three_train_fraction > 0.0 && g.rng.gen_bool(config.three_train_fraction);
            if third_train {
                // Third train shares the train-1 support (3x50% capacity
                // pumps on two headers is a common layout); the system
                // fails when 2 of 3 trains are lost.
                let t3_sup: Vec<NodeId> = backing.map(|b| vec![b[0]]).unwrap_or_default();
                let t3 = g.train(&format!("sys{i}_t3"), &data, &t3_sup);
                g.b.atleast(&format!("sys{i}_fail"), 2, [t1, t2, t3])
                    .expect("valid")
            } else {
                g.b.and(&format!("sys{i}_fail"), [t1, t2]).expect("valid")
            }
        })
        .collect();

    // Initiating events.
    let initiating: Vec<NodeId> = (0..config.initiating_events)
        .map(|i| {
            let p = g.log_uniform(config.initiating_prob);
            g.b.static_event(&format!("ie{i}"), p).expect("valid event")
        })
        .collect();

    // Accident sequences: IE ∧ failures of 2..=4 distinct functions,
    // each reached through a transfer chain.
    let mut sequence_gates = Vec::with_capacity(config.sequences);
    for s in 0..config.sequences {
        let ie = initiating[g.rng.gen_range(0..initiating.len())];
        let functions = if g.rng.gen_bool(config.two_function_fraction) {
            config.functions_per_sequence.0
        } else {
            g.rng
                .gen_range(config.functions_per_sequence.0..=config.functions_per_sequence.1)
        };
        let mut inputs = vec![ie];
        let mut chosen = Vec::new();
        while chosen.len() < functions.min(systems.len()) {
            let pick = g.rng.gen_range(0..systems.len());
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for pick in chosen {
            let depth = g
                .rng
                .gen_range(config.transfer_depth.0..=config.transfer_depth.1);
            let chained = g.transfer_chain(systems[pick], depth);
            inputs.push(chained);
        }
        sequence_gates.push(g.b.and(&format!("seq{s}"), inputs).expect("valid sequence"));
    }

    let top = g.b.or("core_damage", sequence_gates).expect("valid top");
    g.b.top(top);
    g.b.build().expect("generated model is a valid fault tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::EventProbabilities;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    #[test]
    fn generation_is_deterministic() {
        let cfg = model1().scaled(0.02);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_basic_events(), b.num_basic_events());
        assert_eq!(a.num_gates(), b.num_gates());
        for id in a.node_ids() {
            assert_eq!(a.name(id), b.name(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = model1().scaled(0.02);
        let a = generate(&cfg);
        cfg.seed = 999;
        let b = generate(&cfg);
        // Same shape parameters but different probabilities.
        let pa = EventProbabilities::from_static(&a).unwrap();
        let pb = EventProbabilities::from_static(&b).unwrap();
        let shared = a.num_basic_events().min(b.num_basic_events());
        let differs = (0..shared).any(|i| {
            let ia = sdft_ft::NodeId::from_index(i);
            a.is_basic(ia) && b.is_basic(ia) && (pa.get(ia) - pb.get(ia)).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn scaled_model_is_analyzable() {
        let cfg = model1().scaled(0.05);
        let t = generate(&cfg);
        assert!(t.is_static());
        assert!(
            t.num_gates() > t.num_basic_events(),
            "PSA models are gate-heavy"
        );
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::default()).unwrap();
        assert!(!mcs.is_empty());
        let rea = mcs.rare_event_approximation(|e| probs.get(e));
        assert!(rea > 0.0 && rea < 1.0);
    }

    #[test]
    fn gate_to_event_ratio_is_psa_like() {
        let cfg = model1().scaled(0.1);
        let t = generate(&cfg);
        let ratio = t.num_gates() as f64 / t.num_basic_events() as f64;
        assert!(ratio > 4.0, "ratio {ratio} too low for a PSA-shaped model");
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;
    use sdft_ft::EventProbabilities;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    /// Full-scale calibration against the paper's model table (§VI-B).
    /// Fast thanks to the MOCUS look-ahead bound (~1 s per model).
    #[test]
    fn full_scale_models_match_the_paper_bands() {
        let targets = [
            // (config, BE, gates, MCS) from the paper.
            (model1(), 2_995usize, 52_213usize, 74_130usize),
            (model2(), 2_040, 56_863, 76_921),
        ];
        for (config, be, gates, mcs_target) in targets {
            let tree = generate(&config);
            let within = |got: usize, want: usize, tol: f64| {
                (got as f64 - want as f64).abs() / want as f64 <= tol
            };
            assert!(
                within(tree.num_basic_events(), be, 0.10),
                "basic events {} vs paper {be}",
                tree.num_basic_events()
            );
            assert!(
                within(tree.num_gates(), gates, 0.15),
                "gates {} vs paper {gates}",
                tree.num_gates()
            );
            let probs = EventProbabilities::from_static(&tree).unwrap();
            let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
            assert!(
                within(mcs.len(), mcs_target, 0.10),
                "MCS {} vs paper {mcs_target}",
                mcs.len()
            );
            let rea = mcs.rare_event_approximation(|e| probs.get(e));
            assert!(
                (5e-10..=5e-9).contains(&rea),
                "static REA {rea:.3e} outside the paper's magnitude"
            );
        }
    }
}

#[cfg(test)]
mod voting_tests {
    use super::*;
    use sdft_ft::{EventProbabilities, GateKind};
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    #[test]
    fn three_train_systems_use_voting_gates_and_analyze() {
        let mut cfg = model1().scaled(0.05);
        cfg.three_train_fraction = 0.5;
        let t = generate(&cfg);
        let voting = t
            .gates()
            .filter(|&g| matches!(t.gate_kind(g), Some(GateKind::AtLeast(2))))
            .count();
        assert!(voting > 0, "expected some 2-of-3 systems");
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::default()).unwrap();
        assert!(!mcs.is_empty());
        // 2-of-3 with a shared support spawns order-2 train-pair cutsets;
        // the model still quantifies to a sane frequency.
        let rea = mcs.rare_event_approximation(|e| probs.get(e));
        assert!(rea > 0.0 && rea < 1e-3);
    }

    #[test]
    fn zero_fraction_reproduces_the_calibrated_shape() {
        let cfg = model1().scaled(0.05);
        let t = generate(&cfg);
        assert!(t
            .gates()
            .all(|g| !matches!(t.gate_kind(g), Some(GateKind::AtLeast(_)))));
    }
}
