//! The fictive boiling-water-reactor safety study of §VI-A.
//!
//! Five safety systems with two redundant pump trains each:
//!
//! * **ECC** — Emergency Core Cooling and **EFW** — Emergency Feed Water,
//!   the injection front line; both need the Component Cooling Water
//!   system,
//! * **RHR** — Residual Heat Removal; if both RHR trains fail, the
//!   operator action **FEED&BLEED** is the recovery measure,
//! * **CCW** — Component Cooling Water, which itself needs **SWS** —
//!   the Service Water System.
//!
//! Support dependencies are per train (train *i* of a front-line system
//! is served by train *i* of CCW, which is served by train *i* of SWS),
//! so the triggering gates have *static joins* (all-OR subtrees). The
//! FEED&BLEED trigger (the AND of both RHR trains) exercises the general
//! case. Core damage:
//!
//! ```text
//! core_damage = OR( AND(ECC_fail, EFW_fail), AND(RHR_fail, FB_fail) )
//! ```
//!
//! Pump/diesel failures in operation are the dynamic candidates
//! (§VI-A: Erlang-`k` chains with repairs, passive rates 100× lower, no
//! repair before triggering). [`BwrConfig`] moves the model between the
//! purely static study, repairs-only, and the fully triggered variant —
//! the rows of the §VI-A table.

use sdft_ctmc::erlang;
use sdft_ft::{FaultTree, FaultTreeBuilder, NodeId};

/// Which triggering dependencies are modeled (the cumulative rows of the
/// §VI-A table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Triggers {
    /// RHR failure triggers the FEED&BLEED action.
    pub feed_bleed: bool,
    /// RHR train 1 triggers RHR train 2.
    pub rhr: bool,
    /// EFW train 1 triggers EFW train 2.
    pub efw: bool,
    /// ECC train 1 triggers ECC train 2.
    pub ecc: bool,
    /// SWS train 1 triggers SWS train 2.
    pub sws: bool,
    /// CCW train 1 triggers CCW train 2.
    pub ccw: bool,
}

impl Triggers {
    /// No triggers (repairs only).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// All six triggers.
    #[must_use]
    pub fn all() -> Self {
        Triggers {
            feed_bleed: true,
            rhr: true,
            efw: true,
            ecc: true,
            sws: true,
            ccw: true,
        }
    }

    /// The first `n` triggers in the paper's order: FEED&BLEED, RHR, EFW,
    /// ECC, SWS, CCW.
    #[must_use]
    pub fn first(n: usize) -> Self {
        Triggers {
            feed_bleed: n >= 1,
            rhr: n >= 2,
            efw: n >= 3,
            ecc: n >= 4,
            sws: n >= 5,
            ccw: n >= 6,
        }
    }
}

/// Configuration of the BWR model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwrConfig {
    /// Mission time used to convert failure rates into static
    /// probabilities for the static variant (hours).
    pub mission_time: f64,
    /// Whether failures in operation are modeled dynamically.
    pub dynamic: bool,
    /// Repair rate `μ` for all dynamic events (0 disables repairs).
    pub repair_rate: f64,
    /// Erlang phases `k` per dynamic event.
    pub phases: usize,
    /// The triggering dependencies.
    pub triggers: Triggers,
    /// Add common-cause failure events (β-factor model: one static event
    /// per system failing both trains' pumps at once). The paper notes
    /// that CCFs "usually dominate the result" and are "less influenced
    /// by timing dependencies" — enabling this shows exactly that: the
    /// frequency jumps and the relative gain from dynamic modeling
    /// shrinks. Off by default (the paper's §VI-A analysis disregards
    /// CCFs).
    pub common_cause: bool,
}

impl BwrConfig {
    /// The purely static study ("no timing").
    #[must_use]
    pub fn static_model() -> Self {
        BwrConfig {
            mission_time: 24.0,
            dynamic: false,
            repair_rate: 0.0,
            phases: 1,
            triggers: Triggers::none(),
            common_cause: false,
        }
    }

    /// Dynamic failures with repairs but no triggers.
    #[must_use]
    pub fn repairs_only(repair_rate: f64, phases: usize) -> Self {
        BwrConfig {
            mission_time: 24.0,
            dynamic: true,
            repair_rate,
            phases,
            triggers: Triggers::none(),
            common_cause: false,
        }
    }

    /// The fully dynamic model: repairs plus all six triggers.
    #[must_use]
    pub fn fully_dynamic(repair_rate: f64, phases: usize) -> Self {
        BwrConfig {
            mission_time: 24.0,
            dynamic: true,
            repair_rate,
            phases,
            triggers: Triggers::all(),
            common_cause: false,
        }
    }
}

/// A component failure mode: either inherently static or a failure in
/// operation characterized by a rate (the dynamic candidate).
#[derive(Clone, Copy)]
enum Mode {
    Static(f64),
    Rate(f64),
}

/// Per-train component lists (name suffix, failure mode, function group).
/// Every component failure mode gets its own component-boundary gate and
/// the groups get function gates, mirroring the gate-heavy structure of
/// real PSA studies (and keeping all train subtrees pure-OR).
const FRONT_LINE: &[(&str, Mode, &str)] = &[
    ("pump_fts", Mode::Static(1.0e-3), "pumps"),
    ("pump_ftr", Mode::Rate(5.0e-5), "pumps"),
    ("dg_fts", Mode::Static(2.0e-3), "power"),
    ("dg_ftr", Mode::Rate(8.0e-5), "power"),
    ("breaker", Mode::Static(2.0e-4), "power"),
    ("battery", Mode::Static(2.0e-4), "power"),
    ("mov", Mode::Static(5.0e-4), "valves"),
    ("cv", Mode::Static(3.0e-4), "valves"),
    ("strainer", Mode::Static(1.5e-4), "misc"),
    ("room_cool", Mode::Static(2.5e-4), "misc"),
];

const RHR: &[(&str, Mode, &str)] = &[
    ("pump_fts", Mode::Static(1.0e-4), "pumps"),
    ("pump_ftr", Mode::Rate(5.0e-6), "pumps"),
    ("mov", Mode::Static(5.0e-5), "valves"),
    ("dg_ftr", Mode::Rate(4.0e-6), "power"),
];

const CCW: &[(&str, Mode, &str)] = &[
    ("pump_fts", Mode::Static(5.0e-6), "pumps"),
    ("pump_ftr", Mode::Rate(2.0e-7), "pumps"),
    ("hx", Mode::Static(3.0e-6), "cooling"),
];

const SWS: &[(&str, Mode, &str)] = &[
    ("pump_fts", Mode::Static(5.0e-6), "pumps"),
    ("pump_ftr", Mode::Rate(2.0e-7), "pumps"),
    ("strainer", Mode::Static(3.0e-6), "cooling"),
];

struct TrainParts {
    gate: NodeId,
    /// Dynamic (rate-based) events of this train, for trigger wiring.
    dynamic: Vec<NodeId>,
}

struct ModelBuilder {
    b: FaultTreeBuilder,
    config: BwrConfig,
}

impl ModelBuilder {
    fn event(&mut self, name: &str, mode: Mode, triggered: bool) -> (NodeId, bool) {
        match mode {
            Mode::Static(p) => (
                self.b.static_event(name, p).expect("valid static event"),
                false,
            ),
            Mode::Rate(lambda) => {
                if self.config.dynamic {
                    if triggered {
                        let chain =
                            erlang::triggered(self.config.phases, lambda, self.config.repair_rate)
                                .expect("valid triggered chain");
                        (self.b.triggered_event(name, chain).expect("valid"), true)
                    } else {
                        let chain =
                            erlang::repairable(self.config.phases, lambda, self.config.repair_rate)
                                .expect("valid chain");
                        (self.b.dynamic_event(name, chain).expect("valid"), true)
                    }
                } else {
                    let p = 1.0 - (-lambda * self.config.mission_time).exp();
                    (
                        self.b.static_event(name, p).expect("valid static event"),
                        false,
                    )
                }
            }
        }
    }

    /// Build one train: component-boundary gates grouped into function
    /// gates, all under the train's OR, plus an optional support-train
    /// failure input. The subtree is pure-OR by construction, which keeps
    /// the triggering gates in the *static joins* class (§V-A).
    fn train(
        &mut self,
        system: &str,
        train_no: usize,
        components: &[(&str, Mode, &str)],
        support: Option<NodeId>,
        common_cause: Option<NodeId>,
        triggered: bool,
    ) -> TrainParts {
        let mut dynamic = Vec::new();
        let mut groups: Vec<(&str, Vec<NodeId>)> = Vec::new();
        for &(comp, mode, group) in components {
            let name = format!("{system}{train_no}_{comp}");
            let (id, is_dynamic) = self.event(&name, mode, triggered);
            if is_dynamic {
                dynamic.push(id);
            }
            let boundary = self
                .b
                .or(&format!("{name}_fail"), [id])
                .expect("valid component gate");
            match groups.iter_mut().find(|(g, _)| *g == group) {
                Some((_, members)) => members.push(boundary),
                None => groups.push((group, vec![boundary])),
            }
        }
        let mut inputs: Vec<NodeId> = groups
            .into_iter()
            .map(|(group, members)| {
                self.b
                    .or(&format!("{system}{train_no}_{group}"), members)
                    .expect("valid group gate")
            })
            .collect();
        if let Some(s) = support {
            inputs.push(s);
        }
        if let Some(ccf) = common_cause {
            inputs.push(ccf);
        }
        let gate = self
            .b
            .or(&format!("{system}_train{train_no}"), inputs)
            .expect("valid train gate");
        TrainParts { gate, dynamic }
    }
}

/// Build the BWR model under the given configuration.
///
/// The static variant has ~65 basic events, ~30 gates, and a core damage
/// frequency (rare-event approximation at the 10⁻¹⁵ cutoff) of a few
/// 10⁻⁹ — the magnitude of the paper's 4.09·10⁻⁹.
#[must_use]
pub fn build(config: &BwrConfig) -> FaultTree {
    let trig = if config.dynamic {
        config.triggers
    } else {
        Triggers::none()
    };
    let mut m = ModelBuilder {
        b: FaultTreeBuilder::new(),
        config: *config,
    };

    // β-factor common-cause events: one per system, failing both trains'
    // pumps at once (β ≈ 5% of the pump failure-to-start probability).
    let ccf = |m: &mut ModelBuilder, system: &str, p: f64| -> Option<NodeId> {
        if config.common_cause {
            Some(
                m.b.static_event(&format!("{system}_ccf_pumps"), p)
                    .expect("valid"),
            )
        } else {
            None
        }
    };
    let ccf_sws = ccf(&mut m, "sws", 2.5e-7);
    let ccf_ccw = ccf(&mut m, "ccw", 2.5e-7);
    let ccf_ecc = ccf(&mut m, "ecc", 5.0e-5);
    let ccf_efw = ccf(&mut m, "efw", 5.0e-5);
    let ccf_rhr = ccf(&mut m, "rhr", 5.0e-6);

    // Support systems, bottom-up: SWS then CCW (per-train chains).
    let sws1 = m.train("sws", 1, SWS, None, ccf_sws, false);
    let sws2 = m.train("sws", 2, SWS, None, ccf_sws, trig.sws);
    let ccw1 = m.train("ccw", 1, CCW, Some(sws1.gate), ccf_ccw, false);
    let ccw2 = m.train("ccw", 2, CCW, Some(sws2.gate), ccf_ccw, trig.ccw);

    // Front-line systems.
    let ecc1 = m.train("ecc", 1, FRONT_LINE, Some(ccw1.gate), ccf_ecc, false);
    let ecc2 = m.train("ecc", 2, FRONT_LINE, Some(ccw2.gate), ccf_ecc, trig.ecc);
    let efw1 = m.train("efw", 1, FRONT_LINE, Some(ccw1.gate), ccf_efw, false);
    let efw2 = m.train("efw", 2, FRONT_LINE, Some(ccw2.gate), ccf_efw, trig.efw);
    let rhr1 = m.train("rhr", 1, RHR, None, ccf_rhr, false);
    let rhr2 = m.train("rhr", 2, RHR, None, ccf_rhr, trig.rhr);

    let ecc_fail = m.b.and("ecc_fail", [ecc1.gate, ecc2.gate]).expect("valid");
    let efw_fail = m.b.and("efw_fail", [efw1.gate, efw2.gate]).expect("valid");
    let rhr_fail = m.b.and("rhr_fail", [rhr1.gate, rhr2.gate]).expect("valid");

    // FEED&BLEED recovery.
    let fb_op = m.b.static_event("fb_operator", 1.0e-2).expect("valid");
    let (fb_dyn, _) = m.event("fb_injection_ftr", Mode::Rate(2.0e-5), trig.feed_bleed);
    let fb_valve = m.b.static_event("fb_valve", 5.0e-4).expect("valid");
    let fb_fail = m.b.or("fb_fail", [fb_op, fb_dyn, fb_valve]).expect("valid");

    let injection =
        m.b.and("injection_fail", [ecc_fail, efw_fail])
            .expect("valid");
    let heat_removal =
        m.b.and("heat_removal_fail", [rhr_fail, fb_fail])
            .expect("valid");
    let top =
        m.b.or("core_damage", [injection, heat_removal])
            .expect("valid");
    m.b.top(top);

    // Trigger wiring: train 1 gates trigger the dynamic events of train 2.
    let wire = |b: &mut FaultTreeBuilder, on: bool, gate: NodeId, events: &[NodeId]| {
        if on {
            for &e in events {
                b.trigger(gate, e).expect("valid trigger");
            }
        }
    };
    wire(&mut m.b, trig.ecc, ecc1.gate, &ecc2.dynamic);
    wire(&mut m.b, trig.efw, efw1.gate, &efw2.dynamic);
    wire(&mut m.b, trig.rhr, rhr1.gate, &rhr2.dynamic);
    wire(&mut m.b, trig.ccw, ccw1.gate, &ccw2.dynamic);
    wire(&mut m.b, trig.sws, sws1.gate, &sws2.dynamic);
    wire(&mut m.b, trig.feed_bleed, rhr_fail, &[fb_dyn]);

    m.b.build().expect("the BWR model is a valid SD fault tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::EventProbabilities;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    #[test]
    fn static_model_size_and_frequency_match_the_paper_band() {
        let t = build(&BwrConfig::static_model());
        assert!(t.is_static());
        assert!(
            (55..=80).contains(&t.num_basic_events()),
            "basic events: {}",
            t.num_basic_events()
        );
        assert!(
            (15..=150).contains(&t.num_gates()),
            "gates: {}",
            t.num_gates()
        );
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::default()).unwrap();
        assert!(
            (4_000..=20_000).contains(&mcs.len()),
            "MCS above 1e-15: {}",
            mcs.len()
        );
        let rea = mcs.rare_event_approximation(|e| probs.get(e));
        assert!(
            (1e-9..=3e-8).contains(&rea),
            "core damage frequency {rea:.3e} outside the paper's magnitude"
        );
    }

    #[test]
    fn dynamic_variants_build_and_count_events() {
        let t = build(&BwrConfig::repairs_only(0.01, 1));
        assert!(!t.is_static());
        // 10 pump FTRs + 6 dg FTRs (4 front + 2 RHR) + FB injection.
        assert_eq!(t.dynamic_basic_events().count(), 17);
        // No triggers yet.
        assert!(t.gates().all(|g| t.triggers_of(g).is_empty()));

        let t = build(&BwrConfig::fully_dynamic(0.01, 1));
        let triggered: usize = t.gates().map(|g| t.triggers_of(g).len()).sum();
        // Train 2 of each system: ECC/EFW 2 each, RHR 2, CCW/SWS 1 each,
        // plus FEED&BLEED.
        assert_eq!(triggered, 9);
    }

    #[test]
    fn trigger_gates_have_the_documented_classes() {
        // Verified via sdft-core in the integration tests; here check the
        // structural precondition: train subtrees contain no AND gates.
        let t = build(&BwrConfig::fully_dynamic(0.01, 1));
        for name in [
            "ecc_train1",
            "efw_train1",
            "rhr_train1",
            "ccw_train1",
            "sws_train1",
        ] {
            let gate = t.node_by_name(name).unwrap();
            for g in t.subtree_gates(gate) {
                assert_eq!(
                    t.gate_kind(g),
                    Some(sdft_ft::GateKind::Or),
                    "{name} subtree must be all-OR for static joins"
                );
            }
        }
    }

    #[test]
    fn phases_scale_the_chains() {
        let t = build(&BwrConfig::repairs_only(0.01, 3));
        let ftr = t.node_by_name("ecc1_pump_ftr").unwrap();
        assert_eq!(t.plain_chain(ftr).unwrap().len(), 4); // k + 1 states
    }

    #[test]
    fn static_and_dynamic_variants_have_identical_structure() {
        let s = build(&BwrConfig::static_model());
        let d = build(&BwrConfig::fully_dynamic(0.01, 1));
        assert_eq!(s.num_basic_events(), d.num_basic_events());
        assert_eq!(s.num_gates(), d.num_gates());
        for id in s.node_ids() {
            assert_eq!(s.name(id), d.name(id));
        }
    }
}

#[cfg(test)]
mod ccf_tests {
    use super::*;
    use sdft_ft::EventProbabilities;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    #[test]
    fn common_cause_failures_dominate_the_frequency() {
        // The paper: "Common cause failures are less influenced by timing
        // dependencies and usually dominate the result."
        let base = build(&BwrConfig::static_model());
        let with_ccf = build(&BwrConfig {
            common_cause: true,
            ..BwrConfig::static_model()
        });
        assert_eq!(with_ccf.num_basic_events(), base.num_basic_events() + 5);

        let rea = |t: &sdft_ft::FaultTree| {
            let probs = EventProbabilities::from_static(t).unwrap();
            let mcs = minimal_cutsets(t, &probs, &MocusOptions::default()).unwrap();
            mcs.rare_event_approximation(|e| probs.get(e))
        };
        let base_rea = rea(&base);
        let ccf_rea = rea(&with_ccf);
        assert!(
            ccf_rea > base_rea * 2.0,
            "CCFs should dominate: {ccf_rea:.3e} vs {base_rea:.3e}"
        );
    }

    #[test]
    fn ccf_shrinks_the_relative_gain_of_dynamic_modeling() {
        // Without core here, compare statically: the CCF cutsets are
        // static, so they cap how much of the risk dynamic modeling can
        // touch. Verified end-to-end in the workspace tests; here check
        // that the CCF events are shared by both trains (order-1 system
        // failures).
        let t = build(&BwrConfig {
            common_cause: true,
            ..BwrConfig::static_model()
        });
        let ccf = t.node_by_name("ecc_ccf_pumps").unwrap();
        let t1 = t.node_by_name("ecc_train1").unwrap();
        let t2 = t.node_by_name("ecc_train2").unwrap();
        assert!(t.gate_inputs(t1).contains(&ccf));
        assert!(t.gate_inputs(t2).contains(&ccf));
    }
}
