#![warn(missing_docs)]

//! Example fault tree models: the paper's running example, the fictive
//! BWR safety study of §VI-A, and a parametric industrial-scale PSA
//! generator standing in for the proprietary nuclear models of §VI-B.
//!
//! # Substitution note
//!
//! The paper evaluates on two real nuclear probabilistic safety studies
//! (2,995 / 2,040 basic events, ~52k / ~57k gates, ~75k minimal cutsets
//! above the 10⁻¹⁵ cutoff). Those models are proprietary;
//! [`industrial::generate`] produces fault trees with the same *shape*:
//! an event-tree style top OR over accident sequences, safety systems
//! with redundant trains shared across sequences, per-train support
//! systems, component-level failure modes, and the deep pass-through gate
//! chains that make real PSA models gate-heavy. The default
//! [`industrial::model1`]/[`industrial::model2`] configurations are
//! calibrated to land near the paper's basic event, gate, and cutset
//! counts.
//!
//! # Example
//!
//! ```
//! use sdft_models::{bwr, toy};
//!
//! let cooling = toy::example3();
//! assert_eq!(cooling.num_basic_events(), 5);
//!
//! let plant = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
//! assert!(plant.num_basic_events() > 50);
//! ```

pub mod annotate;
pub mod bwr;
pub mod event_tree;
pub mod industrial;
pub mod toy;
