//! A linear event-tree front end for building SD fault trees with
//! demand-ordered triggering.
//!
//! §V-A of the paper closes with the observation that *event trees* — the
//! standard higher-level PSA formalism — already record the order in
//! which safety functions are demanded, "offering a possibility for long
//! triggering chains" that static analysis cannot use. This module makes
//! that concrete: describe an initiating event and an ordered list of
//! safety functions (each an existing gate of a fault tree under
//! construction), say which failure combinations constitute damage, and
//! [`EventTree::build`] emits
//!
//! * one sequence gate per damage combination (`IE ∧ failures`),
//! * a top OR over the sequences, and
//! * trigger edges that switch each function's *triggered* dynamic events
//!   on when the previous function in the demand order has failed —
//!   §VI-A's manual annotation, automated.
//!
//! The first function's triggered events are wired to the initiating
//! event (they start when the accident starts).

use sdft_ft::{Behavior, FaultTreeBuilder, FtError, NodeId};

/// One safety function of the event tree: a name and the gate modelling
/// its failure.
#[derive(Debug, Clone)]
struct Function {
    name: String,
    gate: NodeId,
}

/// A linear event tree over safety functions, compiled onto a
/// [`FaultTreeBuilder`].
///
/// # Example
///
/// ```
/// use sdft_ctmc::erlang;
/// use sdft_ft::FaultTreeBuilder;
/// use sdft_models::event_tree::EventTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FaultTreeBuilder::new();
/// // Two cooling functions; the second one's pump is a triggered spare.
/// let p1 = b.dynamic_event("p1", erlang::repairable(1, 1e-3, 0.05)?)?;
/// let f1 = b.or("f1_fail", [p1])?;
/// let p2 = b.triggered_event("p2", erlang::spare(1e-3, 0.05)?)?;
/// let f2 = b.or("f2_fail", [p2])?;
///
/// let mut et = EventTree::new("loss_of_feedwater", 1e-3);
/// et.function("f1", f1)?;
/// et.function("f2", f2)?;
/// et.damage_if(&["f1", "f2"])?; // core damage when both fail
/// let top = et.build(&mut b)?;
/// b.top(top);
/// let tree = b.build()?;
/// // p2 is now triggered by f1's failure (the demand order).
/// let p2 = tree.node_by_name("p2").unwrap();
/// assert_eq!(tree.trigger_source(p2), tree.node_by_name("f1_fail"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventTree {
    initiator_name: String,
    initiator_probability: f64,
    functions: Vec<Function>,
    damage: Vec<Vec<String>>,
}

impl EventTree {
    /// Start an event tree for the given initiating event (created as a
    /// static basic event at build time).
    #[must_use]
    pub fn new(initiator: &str, probability: f64) -> Self {
        EventTree {
            initiator_name: initiator.to_owned(),
            initiator_probability: probability,
            functions: Vec::new(),
            damage: Vec::new(),
        }
    }

    /// Append a safety function (demanded after all previously added
    /// ones), modeled by the failure gate `gate`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already used by another function.
    pub fn function(&mut self, name: &str, gate: NodeId) -> Result<&mut Self, FtError> {
        if self.functions.iter().any(|f| f.name == name) {
            return Err(FtError::DuplicateName {
                name: name.to_owned(),
            });
        }
        self.functions.push(Function {
            name: name.to_owned(),
            gate,
        });
        Ok(self)
    }

    /// Declare that the joint failure of `functions` (by name) is a
    /// damage state.
    ///
    /// # Errors
    ///
    /// Returns an error if a name is unknown or the combination is empty.
    pub fn damage_if(&mut self, functions: &[&str]) -> Result<&mut Self, FtError> {
        if functions.is_empty() {
            return Err(FtError::EmptyGate {
                name: "damage combination".to_owned(),
            });
        }
        for name in functions {
            if !self.functions.iter().any(|f| f.name == *name) {
                return Err(FtError::UnknownName {
                    name: (*name).to_owned(),
                });
            }
        }
        self.damage
            .push(functions.iter().map(|s| (*s).to_owned()).collect());
        Ok(self)
    }

    /// Convenience: damage when *all* functions fail (the single-sequence
    /// event tree).
    ///
    /// # Errors
    ///
    /// Returns an error if no functions were added.
    pub fn damage_if_all_fail(&mut self) -> Result<&mut Self, FtError> {
        let names: Vec<String> = self.functions.iter().map(|f| f.name.clone()).collect();
        if names.is_empty() {
            return Err(FtError::EmptyGate {
                name: "event tree".to_owned(),
            });
        }
        self.damage.push(names);
        Ok(self)
    }

    /// Compile the event tree onto `builder`: create the initiating
    /// event, one AND gate per damage combination, the top OR, and the
    /// demand-order trigger edges. Returns the top gate (not yet marked
    /// as the tree's top — callers may combine several event trees).
    ///
    /// Triggering: for every function after the first, each *triggered*
    /// dynamic event in its failure gate's subtree that has no triggering
    /// gate yet is wired to the previous function's gate; the first
    /// function's pending triggered events are wired to a gate over the
    /// initiating event.
    ///
    /// # Errors
    ///
    /// Returns an error if no damage combination was declared or the
    /// builder rejects a node (duplicate names and the like).
    pub fn build(&self, builder: &mut FaultTreeBuilder) -> Result<NodeId, FtError> {
        if self.damage.is_empty() {
            return Err(FtError::EmptyGate {
                name: format!("{}_sequences", self.initiator_name),
            });
        }
        let initiator = builder.static_event(&self.initiator_name, self.initiator_probability)?;

        // Demand-order triggering. The builder cannot tell us which
        // events already have triggers, so collect trigger targets first
        // and let `trigger` errors surface modeling conflicts.
        let mut previous: Option<NodeId> = None;
        let mut ie_gate: Option<NodeId> = None;
        for function in &self.functions {
            let pending = builder.pending_triggered_events_under(function.gate);
            if !pending.is_empty() {
                // The demand gate over the initiator is created lazily,
                // only when the first function actually has triggered
                // events — otherwise it would dangle in the built tree.
                let source = match previous {
                    Some(gate) => gate,
                    None => *ie_gate.get_or_insert(builder.gate(
                        &format!("{}_demand", self.initiator_name),
                        sdft_ft::GateKind::Or,
                        [initiator],
                    )?),
                };
                for event in pending {
                    builder.trigger(source, event)?;
                }
            }
            previous = Some(function.gate);
        }

        // Sequences and the top OR.
        let mut sequences = Vec::with_capacity(self.damage.len());
        for (i, combination) in self.damage.iter().enumerate() {
            let mut inputs = vec![initiator];
            for name in combination {
                let f = self
                    .functions
                    .iter()
                    .find(|f| &f.name == name)
                    .expect("validated in damage_if");
                inputs.push(f.gate);
            }
            sequences.push(builder.and(&format!("{}_seq{}", self.initiator_name, i + 1), inputs)?);
        }
        builder.gate(
            &format!("{}_damage", self.initiator_name),
            sdft_ft::GateKind::Or,
            sequences,
        )
    }
}

/// Builder support used by [`EventTree::build`]: the triggered dynamic
/// events under a node that do not have a triggering gate yet.
trait PendingTriggers {
    fn pending_triggered_events_under(&self, node: NodeId) -> Vec<NodeId>;
}

impl PendingTriggers for FaultTreeBuilder {
    fn pending_triggered_events_under(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(Behavior::Triggered(_)) = self.behavior(n) {
                if self.trigger_source(n).is_none() {
                    out.push(n);
                }
            }
            stack.extend_from_slice(self.gate_inputs(n));
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn two_function_setup() -> (FaultTreeBuilder, NodeId, NodeId) {
        let mut b = FaultTreeBuilder::new();
        let s1 = b.static_event("v1", 1e-3).unwrap();
        let p1 = b
            .dynamic_event("p1", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let f1 = b.or("f1_fail", [s1, p1]).unwrap();
        let s2 = b.static_event("v2", 1e-3).unwrap();
        let p2 = b
            .triggered_event("p2", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let f2 = b.or("f2_fail", [s2, p2]).unwrap();
        (b, f1, f2)
    }

    #[test]
    fn compiles_sequences_and_demand_triggers() {
        let (mut b, f1, f2) = two_function_setup();
        let mut et = EventTree::new("ie", 2e-3);
        et.function("f1", f1).unwrap();
        et.function("f2", f2).unwrap();
        et.damage_if(&["f1", "f2"]).unwrap();
        let top = et.build(&mut b).unwrap();
        b.top(top);
        let t = b.build().unwrap();

        // p2 triggered by f1 (the previous function in demand order).
        let p2 = t.node_by_name("p2").unwrap();
        assert_eq!(t.trigger_source(p2), t.node_by_name("f1_fail"));
        // The damage sequence is IE ∧ f1 ∧ f2.
        let seq = t.node_by_name("ie_seq1").unwrap();
        assert_eq!(t.gate_inputs(seq).len(), 3);
        assert_eq!(t.name(t.top()), "ie_damage");
    }

    #[test]
    fn first_function_triggers_from_the_initiator() {
        let mut b = FaultTreeBuilder::new();
        let p1 = b
            .triggered_event("p1", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let f1 = b.or("f1_fail", [p1]).unwrap();
        let mut et = EventTree::new("ie", 1e-2);
        et.function("f1", f1).unwrap();
        et.damage_if_all_fail().unwrap();
        let top = et.build(&mut b).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let p1 = t.node_by_name("p1").unwrap();
        let demand = t.node_by_name("ie_demand").unwrap();
        assert_eq!(t.trigger_source(p1), Some(demand));
        // The demand gate fires iff the initiator fails.
        assert_eq!(t.gate_inputs(demand), &[t.node_by_name("ie").unwrap()]);
    }

    #[test]
    fn multiple_damage_combinations_or_together() {
        let (mut b, f1, f2) = two_function_setup();
        let mut et = EventTree::new("ie", 2e-3);
        et.function("f1", f1).unwrap();
        et.function("f2", f2).unwrap();
        et.damage_if(&["f1", "f2"]).unwrap();
        et.damage_if(&["f2"]).unwrap(); // f2 alone is already damage
        let top = et.build(&mut b).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(t.gate_inputs(t.top()).len(), 2);
    }

    #[test]
    fn analysis_of_a_compiled_event_tree_is_time_aware() {
        let (mut b, f1, f2) = two_function_setup();
        let mut et = EventTree::new("ie", 2e-3);
        et.function("f1", f1).unwrap();
        et.function("f2", f2).unwrap();
        et.damage_if(&["f1", "f2"]).unwrap();
        let top = et.build(&mut b).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        // The classification of f1 (the trigger of p2) must be efficient.
        // f1 = OR(v1, p1): one dynamic child => static branching.
        let f1 = t.node_by_name("f1_fail").unwrap();
        assert!(!t.triggers_of(f1).is_empty());
    }

    #[test]
    fn rejects_unknown_functions_and_empty_trees() {
        let (_, f1, _) = two_function_setup();
        let mut et = EventTree::new("ie", 1e-3);
        et.function("f1", f1).unwrap();
        assert!(matches!(
            et.damage_if(&["nope"]),
            Err(FtError::UnknownName { .. })
        ));
        assert!(matches!(et.damage_if(&[]), Err(FtError::EmptyGate { .. })));
        let mut b = FaultTreeBuilder::new();
        let empty = EventTree::new("ie", 1e-3);
        assert!(matches!(
            empty.build(&mut b),
            Err(FtError::EmptyGate { .. })
        ));
    }
}

#[cfg(test)]
mod review_regression_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    /// Found in review: when no function has pending triggered events,
    /// no demand gate may dangle in the built tree.
    #[test]
    fn no_dangling_demand_gate_without_triggered_events() {
        let mut b = FaultTreeBuilder::new();
        let p1 = b
            .dynamic_event("p1", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let f1 = b.or("f1_fail", [p1]).unwrap();
        let mut et = EventTree::new("ie", 1e-3);
        et.function("f1", f1).unwrap();
        et.damage_if_all_fail().unwrap();
        let top = et.build(&mut b).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert!(
            t.node_by_name("ie_demand").is_none(),
            "demand gate must be lazy"
        );
        // Every gate is reachable from the top.
        let reachable = t.subtree_gates(t.top()).len();
        assert_eq!(reachable, t.num_gates());
    }

    /// Duplicate function names are rejected instead of silently
    /// resolving to the first entry.
    #[test]
    fn duplicate_function_names_are_rejected() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let f1 = b.or("f1_fail", [x]).unwrap();
        let mut et = EventTree::new("ie", 1e-3);
        et.function("f1", f1).unwrap();
        assert!(matches!(
            et.function("f1", f1),
            Err(FtError::DuplicateName { .. })
        ));
    }
}
