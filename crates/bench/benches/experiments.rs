//! Criterion benchmarks, one group per table/figure of the paper's
//! evaluation (§VI) plus a substrate group for the underlying engines.
//!
//! The experiment benches run reduced workloads (the `repro` binary runs
//! the full tables); these benches exist to track the performance of the
//! operations each experiment exercises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdft_bdd::Bdd;
use sdft_core::{quantify_cutset, FtcContext, QuantifyOptions};
use sdft_ctmc::{erlang, PoissonWeights};
use sdft_ft::{Cutset, EventProbabilities, FaultTree, FaultTreeBuilder};
use sdft_importance::fussell_vesely_ranking;
use sdft_mocus::{minimal_cutsets, MocusOptions};
use sdft_models::annotate::{annotate, AnnotationConfig};
use sdft_models::{bwr, industrial, toy};
use sdft_product::{ProductChain, ProductOptions};
use std::hint::black_box;

/// Substrate engines: transient analysis, Poisson weights, BDD, MOCUS,
/// product chain construction.
fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");

    let chain = erlang::repairable(3, 1e-3, 0.05).unwrap();
    group.bench_function("ctmc_transient_erlang3_24h", |b| {
        b.iter(|| {
            chain
                .reach_failed_probability(black_box(24.0), 1e-12)
                .unwrap()
        });
    });

    group.bench_function("poisson_weights_1000", |b| {
        b.iter(|| PoissonWeights::new(black_box(1000.0), 1e-12).unwrap());
    });

    let bwr_static = bwr::build(&bwr::BwrConfig::static_model());
    group.bench_function("bdd_build_bwr", |b| {
        b.iter(|| Bdd::new(black_box(&bwr_static)).unwrap().node_count());
    });

    let probs = EventProbabilities::from_static(&bwr_static).unwrap();
    group.bench_function("mocus_bwr", |b| {
        b.iter(|| {
            minimal_cutsets(black_box(&bwr_static), &probs, &MocusOptions::default())
                .unwrap()
                .len()
        });
    });

    let example3 = toy::example3();
    group.bench_function("product_chain_example3", |b| {
        b.iter(|| {
            ProductChain::build(black_box(&example3), &ProductOptions::default())
                .unwrap()
                .num_states()
        });
    });

    group.finish();
}

/// T1: the full pipeline on the BWR study (fully dynamic).
fn t1_bwr_pipeline(c: &mut Criterion) {
    let tree = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
    let mut group = c.benchmark_group("t1_bwr_pipeline");
    group.sample_size(10);
    group.bench_function("analyze_24h", |b| {
        b.iter(|| sdft_bench::analyze_tree(black_box(&tree), 24.0).frequency);
    });
    group.finish();
}

/// T2: MCS generation on a scaled industrial model.
fn t2_industrial_mcs(c: &mut Criterion) {
    let tree = industrial::generate(&industrial::model1().scaled(0.05));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mut group = c.benchmark_group("t2_industrial_mcs");
    group.sample_size(10);
    group.bench_function("model1_scaled_0.05", |b| {
        b.iter(|| {
            minimal_cutsets(black_box(&tree), &probs, &MocusOptions::default())
                .unwrap()
                .len()
        });
    });
    group.finish();
}

fn annotated_model(scale: f64, percent: f64) -> FaultTree {
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(percent))
        .unwrap()
        .tree
}

/// T3 / F2: the full pipeline over growing dynamic fractions.
fn t3_dyn_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_dyn_fraction");
    group.sample_size(10);
    for percent in [10.0, 50.0] {
        let tree = annotated_model(0.05, percent);
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("{percent}pct")),
            &tree,
            |b, tree| {
                b.iter(|| sdft_bench::analyze_tree(black_box(tree), 24.0).frequency);
            },
        );
    }
    group.finish();
}

/// F3: per-cutset quantification cost in the number of dynamic events
/// and phases.
fn f3_mcs_quantify(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_mcs_quantify");
    for (d, k) in [(2usize, 1usize), (4, 1), (4, 3), (6, 3)] {
        let mut b = FaultTreeBuilder::new();
        let events: Vec<_> = (0..d)
            .map(|i| {
                let chain = erlang::repairable(k, 1e-3, 0.01).unwrap();
                b.dynamic_event(&format!("d{i}"), chain).unwrap()
            })
            .collect();
        let top = b.and("top", events.clone()).unwrap();
        b.top(top);
        let tree = b.build().unwrap();
        let ctx = FtcContext::new(&tree).unwrap();
        let cutset = Cutset::new(events);
        let opts = QuantifyOptions::new(24.0);
        group.bench_function(BenchmarkId::new("quantify", format!("d{d}_k{k}")), |bch| {
            bch.iter(|| {
                quantify_cutset(black_box(&tree), &ctx, &cutset, &opts)
                    .unwrap()
                    .probability
            });
        });
    }
    group.finish();
}

/// T4: phase sweep on a scaled annotated model.
fn t4_phases_sweep(c: &mut Criterion) {
    let tree = industrial::generate(&industrial::model1().scaled(0.05));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).unwrap();
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let mut group = c.benchmark_group("t4_phases_sweep");
    group.sample_size(10);
    for k in [1usize, 3] {
        let mut cfg = AnnotationConfig::percent_dynamic(100.0);
        cfg.phases = k;
        let annotated = annotate(&tree, &ranking, &cfg).unwrap().tree;
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("k{k}")),
            &annotated,
            |b, tree| {
                b.iter(|| sdft_bench::analyze_tree(black_box(tree), 24.0).frequency);
            },
        );
    }
    group.finish();
}

/// T5: horizon sweep on the BWR model (small, so the bench stays fast).
fn t5_horizon_sweep(c: &mut Criterion) {
    let tree = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
    let mut group = c.benchmark_group("t5_horizon_sweep");
    group.sample_size(10);
    for horizon in [24.0, 96.0] {
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("{horizon}h")),
            &horizon,
            |b, &h| {
                b.iter(|| sdft_bench::analyze_tree(black_box(&tree), h).frequency);
            },
        );
    }
    group.finish();
}

/// Ablations of the design choices DESIGN.md calls out: the MOCUS
/// look-ahead bound and the per-cutset triggering treatment.
fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    let tree = industrial::generate(&industrial::model1().scaled(0.02));
    let probs = EventProbabilities::from_static(&tree).unwrap();
    group.bench_function("mocus_lookahead_on", |b| {
        b.iter(|| {
            minimal_cutsets(black_box(&tree), &probs, &MocusOptions::default())
                .unwrap()
                .len()
        });
    });
    let blind = MocusOptions {
        lookahead: false,
        ..MocusOptions::default()
    };
    group.bench_function("mocus_lookahead_off", |b| {
        b.iter(|| {
            minimal_cutsets(black_box(&tree), &probs, &blind)
                .unwrap()
                .len()
        });
    });

    let bwr = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
    group.bench_function("treatment_classified", |b| {
        b.iter(|| {
            let opts = sdft_core::AnalysisOptions::new(24.0);
            sdft_core::analyze(black_box(&bwr), &opts)
                .unwrap()
                .frequency
        });
    });
    group.bench_function("treatment_cutset_only", |b| {
        b.iter(|| {
            let mut opts = sdft_core::AnalysisOptions::new(24.0);
            opts.treatment = sdft_core::TriggerTreatment::CutsetOnly;
            sdft_core::analyze(black_box(&bwr), &opts)
                .unwrap()
                .frequency
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    substrates,
    t1_bwr_pipeline,
    t2_industrial_mcs,
    t3_dyn_fraction,
    f3_mcs_quantify,
    t4_phases_sweep,
    t5_horizon_sweep,
    ablations
);
criterion_main!(benches);
