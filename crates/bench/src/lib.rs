#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of §VI of
//! Krčál & Krčál (DSN 2015).
//!
//! Each experiment has a runner returning structured rows; the `repro`
//! binary prints them as tables, and the Criterion benches time the
//! underlying operations. Experiments on the industrial models accept a
//! scale factor (1.0 = the paper's model sizes; smaller scales shrink the
//! generated models proportionally for quick runs).

use sdft_core::{analyze, AnalysisOptions, AnalysisResult, Backend, FtcContext, QuantifyOptions};
use sdft_ft::{Cutset, EventProbabilities, FaultTree, FaultTreeBuilder};
use sdft_importance::fussell_vesely_ranking;
use sdft_mocus::{minimal_cutsets, minimal_cutsets_with_stats, MocusOptions};
use sdft_models::annotate::{annotate, AnnotationConfig};
use sdft_models::{bwr, industrial};
use std::time::{Duration, Instant};

/// One row of the §VI-A table (T1): a model setting with its failure
/// frequency and analysis time.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Human-readable setting ("no timing", "repair rate 1/100h", ...).
    pub setting: String,
    /// Core damage frequency (rare-event approximation).
    pub frequency: f64,
    /// Analysis wall-clock time (`None` for the static row).
    pub time: Option<Duration>,
    /// Cutsets above the cutoff.
    pub cutsets: usize,
    /// Cutsets needing dynamic analysis.
    pub dynamic_cutsets: usize,
    /// Average dynamic events per dynamic cutset's Markov model.
    pub avg_model_dynamic: f64,
    /// Distinct cutset-model equivalence classes (uniformization passes).
    pub distinct_model_classes: usize,
    /// Fraction of cutset quantifications answered by the model cache.
    pub cache_hit_rate: f64,
    /// DTMC steps the uniformization kernel took.
    pub kernel_steps: u64,
    /// DTMC steps saved by the kernel's steady-state detection.
    pub kernel_steps_saved: u64,
}

/// T1 (§VI-A): the BWR study. The static baseline, repairs at increasing
/// rates, then the six triggers added cumulatively (paper order:
/// FEED&BLEED, RHR, EFW, ECC, SWS, CCW).
///
/// # Panics
///
/// Panics if the model fails to analyze (a bug, not an input condition).
#[must_use]
pub fn t1(horizon: f64) -> Vec<T1Row> {
    let mut rows = Vec::new();

    // Static baseline.
    let tree = bwr::build(&bwr::BwrConfig::static_model());
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    rows.push(T1Row {
        setting: "no timing".to_owned(),
        frequency: mcs.rare_event_approximation(|e| probs.get(e)),
        time: None,
        cutsets: mcs.len(),
        dynamic_cutsets: 0,
        avg_model_dynamic: 0.0,
        distinct_model_classes: 0,
        cache_hit_rate: 0.0,
        kernel_steps: 0,
        kernel_steps_saved: 0,
    });

    let mut run = |setting: &str, config: &bwr::BwrConfig| {
        let tree = bwr::build(config);
        let begin = Instant::now();
        let result = analyze(&tree, &AnalysisOptions::new(horizon)).expect("analysis");
        rows.push(T1Row {
            setting: setting.to_owned(),
            frequency: result.frequency,
            time: Some(begin.elapsed()),
            cutsets: result.stats.num_cutsets,
            dynamic_cutsets: result.stats.num_dynamic_cutsets,
            avg_model_dynamic: result.stats.avg_model_dynamic(),
            distinct_model_classes: result.stats.distinct_model_classes,
            cache_hit_rate: result.stats.cache_hit_rate(),
            kernel_steps: result.stats.kernel_steps,
            kernel_steps_saved: result.stats.kernel_steps_saved,
        });
    };

    run(
        "no repairs, no triggers",
        &bwr::BwrConfig::repairs_only(0.0, 1),
    );
    run(
        "repair rate 1/1000h",
        &bwr::BwrConfig::repairs_only(1e-3, 1),
    );
    run("repair rate 1/100h", &bwr::BwrConfig::repairs_only(1e-2, 1));
    run("repair rate 1/10h", &bwr::BwrConfig::repairs_only(1e-1, 1));
    let labels = [
        "+FEED&BLEED trigger",
        "+RHR trigger",
        "+EFW trigger",
        "+ECC trigger",
        "+SWS trigger",
        "+CCW trigger",
    ];
    for (i, label) in labels.iter().enumerate() {
        let config = bwr::BwrConfig {
            triggers: bwr::Triggers::first(i + 1),
            ..bwr::BwrConfig::repairs_only(1e-2, 1)
        };
        run(label, &config);
    }
    rows
}

/// One row of the §VI-B model table (T2).
#[derive(Debug, Clone)]
pub struct ModelSummary {
    /// Model name.
    pub name: String,
    /// Basic events.
    pub basic_events: usize,
    /// Gates.
    pub gates: usize,
    /// Minimal cutsets above the cutoff.
    pub cutsets: usize,
    /// MCS generation time.
    pub generation_time: Duration,
    /// Static rare-event approximation.
    pub rea: f64,
    /// Partial cutsets MOCUS processed.
    pub partials: u64,
    /// Partials processed per second of generation time.
    pub partials_per_sec: f64,
    /// Subset tests the minimization pass performed.
    pub subsumption_comparisons: u64,
}

/// T2 (§VI-B): the two industrial models' sizes and MCS generation times.
///
/// # Panics
///
/// Panics if generation or MOCUS fails.
#[must_use]
pub fn t2(scale: f64) -> Vec<ModelSummary> {
    [
        ("model 1", industrial::model1()),
        ("model 2", industrial::model2()),
    ]
    .into_iter()
    .map(|(name, config)| {
        let tree = industrial::generate(&config.scaled(scale));
        let probs = EventProbabilities::from_static(&tree).expect("static model");
        let begin = Instant::now();
        let (mcs, stats) =
            minimal_cutsets_with_stats(&tree, &probs, &MocusOptions::default()).expect("mocus");
        let generation_time = begin.elapsed();
        ModelSummary {
            name: name.to_owned(),
            basic_events: tree.num_basic_events(),
            gates: tree.num_gates(),
            cutsets: mcs.len(),
            generation_time,
            rea: mcs.rare_event_approximation(|e| probs.get(e)),
            partials: stats.partials_processed,
            partials_per_sec: stats.partials_processed as f64
                / generation_time.as_secs_f64().max(f64::MIN_POSITIVE),
            subsumption_comparisons: stats.subsumption_comparisons,
        }
    })
    .collect()
}

/// One row of the §VI-B dynamic-fraction table (T3), also carrying the
/// histogram behind Figure 2.
#[derive(Debug, Clone)]
pub struct T3Row {
    /// Percentage of basic events modeled dynamically.
    pub percent_dynamic: f64,
    /// Percentage of basic events in triggering chains.
    pub percent_triggered: f64,
    /// Failure frequency.
    pub frequency: f64,
    /// Analysis time (translation + MCS generation + quantification).
    pub time: Duration,
    /// Cutsets above the cutoff.
    pub cutsets: usize,
    /// Cutsets needing dynamic analysis.
    pub dynamic_cutsets: usize,
    /// Histogram: index = dynamic events per cutset model, value = count
    /// (one chart of Figure 2).
    pub histogram: Vec<usize>,
    /// Distinct cutset-model equivalence classes (uniformization passes).
    pub distinct_model_classes: usize,
    /// Fraction of cutset quantifications answered by the model cache.
    pub cache_hit_rate: f64,
}

/// T3 + F2 (§VI-B): model 1 with an increasing fraction of dynamic
/// events (chosen by Fussell–Vesely importance, triggering chains among
/// equal-importance events).
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails.
#[must_use]
pub fn t3(scale: f64, percents: &[f64], horizon: f64) -> Vec<T3Row> {
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());

    percents
        .iter()
        .map(|&pct| {
            if pct == 0.0 {
                return T3Row {
                    percent_dynamic: 0.0,
                    percent_triggered: 0.0,
                    frequency: mcs.rare_event_approximation(|e| probs.get(e)),
                    time: Duration::ZERO,
                    cutsets: mcs.len(),
                    dynamic_cutsets: 0,
                    histogram: vec![mcs.len()],
                    distinct_model_classes: 0,
                    cache_hit_rate: 0.0,
                };
            }
            let annotated = annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(pct))
                .expect("annotation");
            let begin = Instant::now();
            let result =
                analyze(&annotated.tree, &AnalysisOptions::new(horizon)).expect("analysis");
            T3Row {
                percent_dynamic: pct,
                percent_triggered: pct / 10.0,
                frequency: result.frequency,
                time: begin.elapsed(),
                cutsets: result.stats.num_cutsets,
                dynamic_cutsets: result.stats.num_dynamic_cutsets,
                histogram: result.stats.histogram_model_dynamic.clone(),
                distinct_model_classes: result.stats.distinct_model_classes,
                cache_hit_rate: result.stats.cache_hit_rate(),
            }
        })
        .collect()
}

/// One point of Figure 3: the time to analyze one cutset's Markov model
/// as a function of its dynamic event count and the phases per event.
#[derive(Debug, Clone, Copy)]
pub struct F3Point {
    /// Dynamic events in the cutset.
    pub dynamic_events: usize,
    /// Erlang phases per event.
    pub phases: usize,
    /// Product chain states.
    pub chain_states: usize,
    /// Quantification time.
    pub time: Duration,
}

/// F3: per-cutset quantification time over synthetic cutsets of `1..=d`
/// dynamic events with `k ∈ phases` Erlang phases each. The chain size is
/// exponential in the event count with base `k+1`, which is the paper's
/// headline scaling observation.
///
/// # Panics
///
/// Panics if the synthetic model fails to build or quantify.
#[must_use]
pub fn f3(max_events: usize, phases: &[usize], horizon: f64) -> Vec<F3Point> {
    let mut points = Vec::new();
    for &k in phases {
        for d in 1..=max_events {
            let mut b = FaultTreeBuilder::new();
            let events: Vec<_> = (0..d)
                .map(|i| {
                    let chain = sdft_ctmc::erlang::repairable(k, 1e-3 + i as f64 * 1e-4, 0.01)
                        .expect("chain");
                    b.dynamic_event(&format!("d{i}"), chain).expect("event")
                })
                .collect();
            let top = b.and("top", events.clone()).expect("gate");
            b.top(top);
            let tree = b.build().expect("tree");
            let ctx = FtcContext::new(&tree).expect("context");
            let cutset = Cutset::new(events);
            let opts = QuantifyOptions::new(horizon);
            // Warm up once, then measure.
            let _ = sdft_core::quantify_cutset(&tree, &ctx, &cutset, &opts).expect("quantify");
            let begin = Instant::now();
            let q = sdft_core::quantify_cutset(&tree, &ctx, &cutset, &opts).expect("quantify");
            points.push(F3Point {
                dynamic_events: d,
                phases: k,
                chain_states: q.chain_states,
                time: begin.elapsed(),
            });
        }
    }
    points
}

/// One row of the phases table (T4).
#[derive(Debug, Clone)]
pub struct T4Row {
    /// Model name.
    pub model: String,
    /// Erlang phases per dynamic event.
    pub phases: usize,
    /// Failure frequency.
    pub frequency: f64,
    /// Analysis time.
    pub time: Duration,
}

/// T4 (§VI-B): analysis time as the number of phases per dynamic basic
/// event grows, for both industrial models (fully dynamic annotation).
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails.
#[must_use]
pub fn t4(scale: f64, phases: &[usize], horizon: f64) -> Vec<T4Row> {
    let mut rows = Vec::new();
    for (name, config) in [
        ("model 1", industrial::model1()),
        ("model 2", industrial::model2()),
    ] {
        let tree = industrial::generate(&config.scaled(scale));
        let probs = EventProbabilities::from_static(&tree).expect("static model");
        let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
        let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
        for &k in phases {
            let mut cfg = AnnotationConfig::percent_dynamic(100.0);
            cfg.phases = k;
            let annotated = annotate(&tree, &ranking, &cfg).expect("annotation");
            let begin = Instant::now();
            let result =
                analyze(&annotated.tree, &AnalysisOptions::new(horizon)).expect("analysis");
            rows.push(T4Row {
                model: name.to_owned(),
                phases: k,
                frequency: result.frequency,
                time: begin.elapsed(),
            });
        }
    }
    rows
}

/// One row of the horizon table (T5).
#[derive(Debug, Clone)]
pub struct T5Row {
    /// Analysis horizon in hours.
    pub horizon: f64,
    /// Failure frequency.
    pub frequency: f64,
    /// Analysis time.
    pub time: Duration,
    /// Cutsets above the cutoff at this horizon (the list grows with the
    /// horizon because worst-case probabilities grow).
    pub cutsets: usize,
    /// DTMC steps the uniformization kernel took.
    pub kernel_steps: u64,
    /// DTMC steps saved by the kernel's steady-state detection.
    pub kernel_steps_saved: u64,
}

/// T5 (§VI-B): failure frequency and analysis time over growing horizons
/// (24/48/72/96 h) on model 2, fully dynamic.
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails.
#[must_use]
pub fn t5(scale: f64, horizons: &[f64]) -> Vec<T5Row> {
    let tree = industrial::generate(&industrial::model2().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(100.0)).expect("annotation");
    horizons
        .iter()
        .map(|&h| {
            let begin = Instant::now();
            let result = analyze(&annotated.tree, &AnalysisOptions::new(h)).expect("analysis");
            T5Row {
                horizon: h,
                frequency: result.frequency,
                time: begin.elapsed(),
                cutsets: result.stats.num_cutsets,
                kernel_steps: result.stats.kernel_steps,
                kernel_steps_saved: result.stats.kernel_steps_saved,
            }
        })
        .collect()
}

/// T5 in *re-evaluation* mode: the cutset list is generated once (at the
/// largest horizon) and re-quantified per horizon
/// ([`sdft_core::analyze_horizons`]). This is how the paper's prototype
/// sweeps horizons, and why its analysis time scales roughly linearly:
/// the per-horizon cost is only the transient analyses, whose
/// uniformization step count is linear in `t`.
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails.
#[must_use]
pub fn t5_reevaluate(scale: f64, horizons: &[f64]) -> Vec<T5Row> {
    let tree = industrial::generate(&industrial::model2().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(100.0)).expect("annotation");
    let max = horizons.iter().copied().fold(0.0f64, f64::max);
    let results =
        sdft_core::analyze_horizons(&annotated.tree, &AnalysisOptions::new(max), horizons)
            .expect("analysis");
    let count = u32::try_from(horizons.len()).unwrap_or(1);
    results
        .into_iter()
        .map(|result| T5Row {
            horizon: result.horizon,
            frequency: result.frequency,
            // One uniformization pass serves every horizon, so the cost
            // is genuinely shared; report the amortized share.
            time: result.timings.quantification / count,
            cutsets: result.stats.num_cutsets,
            kernel_steps: result.stats.kernel_steps,
            kernel_steps_saved: result.stats.kernel_steps_saved,
        })
        .collect()
}

/// Run the full pipeline on an arbitrary tree (shared by the benches).
///
/// # Panics
///
/// Panics if the analysis fails.
#[must_use]
pub fn analyze_tree(tree: &FaultTree, horizon: f64) -> AnalysisResult {
    analyze(tree, &AnalysisOptions::new(horizon)).expect("analysis")
}

/// One row of the cutoff sensitivity sweep (an extension experiment:
/// classic PSA practice validates that the chosen cutoff does not bias
/// the result).
#[derive(Debug, Clone)]
pub struct CutoffRow {
    /// The cutoff `c*`.
    pub cutoff: f64,
    /// Cutsets above the cutoff.
    pub cutsets: usize,
    /// Time-aware failure frequency.
    pub frequency: f64,
    /// Analysis time.
    pub time: Duration,
    /// Partial cutsets MOCUS processed.
    pub partials: u64,
    /// Partials MOCUS pruned via cutoff / look-ahead.
    pub partials_pruned: u64,
    /// Subset tests the minimization pass performed.
    pub subsumption_comparisons: u64,
    /// Peak cutsets resident between generation and quantification.
    pub peak_pending_cutsets: usize,
    /// Approximate peak bytes held by resident candidate cutsets.
    pub peak_candidate_bytes: u64,
}

/// Cutoff sensitivity on model 1 with 30% dynamic annotation: the
/// frequency must converge as the cutoff tightens, showing the default
/// `10⁻¹⁵` loses nothing that matters.
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails.
#[must_use]
pub fn cutoff_sweep(scale: f64, cutoffs: &[f64], horizon: f64) -> Vec<CutoffRow> {
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(30.0)).expect("annotation");
    cutoffs
        .iter()
        .map(|&cutoff| {
            let mut options = AnalysisOptions::new(horizon);
            options.mocus = MocusOptions::with_cutoff(cutoff);
            let begin = Instant::now();
            let result = analyze(&annotated.tree, &options).expect("analysis");
            CutoffRow {
                cutoff,
                cutsets: result.stats.num_cutsets,
                frequency: result.frequency,
                time: begin.elapsed(),
                partials: result.stats.mocus_partials_processed,
                partials_pruned: result.stats.mocus_partials_pruned,
                subsumption_comparisons: result.stats.mocus_subsumption_comparisons,
                peak_pending_cutsets: result.stats.peak_pending_cutsets,
                peak_candidate_bytes: result.stats.mocus_peak_candidate_bytes,
            }
        })
        .collect()
}

/// One row of the backend contrast (extension X3): the same analysis
/// once through MOCUS at a cutoff and once through the exact modular
/// BDD backend, with the truncation error the cutoff incurred against
/// the exact static probability.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// The cutoff `c*` applied to both backends' cutset lists.
    pub cutoff: f64,
    /// Cutsets above the cutoff (identical for both backends).
    pub cutsets: usize,
    /// Time-aware failure frequency (bitwise identical across backends).
    pub frequency: f64,
    /// Static REA over the kept cutsets — what the cutoff run reports.
    pub rea: f64,
    /// Exact static probability of `FT̄` from the modular BDD — no
    /// cutoff, no rare-event approximation.
    pub exact: f64,
    /// `|rea − exact|`: truncation *plus* rare-event error at this
    /// cutoff, eliminated entirely by the exact backend.
    pub abs_error: f64,
    /// Whole-analysis wall clock under MOCUS.
    pub mocus_time: Duration,
    /// Whole-analysis wall clock under the BDD backend.
    pub bdd_time: Duration,
    /// Cutset-generation span under MOCUS.
    pub mocus_generation: Duration,
    /// Cutset-generation span (construction + minsol) under the BDD.
    pub bdd_generation: Duration,
    /// Independent modules the BDD backend decomposed `FT̄` into.
    pub bdd_modules: usize,
    /// Total ROBDD nodes across the module diagrams.
    pub bdd_nodes: usize,
}

/// Contrast the MOCUS-at-cutoff pipeline with the exact modular-BDD
/// backend on the X1 fixture (industrial model 1, 30% dynamic): both
/// must report bitwise-identical frequencies over the same cutset
/// list, while only the BDD quotes the exact static probability.
///
/// # Panics
///
/// Panics if generation, annotation or analysis fails, or if the
/// backends disagree on the frequency bits.
#[must_use]
pub fn backend_contrast(scale: f64, cutoffs: &[f64], horizon: f64) -> Vec<BackendRow> {
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(30.0)).expect("annotation");
    cutoffs
        .iter()
        .map(|&cutoff| {
            let mut options = AnalysisOptions::new(horizon);
            options.mocus = MocusOptions::with_cutoff(cutoff);
            let begin = Instant::now();
            let mocus = analyze(&annotated.tree, &options).expect("mocus analysis");
            let mocus_time = begin.elapsed();

            options.backend = Backend::Bdd;
            let begin = Instant::now();
            let bdd = analyze(&annotated.tree, &options).expect("bdd analysis");
            let bdd_time = begin.elapsed();

            assert_eq!(
                mocus.frequency.to_bits(),
                bdd.frequency.to_bits(),
                "backends must agree bitwise at cutoff {cutoff:e}"
            );
            assert_eq!(mocus.stats.num_cutsets, bdd.stats.num_cutsets);
            let exact = bdd.exact_static.expect("bdd backend reports exact");
            BackendRow {
                cutoff,
                cutsets: bdd.stats.num_cutsets,
                frequency: bdd.frequency,
                rea: bdd.static_rea,
                exact,
                abs_error: (bdd.static_rea - exact).abs(),
                mocus_time,
                bdd_time,
                mocus_generation: mocus.timings.mcs_generation,
                bdd_generation: bdd.timings.mcs_generation,
                bdd_modules: bdd.stats.bdd_modules,
                bdd_nodes: bdd.stats.bdd_total_nodes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t1_has_the_expected_rows_and_shape() {
        let rows = super::t1(24.0);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].setting, "no timing");
        // The no-repair dynamic row reproduces the static value.
        assert!((rows[1].frequency - rows[0].frequency).abs() / rows[0].frequency < 1e-6);
        // Trigger rows decrease monotonically.
        for pair in rows[5..].windows(2) {
            assert!(pair[1].frequency <= pair[0].frequency * 1.0001);
        }
    }

    #[test]
    fn f3_grows_with_events_and_phases() {
        let points = super::f3(3, &[1, 2], 24.0);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert_eq!(p.chain_states, (p.phases + 1).pow(p.dynamic_events as u32));
        }
    }

    #[test]
    fn cutoff_sweep_converges_monotonically() {
        let rows = super::cutoff_sweep(0.03, &[1e-13, 1e-15, 1e-17], 24.0);
        assert_eq!(rows.len(), 3);
        // Tightening the cutoff adds cutsets and frequency mass
        // (the cutoff is a pure truncation, never a reshuffle)...
        assert!(rows[0].cutsets <= rows[1].cutsets);
        assert!(rows[1].cutsets <= rows[2].cutsets);
        assert!(rows[0].frequency <= rows[1].frequency * (1.0 + 1e-12));
        assert!(rows[1].frequency <= rows[2].frequency * (1.0 + 1e-12));
        // ...and the *relative* increments shrink: the sweep converges,
        // even though our fat-tailed generated model converges slower
        // than a typical PSA study (documented in EXPERIMENTS.md).
        let step1 = rows[1].frequency / rows[0].frequency;
        let step2 = rows[2].frequency / rows[1].frequency;
        assert!(
            step2 < step1,
            "increments must shrink: {step1} then {step2}"
        );
    }

    #[test]
    fn backend_contrast_error_shrinks_with_the_cutoff() {
        let rows = super::backend_contrast(0.03, &[1e-13, 1e-17], 24.0);
        assert_eq!(rows.len(), 2);
        // The exact probability is cutoff-independent; the REA closes in
        // on it (from below via truncation, overshooting via the
        // rare-event sum) as the cutoff tightens.
        assert_eq!(rows[0].exact.to_bits(), rows[1].exact.to_bits());
        assert!(rows[0].cutsets <= rows[1].cutsets);
        for row in &rows {
            assert!(row.exact > 0.0);
            assert!(row.bdd_modules >= 1);
            assert!(row.bdd_nodes > 0);
        }
    }
}

/// One row of the dynamic-uncertainty experiment (extension X2).
#[derive(Debug, Clone, Copy)]
pub struct DynamicUncertainty {
    /// Point estimate with nominal rates.
    pub point: f64,
    /// Mean of the sampled frequencies.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Number of samples.
    pub samples: usize,
}

/// X2: propagate *rate* uncertainty through the full dynamic analysis of
/// the BWR study — every dynamic event's rates and every static event's
/// probability are scaled by a lognormal factor with the given error
/// factor, and the whole pipeline re-runs per sample (the paper's
/// closing-remark workflow, on the dynamic quantities rather than the
/// static REA).
///
/// # Panics
///
/// Panics if the model fails to build or analyze.
#[must_use]
pub fn x2_dynamic_uncertainty(
    samples: usize,
    error_factor: f64,
    seed: u64,
    horizon: f64,
) -> DynamicUncertainty {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let tree = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
    let options = AnalysisOptions::new(horizon);
    let point = analyze(&tree, &options).expect("analysis").frequency;

    let sigma = error_factor.ln() / 1.644_853_626_951_472_6;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frequencies: Vec<f64> = (0..samples)
        .map(|_| {
            // One lognormal factor per basic event, fixed across the
            // sample (Box–Muller on plain `rand`).
            let factors: Vec<f64> = (0..tree.len())
                .map(|_| {
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (sigma * z).exp()
                })
                .collect();
            let scaled = sdft_ft::transform::scale_event_rates(&tree, |id| factors[id.index()])
                .expect("scaling");
            analyze(&scaled, &options).expect("analysis").frequency
        })
        .collect();
    frequencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = frequencies.iter().sum::<f64>() / frequencies.len() as f64;
    let pct = |q: f64| frequencies[((frequencies.len() - 1) as f64 * q).round() as usize];
    DynamicUncertainty {
        point,
        mean,
        p05: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
        samples,
    }
}

#[cfg(test)]
mod x2_tests {
    #[test]
    fn dynamic_uncertainty_band_is_ordered_and_right_shifted() {
        let result = super::x2_dynamic_uncertainty(40, 3.0, 0xBEEF, 24.0);
        assert!(result.p05 < result.p50 && result.p50 < result.p95);
        // The classic PSA effect: with median-preserving lognormal
        // parameters, products of factors have mean exp(kσ²/2) > 1, so
        // the sampled frequency distribution sits *above* the nominal
        // point estimate (which can even fall below the 5th percentile).
        assert!(
            result.mean > result.point,
            "{} !> {}",
            result.mean,
            result.point
        );
        assert!(result.point > 0.0 && result.p95 / result.p05 > 2.0);
    }
}
