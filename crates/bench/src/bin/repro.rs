//! Reproduce the tables and figures of §VI of Krčál & Krčál (DSN 2015).
//!
//! ```text
//! repro [t1] [t2] [t3] [t4] [t5] [f2] [f3] [x1] [x2] [x3] [all] [--scale X] [--full]
//! ```
//!
//! Industrial-model experiments (t2–t5, f2) run at `--scale 0.3` by
//! default; `--full` (= `--scale 1.0`) reproduces the paper's model
//! sizes. T1 and F3 always run at full size (they are small).

use sdft_bench as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.3;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let v = iter.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale needs a number");
            }
            "--full" => scale = 1.0,
            other => selected.push(other.to_owned()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_owned());
    }
    let all = selected.iter().any(|s| s == "all");
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    println!("# SD fault tree experiment reproduction (scale {scale})");
    println!();

    if want("t1") {
        t1();
    }
    if want("t2") {
        t2(scale);
    }
    if want("t3") || want("f2") {
        t3_f2(scale, want("t3"), want("f2"));
    }
    if want("f3") {
        f3();
    }
    if want("t4") {
        t4(scale);
    }
    if want("t5") {
        t5(scale);
    }
    if want("x1") {
        x1(scale);
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3(scale);
    }
}

fn x3(scale: f64) {
    // The exact backend's dominant module exceeds the BDD node budget
    // beyond ~scale 0.12 (the blow-up that motivates MOCUS in §I), so
    // this table is capped at the largest scale the backend handles.
    let scale = scale.min(0.1);
    println!(
        "## X3 (extension): exact BDD backend vs MOCUS cutoff truncation \
         (model 1 @ scale {scale}, 30% dynamic)"
    );
    println!();
    println!(
        "| cutoff | MCS | static REA | exact (BDD) | |REA − exact| | mocus time | \
         bdd time | modules | BDD nodes |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for row in exp::backend_contrast(scale, &[1e-12, 1e-15, 1e-18], 24.0) {
        println!(
            "| {:.0e} | {} | {:.4e} | {:.4e} | {:.2e} | {} | {} | {} | {} |",
            row.cutoff,
            row.cutsets,
            row.rea,
            row.exact,
            row.abs_error,
            seconds(row.mocus_time),
            seconds(row.bdd_time),
            row.bdd_modules,
            row.bdd_nodes,
        );
    }
    println!();
}

fn x2() {
    println!("## X2 (extension): rate uncertainty through the dynamic analysis (BWR)");
    println!();
    let r = exp::x2_dynamic_uncertainty(200, 3.0, 0xBEEF, 24.0);
    println!("| samples | point | mean | 5% | 50% | 95% |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| {} | {:.3e} | {:.3e} | {:.3e} | {:.3e} | {:.3e} |",
        r.samples, r.point, r.mean, r.p05, r.p50, r.p95
    );
    println!();
}

fn x1(scale: f64) {
    println!("## X1 (extension): cutoff sensitivity (model 1, 30% dynamic)");
    println!();
    println!(
        "| cutoff | MCS | failure freq. | analysis time | partials | pruned | \
         subsumption tests | peak pending MCS | peak candidate MB |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for row in exp::cutoff_sweep(scale, &[1e-12, 1e-14, 1e-15, 1e-16, 1e-18], 24.0) {
        println!(
            "| {:.0e} | {} | {:.4e} | {} | {} | {} | {} | {} | {:.1} |",
            row.cutoff,
            row.cutsets,
            row.frequency,
            seconds(row.time),
            row.partials,
            row.partials_pruned,
            row.subsumption_comparisons,
            row.peak_pending_cutsets,
            row.peak_candidate_bytes as f64 / 1.0e6,
        );
    }
    println!();
}

fn seconds(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

fn percent(rate: f64) -> String {
    format!("{:.1}%", rate * 100.0)
}

fn t1() {
    println!("## T1 (§VI-A): BWR study — repairs and triggers");
    println!();
    println!(
        "| setting | failure freq. | analysis time | MCS | dynamic MCS | avg dyn/model \
         | model classes | cache hit rate | kernel steps | saved |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for row in exp::t1(24.0) {
        println!(
            "| {} | {:.3e} | {} | {} | {} | {:.2} | {} | {} | {} | {} |",
            row.setting,
            row.frequency,
            row.time.map_or_else(|| "—".to_owned(), seconds),
            row.cutsets,
            row.dynamic_cutsets,
            row.avg_model_dynamic,
            row.distinct_model_classes,
            percent(row.cache_hit_rate),
            row.kernel_steps,
            row.kernel_steps_saved,
        );
    }
    println!();
}

fn t2(scale: f64) {
    println!("## T2 (§VI-B): industrial model sizes and MCS generation");
    println!();
    println!(
        "| model | # BE | # gates | # MCS | MCS generation | static REA | partials | partials/s |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for row in exp::t2(scale) {
        println!(
            "| {} | {} | {} | {} | {} | {:.3e} | {} | {:.2e} |",
            row.name,
            row.basic_events,
            row.gates,
            row.cutsets,
            seconds(row.generation_time),
            row.rea,
            row.partials,
            row.partials_per_sec,
        );
    }
    println!();
}

fn t3_f2(scale: f64, print_t3: bool, print_f2: bool) {
    let rows = exp::t3(scale, &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 100.0], 24.0);
    if print_t3 {
        println!("## T3 (§VI-B): model 1 with growing dynamic fraction");
        println!();
        println!(
            "| % dyn. BE | % trigg. BE | failure freq. | analysis time | MCS | dynamic MCS \
             | model classes | cache hit rate |"
        );
        println!("|---|---|---|---|---|---|---|---|");
        for row in &rows {
            println!(
                "| {} | {} | {:.3e} | {} | {} | {} | {} | {} |",
                row.percent_dynamic,
                row.percent_triggered,
                row.frequency,
                if row.time.is_zero() {
                    "—".to_owned()
                } else {
                    seconds(row.time)
                },
                row.cutsets,
                row.dynamic_cutsets,
                row.distinct_model_classes,
                percent(row.cache_hit_rate),
            );
        }
        println!();
    }
    if print_f2 {
        println!("## F2 (Figure 2): dynamic events per cutset model");
        println!();
        for row in &rows {
            if row.percent_dynamic == 0.0 {
                continue;
            }
            println!("{}% dynamic:", row.percent_dynamic);
            let max = row.histogram.iter().copied().max().unwrap_or(1).max(1);
            for (k, &count) in row.histogram.iter().enumerate() {
                let bar = "#".repeat((count * 50).div_ceil(max));
                println!("  {k:>2} dyn | {count:>8} {bar}");
            }
            println!();
        }
    }
}

fn f3() {
    println!("## F3 (Figure 3): per-cutset Markov analysis time");
    println!();
    println!("| # dynamic events | phases k | chain states | time |");
    println!("|---|---|---|---|");
    for p in exp::f3(6, &[1, 2, 3, 4], 24.0) {
        println!(
            "| {} | {} | {} | {:?} |",
            p.dynamic_events, p.phases, p.chain_states, p.time
        );
    }
    println!();
}

fn t4(scale: f64) {
    println!("## T4 (§VI-B): analysis time vs phases per dynamic event");
    println!();
    println!("| model | phases k | failure freq. | analysis time |");
    println!("|---|---|---|---|");
    for row in exp::t4(scale, &[1, 2, 3], 24.0) {
        println!(
            "| {} | {} | {:.3e} | {} |",
            row.model,
            row.phases,
            row.frequency,
            seconds(row.time)
        );
    }
    println!();
}

fn t5(scale: f64) {
    println!("## T5 (§VI-B): horizon sweep on model 2");
    println!();
    println!("| horizon | failure freq. | analysis time | MCS | kernel steps | saved |");
    println!("|---|---|---|---|---|---|");
    for row in exp::t5(scale, &[24.0, 48.0, 72.0, 96.0]) {
        println!(
            "| {}h | {:.3e} | {} | {} | {} | {} |",
            row.horizon,
            row.frequency,
            seconds(row.time),
            row.cutsets,
            row.kernel_steps,
            row.kernel_steps_saved,
        );
    }
    println!();
    // The re-evaluation variant generates its cutset list at the largest
    // horizon, where the full-scale model produces ~10M cutsets; cap the
    // scale so the table stays in interactive territory.
    let reeval_scale = scale.min(0.3);
    println!(
        "### T5 in re-evaluation mode (one cutset list, shared uniformization; scale {reeval_scale})"
    );
    println!();
    println!("| horizon | failure freq. | amortized quantification | MCS | kernel steps | saved |");
    println!("|---|---|---|---|---|---|");
    for row in exp::t5_reevaluate(reeval_scale, &[24.0, 48.0, 72.0, 96.0]) {
        println!(
            "| {}h | {:.3e} | {} | {} | {} | {} |",
            row.horizon,
            row.frequency,
            seconds(row.time),
            row.cutsets,
            row.kernel_steps,
            row.kernel_steps_saved,
        );
    }
    println!();
}
