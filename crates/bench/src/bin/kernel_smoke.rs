//! Bench smoke: run the small benchmark configuration and write
//! machine-readable kernel timings to a JSON file (default
//! `BENCH_kernel.json`), so CI can track the perf trajectory of the
//! uniformization kernel across commits.
//!
//! ```text
//! kernel_smoke [output.json]
//! ```

use sdft_core::{analyze, AnalysisOptions};
use sdft_ctmc::{erlang, transient_distribution_many_with, SolverOptions, SolverWorkspace};
use sdft_models::bwr;
use std::time::Instant;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    // The small configuration: the fully dynamic BWR study at 24 h —
    // every pipeline phase plus hundreds of kernel solves in ~100 ms.
    let tree = bwr::build(&bwr::BwrConfig::fully_dynamic(0.01, 1));
    let begin = Instant::now();
    let result = analyze(&tree, &AnalysisOptions::new(24.0)).expect("BWR analysis");
    let analysis_seconds = begin.elapsed().as_secs_f64();

    // A stiff repairable chain solved directly: repair at 50/h over 24 h
    // gives Λt = 1200 on the transient (availability) solve, where
    // steady-state detection carries the kernel.
    let stiff = erlang::repairable(1, 1e-3, 50.0).expect("stiff chain");
    let mut ws = SolverWorkspace::new();
    let ssd_begin = Instant::now();
    let (_, stiff_stats) = transient_distribution_many_with(
        &stiff,
        &[24.0],
        1e-12,
        &SolverOptions::default(),
        &mut ws,
    )
    .expect("stiff solve");
    let stiff_seconds = ssd_begin.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \
         \"schema\": \"sdft-bench-kernel-v1\",\n  \
         \"bwr\": {{\n    \
         \"frequency\": {:e},\n    \
         \"analysis_seconds\": {:.6},\n    \
         \"quantification_seconds\": {:.6},\n    \
         \"csr_build_seconds\": {:.6},\n    \
         \"kernel_solves\": {},\n    \
         \"kernel_steps\": {},\n    \
         \"kernel_steps_saved\": {},\n    \
         \"steady_state_solves\": {},\n    \
         \"distinct_model_classes\": {},\n    \
         \"cache_hit_rate\": {:.4}\n  }},\n  \
         \"stiff_chain\": {{\n    \
         \"solve_seconds\": {:.6},\n    \
         \"steps_taken\": {},\n    \
         \"steps_budget\": {},\n    \
         \"steady_state_fired\": {}\n  }}\n}}\n",
        result.frequency,
        analysis_seconds,
        result.timings.quantification.as_secs_f64(),
        result.timings.csr_build.as_secs_f64(),
        result.stats.kernel_solves,
        result.stats.kernel_steps,
        result.stats.kernel_steps_saved,
        result.stats.steady_state_solves,
        result.stats.distinct_model_classes,
        result.stats.cache_hit_rate(),
        stiff_seconds,
        stiff_stats.steps_taken,
        stiff_stats.steps_budget,
        stiff_stats.steady_state_step.is_some(),
    );
    std::fs::write(&output, &json).expect("write kernel timings");
    println!(
        "kernel smoke: BWR frequency {:.4e}, {} kernel solves, {} steps ({} saved), wrote {output}",
        result.frequency,
        result.stats.kernel_solves,
        result.stats.kernel_steps,
        result.stats.kernel_steps_saved,
    );
}
