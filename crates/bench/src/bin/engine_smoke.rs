//! Bench smoke: compare the batch analysis path against the streaming
//! engine on the 30%-dynamic industrial model 1 (the X1 preset) at the
//! default `1e-15` cutoff and the deep `1e-18` cutoff, and write
//! machine-readable numbers to a JSON file (default `BENCH_engine.json`)
//! so CI can track wall-clock and peak cutset residency across commits.
//!
//! Each preset runs three ways — batch single-threaded, streaming
//! single-threaded, streaming on all cores — and the streamed results
//! must be bitwise identical to the batch results (same frequency bits,
//! same cutset list, same schedule-independent counters).
//!
//! ```text
//! engine_smoke [output.json] [--scale X]
//! ```

use sdft_core::{analyze, AnalysisOptions, AnalysisResult};
use sdft_ft::{EventProbabilities, FaultTree};
use sdft_importance::fussell_vesely_ranking;
use sdft_mocus::{minimal_cutsets, MocusOptions};
use sdft_models::annotate::{annotate, AnnotationConfig};
use sdft_models::industrial;
use std::time::Instant;

struct Run {
    seconds: f64,
    result: AnalysisResult,
}

fn run(tree: &FaultTree, cutoff: f64, streaming: bool, threads: usize) -> Run {
    let mut options = AnalysisOptions::new(24.0);
    options.mocus = MocusOptions::with_cutoff(cutoff);
    options.mocus.threads = threads;
    options.threads = threads;
    options.streaming = streaming;
    let begin = Instant::now();
    let result = analyze(tree, &options).expect("analysis");
    Run {
        seconds: begin.elapsed().as_secs_f64(),
        result,
    }
}

fn assert_bitwise(batch: &AnalysisResult, stream: &AnalysisResult, label: &str) {
    assert_eq!(
        batch.frequency.to_bits(),
        stream.frequency.to_bits(),
        "{label}: frequency must be bitwise identical"
    );
    assert_eq!(
        batch.static_rea.to_bits(),
        stream.static_rea.to_bits(),
        "{label}: static REA must be bitwise identical"
    );
    assert_eq!(
        batch.cutsets.len(),
        stream.cutsets.len(),
        "{label}: cutset count must match"
    );
    for (b, s) in batch.cutsets.iter().zip(&stream.cutsets) {
        assert_eq!(b.cutset, s.cutset, "{label}: cutset order must match");
        assert_eq!(
            b.probability.to_bits(),
            s.probability.to_bits(),
            "{label}: per-cutset probability must be bitwise identical"
        );
    }
    assert_eq!(
        batch.stats.clone().deterministic(),
        stream.stats.clone().deterministic(),
        "{label}: schedule-independent counters must match"
    );
}

fn preset_json(name: &str, cutoff: f64, batch: &Run, stream1: &Run, streamn: &Run) -> String {
    let peaks = |r: &Run| {
        format!(
            "\"peak_pending_cutsets\": {}, \"peak_inflight_models\": {}, \
             \"peak_candidate_bytes\": {}",
            r.result.stats.peak_pending_cutsets,
            r.result.stats.peak_inflight_models,
            r.result.stats.mocus_peak_candidate_bytes,
        )
    };
    format!(
        "  {{\n    \
         \"preset\": \"{name}\",\n    \
         \"cutoff\": {cutoff:e},\n    \
         \"cutsets\": {},\n    \
         \"frequency\": {:e},\n    \
         \"batch\": {{ \"seconds\": {:.6}, {} }},\n    \
         \"stream_1_thread\": {{ \"seconds\": {:.6}, {}, \"overlap_seconds\": {:.6} }},\n    \
         \"stream_all_cores\": {{ \"seconds\": {:.6}, {}, \"overlap_seconds\": {:.6}, \
         \"speedup_vs_batch\": {:.3} }}\n  }}",
        batch.result.stats.num_cutsets,
        batch.result.frequency,
        batch.seconds,
        peaks(batch),
        stream1.seconds,
        peaks(stream1),
        stream1.result.timings.stream_overlap.as_secs_f64(),
        streamn.seconds,
        peaks(streamn),
        streamn.result.timings.stream_overlap.as_secs_f64(),
        batch.seconds / streamn.seconds.max(1e-12),
    )
}

fn main() {
    let mut output = "BENCH_engine.json".to_owned();
    let mut scale = 0.15;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--scale" {
            let v = iter.next().expect("--scale needs a value");
            scale = v.parse().expect("--scale needs a number");
        } else {
            output = arg.clone();
        }
    }

    // The X1 fixture: industrial model 1, 30% of basic events annotated
    // dynamic by Fussell-Vesely rank (same construction as the cutoff
    // sweep in the repro harness).
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(30.0)).expect("annotation");

    let mut blocks = Vec::new();
    let mut summaries = Vec::new();
    for (name, cutoff) in [("x1_default_1e-15", 1e-15), ("x1_deep_1e-18", 1e-18)] {
        let batch = run(&annotated.tree, cutoff, false, 1);
        let stream1 = run(&annotated.tree, cutoff, true, 1);
        let streamn = run(&annotated.tree, cutoff, true, 0);
        assert_bitwise(&batch.result, &stream1.result, name);
        assert_bitwise(&batch.result, &streamn.result, name);
        summaries.push(format!(
            "{name}: {} cutsets, batch {:.3}s (peak {} pending), stream {:.3}s / {:.3}s \
             (peak {} pending, overlap {:.3}s)",
            batch.result.stats.num_cutsets,
            batch.seconds,
            batch.result.stats.peak_pending_cutsets,
            stream1.seconds,
            streamn.seconds,
            streamn.result.stats.peak_pending_cutsets,
            streamn.result.timings.stream_overlap.as_secs_f64(),
        ));
        blocks.push(preset_json(name, cutoff, &batch, &stream1, &streamn));
    }

    let json = format!(
        "{{\n  \
         \"schema\": \"sdft-bench-engine-v1\",\n  \
         \"model\": \"industrial model 1 @ {scale}, 30% dynamic\",\n  \
         \"presets\": [\n{}\n]\n}}\n",
        blocks.join(",\n"),
    );
    std::fs::write(&output, &json).expect("write engine timings");
    for line in &summaries {
        println!("engine smoke: {line}");
    }
    println!("engine smoke: wrote {output}");
}
