//! Bench smoke: compare the batch analysis path against the streaming
//! engine on the 30%-dynamic industrial model 1 (the X1 preset) at the
//! default `1e-15` cutoff and the deep `1e-18` cutoff, and write
//! machine-readable numbers to a JSON file (default `BENCH_engine.json`)
//! so CI can track wall-clock and peak cutset residency across commits.
//!
//! Each preset runs three ways — batch single-threaded, streaming
//! single-threaded, streaming on all cores — and the streamed results
//! must be bitwise identical to the batch results (same frequency bits,
//! same cutset list, same schedule-independent counters). Streaming
//! runs must also keep peak pending-cutset residency strictly below the
//! total cutset count: the epoch plan exists to retire cutsets before
//! generation finishes, and holding every cutset at once means it
//! degenerated to batch with extra steps.
//!
//! ```text
//! engine_smoke [output.json] [--scale X] [--repeat N] [--gate-multicore]
//! ```
//!
//! `--repeat N` runs every configuration N times in interleaved rounds
//! (batch, stream-1, stream-all, batch, …) and reports the fastest run
//! of each: host noise and thermal drift hit whole rounds rather than
//! whichever configuration happened to run last, so the reported
//! ratios compare like with like. Bitwise identity is asserted on
//! every run, not just the kept one.
//!
//! `--gate-multicore` additionally enforces the multicore regression
//! gates (meant for a >= 4-core CI runner, not a laptop in power-save):
//! streaming on all cores must beat batch on the deep preset
//! (`speedup_vs_batch >= 1.0`), single-quant-thread streaming must stay
//! within 5% of batch (`stream_1_thread.seconds <= 1.05 x
//! batch.seconds`), and the deep preset must report genuine stage
//! overlap (`overlap_seconds > 0`).

use sdft_core::{analyze, AnalysisOptions, AnalysisResult};
use sdft_ft::{EventProbabilities, FallbackMode, FaultTree};
use sdft_importance::fussell_vesely_ranking;
use sdft_mocus::{minimal_cutsets, MocusOptions};
use sdft_models::annotate::{annotate, AnnotationConfig};
use sdft_models::industrial;
use std::time::Instant;

struct Run {
    seconds: f64,
    result: AnalysisResult,
}

impl Run {
    /// Sustained SpMV throughput in nonzeros per second (0 when the
    /// stepping loop never ran, e.g. every model was rateless).
    fn spmv_throughput(&self) -> f64 {
        let seconds = self.result.timings.spmv.as_secs_f64();
        if seconds <= 0.0 {
            0.0
        } else {
            self.result.stats.kernel_spmv_nonzeros as f64 / seconds
        }
    }
}

fn run(tree: &FaultTree, cutoff: f64, streaming: bool, threads: usize) -> Run {
    run_with(tree, cutoff, streaming, threads, 0, FallbackMode::Adaptive)
}

fn run_with(
    tree: &FaultTree,
    cutoff: f64,
    streaming: bool,
    threads: usize,
    shards: usize,
    fallback: FallbackMode,
) -> Run {
    let mut options = AnalysisOptions::new(24.0);
    options.mocus = MocusOptions::with_cutoff(cutoff);
    options.mocus.threads = threads;
    options.threads = threads;
    options.streaming = streaming;
    options.filter_shards = shards;
    options.filter_fallback = fallback;
    let begin = Instant::now();
    let result = analyze(tree, &options).expect("analysis");
    Run {
        seconds: begin.elapsed().as_secs_f64(),
        result,
    }
}

fn assert_bitwise(batch: &AnalysisResult, stream: &AnalysisResult, label: &str) {
    assert_eq!(
        batch.frequency.to_bits(),
        stream.frequency.to_bits(),
        "{label}: frequency must be bitwise identical"
    );
    assert_eq!(
        batch.static_rea.to_bits(),
        stream.static_rea.to_bits(),
        "{label}: static REA must be bitwise identical"
    );
    assert_eq!(
        batch.cutsets.len(),
        stream.cutsets.len(),
        "{label}: cutset count must match"
    );
    for (b, s) in batch.cutsets.iter().zip(&stream.cutsets) {
        assert_eq!(b.cutset, s.cutset, "{label}: cutset order must match");
        assert_eq!(
            b.probability.to_bits(),
            s.probability.to_bits(),
            "{label}: per-cutset probability must be bitwise identical"
        );
    }
    assert_eq!(
        batch.stats.clone().deterministic(),
        stream.stats.clone().deterministic(),
        "{label}: schedule-independent counters must match"
    );
}

/// Streaming must retire cutsets while generation is still running;
/// holding the entire cutset list in the pending buffer means the
/// epoch plan failed to split the workload.
fn assert_bounded_residency(stream: &Run, label: &str) {
    let total = stream.result.stats.num_cutsets;
    let peak = stream.result.stats.peak_pending_cutsets;
    assert!(
        peak < total,
        "{label}: streaming peak pending cutsets ({peak}) must stay \
         strictly below the total cutset count ({total})"
    );
}

fn run_json(r: &Run, extra: &str) -> String {
    let t = &r.result.timings;
    let shard_list = |pick: fn(&sdft_core::FilterShardStats) -> u64| -> String {
        r.result
            .stats
            .filter_shard_stats
            .iter()
            .map(|s| pick(s).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{ \"seconds\": {:.6}, \
         \"peak_pending_cutsets\": {}, \"peak_inflight_models\": {}, \
         \"peak_candidate_bytes\": {}, \
         \"generation_busy_seconds\": {:.6}, \"filter_busy_seconds\": {:.6}, \
         \"quant_busy_seconds\": {:.6}, \"spmv_seconds\": {:.6}, \
         \"spmv_nonzeros\": {}, \"spmv_nonzeros_per_second\": {:.0}, \
         \"filter_shards\": {}, \"filter_fallback_epochs\": {}, \
         \"filter_shard_probes\": [{}], \"filter_shard_rejects\": [{}], \
         \"filter_shard_compactions\": [{}]{extra} }}",
        r.seconds,
        r.result.stats.peak_pending_cutsets,
        r.result.stats.peak_inflight_models,
        r.result.stats.mocus_peak_candidate_bytes,
        t.generation_busy.as_secs_f64(),
        t.filter_busy.as_secs_f64(),
        t.quant_busy.as_secs_f64(),
        t.spmv.as_secs_f64(),
        r.result.stats.kernel_spmv_nonzeros,
        r.spmv_throughput(),
        r.result.stats.filter_shards,
        r.result.stats.filter_fallback_epochs,
        shard_list(|s| s.probes),
        shard_list(|s| s.rejects),
        shard_list(|s| s.compactions),
    )
}

fn preset_json(name: &str, cutoff: f64, batch: &Run, stream1: &Run, streamn: &Run) -> String {
    let overlap = |r: &Run| {
        format!(
            ", \"overlap_seconds\": {:.6}",
            r.result.timings.stream_overlap.as_secs_f64()
        )
    };
    format!(
        "  {{\n    \
         \"preset\": \"{name}\",\n    \
         \"cutoff\": {cutoff:e},\n    \
         \"cutsets\": {},\n    \
         \"frequency\": {:e},\n    \
         \"batch\": {},\n    \
         \"stream_1_thread\": {},\n    \
         \"stream_all_cores\": {}\n  }}",
        batch.result.stats.num_cutsets,
        batch.result.frequency,
        run_json(batch, ""),
        run_json(stream1, &overlap(stream1)),
        run_json(
            streamn,
            &format!(
                "{}, \"speedup_vs_batch\": {:.3}",
                overlap(streamn),
                batch.seconds / streamn.seconds.max(1e-12)
            )
        ),
    )
}

fn main() {
    let mut output = "BENCH_engine.json".to_owned();
    let mut scale = 0.15;
    let mut repeat = 1usize;
    let mut gate_multicore = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--scale" {
            let v = iter.next().expect("--scale needs a value");
            scale = v.parse().expect("--scale needs a number");
        } else if arg == "--repeat" {
            let v = iter.next().expect("--repeat needs a value");
            repeat = v.parse().expect("--repeat needs a count");
            assert!(repeat >= 1, "--repeat needs a count >= 1");
        } else if arg == "--gate-multicore" {
            gate_multicore = true;
        } else {
            output = arg.clone();
        }
    }

    // The X1 fixture: industrial model 1, 30% of basic events annotated
    // dynamic by Fussell-Vesely rank (same construction as the cutoff
    // sweep in the repro harness).
    let tree = industrial::generate(&industrial::model1().scaled(scale));
    let probs = EventProbabilities::from_static(&tree).expect("static model");
    let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default()).expect("mocus");
    let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
    let annotated =
        annotate(&tree, &ranking, &AnnotationConfig::percent_dynamic(30.0)).expect("annotation");

    let mut blocks = Vec::new();
    let mut summaries = Vec::new();
    let mut gate_failures = Vec::new();
    for (name, cutoff, deep) in [
        ("x1_default_1e-15", 1e-15, false),
        ("x1_deep_1e-18", 1e-18, true),
    ] {
        let mut batch = run(&annotated.tree, cutoff, false, 1);
        let mut stream1 = run(&annotated.tree, cutoff, true, 1);
        let mut streamn = run(&annotated.tree, cutoff, true, 0);
        assert_bitwise(&batch.result, &stream1.result, name);
        assert_bitwise(&batch.result, &streamn.result, name);
        // Further rounds interleave the three configurations and keep
        // the fastest run of each, so a noisy patch on the host costs a
        // whole round instead of skewing one configuration's number.
        let keep_min = |best: &mut Run, next: Run| {
            if next.seconds < best.seconds {
                *best = next;
            }
        };
        for _ in 1..repeat {
            let b = run(&annotated.tree, cutoff, false, 1);
            let s1 = run(&annotated.tree, cutoff, true, 1);
            let sn = run(&annotated.tree, cutoff, true, 0);
            assert_bitwise(&b.result, &s1.result, name);
            assert_bitwise(&b.result, &sn.result, name);
            keep_min(&mut batch, b);
            keep_min(&mut stream1, s1);
            keep_min(&mut streamn, sn);
        }
        assert_bounded_residency(&stream1, name);
        assert_bounded_residency(&streamn, name);
        if !deep {
            // Coverage: an odd explicit shard count plus the forced
            // batch fallback must still be bitwise-identical (the
            // sharded reconciliation and buffer-merge paths are easy to
            // break silently). Not part of the emitted JSON.
            let sharded = run_with(&annotated.tree, cutoff, true, 2, 3, FallbackMode::Always);
            assert_bitwise(
                &batch.result,
                &sharded.result,
                "x1_default sharded+fallback",
            );
            assert_eq!(
                sharded.result.stats.filter_shards, 3,
                "explicit shard count must be honored"
            );
            assert!(
                sharded.result.stats.filter_fallback_epochs > 0,
                "forced fallback must report fallback epochs"
            );
        }
        let speedup = batch.seconds / streamn.seconds.max(1e-12);
        let speedup1 = batch.seconds / stream1.seconds.max(1e-12);
        let overlap = streamn.result.timings.stream_overlap.as_secs_f64();
        if gate_multicore && deep {
            if speedup < 1.0 {
                gate_failures.push(format!(
                    "{name}: stream on all cores must not lose to batch \
                     (speedup_vs_batch {speedup:.3} < 1.0)"
                ));
            }
            if speedup1 < 1.0 {
                gate_failures.push(format!(
                    "{name}: stream at one quant thread must not lose to \
                     batch on a multicore host (speedup {speedup1:.3} < 1.0)"
                ));
            }
            if stream1.seconds > 1.05 * batch.seconds {
                gate_failures.push(format!(
                    "{name}: stream_1_thread must stay within 5% of batch \
                     ({:.3}s > 1.05 x {:.3}s)",
                    stream1.seconds, batch.seconds
                ));
            }
            if overlap <= 0.0 {
                gate_failures.push(format!(
                    "{name}: deep preset must overlap generation and \
                     quantification (overlap_seconds {overlap:.6} <= 0)"
                ));
            }
        }
        summaries.push(format!(
            "{name}: {} cutsets, batch {:.3}s, stream {:.3}s / {:.3}s \
             (peak {} of {} pending, overlap {:.3}s, quant busy {:.3}s, \
             spmv {:.1}M nz/s)",
            batch.result.stats.num_cutsets,
            batch.seconds,
            stream1.seconds,
            streamn.seconds,
            streamn.result.stats.peak_pending_cutsets,
            streamn.result.stats.num_cutsets,
            overlap,
            streamn.result.timings.quant_busy.as_secs_f64(),
            streamn.spmv_throughput() / 1e6,
        ));
        blocks.push(preset_json(name, cutoff, &batch, &stream1, &streamn));
    }

    let json = format!(
        "{{\n  \
         \"schema\": \"sdft-bench-engine-v3\",\n  \
         \"model\": \"industrial model 1 @ {scale}, 30% dynamic\",\n  \
         \"presets\": [\n{}\n]\n}}\n",
        blocks.join(",\n"),
    );
    std::fs::write(&output, &json).expect("write engine timings");
    for line in &summaries {
        println!("engine smoke: {line}");
    }
    println!("engine smoke: wrote {output}");
    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("engine smoke: GATE FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
