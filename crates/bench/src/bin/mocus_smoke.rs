//! Bench smoke: time MOCUS cutset generation on the 30%-scale
//! industrial model 1 and write machine-readable numbers to a JSON file
//! (default `BENCH_mocus.json`), so CI can track the perf trajectory of
//! the cutset generator across commits.
//!
//! Runs the generation single-threaded and on all cores; the cutset
//! lists must be identical (generation is thread-count-deterministic),
//! and the two timings quantify the parallel speedup on the host.
//!
//! ```text
//! mocus_smoke [output.json]
//! ```

use sdft_ft::EventProbabilities;
use sdft_mocus::{minimal_cutsets_with_stats, MocusOptions};
use sdft_models::industrial;
use std::time::Instant;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_mocus.json".to_owned());

    let tree = industrial::generate(&industrial::model1().scaled(0.3));
    let probs = EventProbabilities::from_static(&tree).expect("static model");

    let sequential = MocusOptions {
        threads: 1,
        ..MocusOptions::default()
    };
    let begin = Instant::now();
    let (mcs_seq, stats_seq) =
        minimal_cutsets_with_stats(&tree, &probs, &sequential).expect("mocus");
    let sequential_seconds = begin.elapsed().as_secs_f64();

    let parallel = MocusOptions::default(); // threads = 0: all cores
    let begin = Instant::now();
    let (mcs_par, stats_par) = minimal_cutsets_with_stats(&tree, &probs, &parallel).expect("mocus");
    let parallel_seconds = begin.elapsed().as_secs_f64();

    assert_eq!(mcs_seq, mcs_par, "cutset list must be thread-independent");
    assert_eq!(
        stats_seq.deterministic(),
        stats_par.deterministic(),
        "schedule-independent counters must match"
    );

    let partials_per_sec = |seconds: f64| stats_seq.partials_processed as f64 / seconds.max(1e-12);
    let json = format!(
        "{{\n  \
         \"schema\": \"sdft-bench-mocus-v1\",\n  \
         \"model\": \"industrial model 1 @ 0.3\",\n  \
         \"basic_events\": {},\n  \
         \"gates\": {},\n  \
         \"cutsets\": {},\n  \
         \"partials_processed\": {},\n  \
         \"partials_pruned\": {},\n  \
         \"subsumption_comparisons\": {},\n  \
         \"sequential\": {{\n    \
         \"generation_seconds\": {:.6},\n    \
         \"partials_per_sec\": {:.1}\n  }},\n  \
         \"parallel\": {{\n    \
         \"workers\": {},\n    \
         \"seed_tasks\": {},\n    \
         \"stolen_tasks\": {},\n    \
         \"generation_seconds\": {:.6},\n    \
         \"partials_per_sec\": {:.1},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        tree.num_basic_events(),
        tree.num_gates(),
        mcs_seq.len(),
        stats_seq.partials_processed,
        stats_seq.partials_pruned,
        stats_seq.subsumption_comparisons,
        sequential_seconds,
        partials_per_sec(sequential_seconds),
        stats_par.workers,
        stats_par.seed_tasks,
        stats_par.stolen_tasks,
        parallel_seconds,
        partials_per_sec(parallel_seconds),
        sequential_seconds / parallel_seconds.max(1e-12),
    );
    std::fs::write(&output, &json).expect("write mocus timings");
    println!(
        "mocus smoke: {} cutsets, {} partials, 1 thread {:.3}s vs {} workers {:.3}s \
         (speedup {:.2}x), wrote {output}",
        mcs_seq.len(),
        stats_seq.partials_processed,
        sequential_seconds,
        stats_par.workers,
        parallel_seconds,
        sequential_seconds / parallel_seconds.max(1e-12),
    );
}
