//! Long-running differential-oracle campaign over random SD fault trees.
//!
//! ```text
//! oracle_long [--seed N] [--trees N] [--budget-secs N] [--samples N]
//!             [--out DIR]
//! ```
//!
//! Runs the `sdft-oracle` generate → cross-check → shrink loop with a
//! larger tree count (and optional wall-clock budget) than the
//! deterministic CI test affords. Every disagreement is shrunk to a
//! minimal counterexample and written to `DIR` in the `sdft-ft` text
//! format — commit survivors under `tests/corpus/` so they replay in CI
//! forever. Exits non-zero iff any check disagreed.

use sdft_oracle::{run_oracle, OracleConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = OracleConfig {
        trees: 1_000,
        ..OracleConfig::default()
    };
    let mut out_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
                .clone()
        };
        match arg.as_str() {
            "--seed" => cfg.seed = parse_u64(&value("--seed")),
            "--trees" => cfg.trees = value("--trees").parse().expect("--trees needs a number"),
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")
                    .parse()
                    .expect("--budget-secs needs a number");
                cfg.time_budget = Some(Duration::from_secs(secs));
            }
            "--samples" => {
                cfg.check.sim_samples = value("--samples")
                    .parse()
                    .expect("--samples needs a number");
            }
            "--out" => out_dir = Some(value("--out")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let report = run_oracle(&cfg);
    print!("{}", report.summary());

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
        for ce in &report.counterexamples {
            let path = format!("{dir}/oracle-{:016x}-{}.ft", ce.tree_seed, ce.check);
            let body = format!(
                "# oracle counterexample: tree #{} (seed {:#x}) failed {:?}\n# {}\n{}",
                ce.index,
                ce.tree_seed,
                ce.check,
                ce.details.replace('\n', "\n# "),
                ce.minimized_text
            );
            std::fs::write(&path, body).expect("write counterexample");
            println!("wrote {path}");
        }
    }

    if !report.counterexamples.is_empty() {
        std::process::exit(1);
    }
}

/// Accept both decimal and `0x…` seeds.
fn parse_u64(s: &str) -> u64 {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16))
        .expect("--seed needs an integer")
}
