//! Bench smoke: the exact modular-BDD backend against MOCUS-at-cutoff
//! on the 30%-dynamic industrial model 1 (the X1 fixture), writing
//! machine-readable numbers to a JSON file (default `BENCH_bdd.json`)
//! so CI can track the exact backend's wall clock, diagram sizes, and
//! the truncation error each cutoff incurs against the exact static
//! probability.
//!
//! Every preset asserts the two backends produce bitwise-identical
//! frequencies over the same cutset list (`backend_contrast` panics
//! otherwise), so the smoke doubles as a cross-backend regression gate.
//!
//! The default scale (0.1) sits inside the exact backend's frontier:
//! beyond ~0.12 the model's dominant module exceeds the 20M-node budget
//! under every static order we implement — the very blow-up that
//! motivates MOCUS in §I of the paper.
//!
//! ```text
//! bdd_smoke [output.json] [--scale X]
//! ```

use sdft_bench::backend_contrast;

fn main() {
    let mut output = "BENCH_bdd.json".to_owned();
    let mut scale = 0.1;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--scale" {
            let v = iter.next().expect("--scale needs a value");
            scale = v.parse().expect("--scale needs a number");
        } else {
            output = arg.clone();
        }
    }

    let rows = backend_contrast(scale, &[1e-12, 1e-15, 1e-18], 24.0);
    let blocks: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "  {{\n    \
                 \"cutoff\": {:e},\n    \
                 \"cutsets\": {},\n    \
                 \"frequency\": {:e},\n    \
                 \"rea\": {:e},\n    \
                 \"exact\": {:e},\n    \
                 \"abs_error\": {:e},\n    \
                 \"mocus_seconds\": {:.6},\n    \
                 \"bdd_seconds\": {:.6},\n    \
                 \"mocus_generation_seconds\": {:.6},\n    \
                 \"bdd_generation_seconds\": {:.6},\n    \
                 \"bdd_modules\": {},\n    \
                 \"bdd_nodes\": {}\n  }}",
                row.cutoff,
                row.cutsets,
                row.frequency,
                row.rea,
                row.exact,
                row.abs_error,
                row.mocus_time.as_secs_f64(),
                row.bdd_time.as_secs_f64(),
                row.mocus_generation.as_secs_f64(),
                row.bdd_generation.as_secs_f64(),
                row.bdd_modules,
                row.bdd_nodes,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \
         \"schema\": \"sdft-bench-bdd-v1\",\n  \
         \"model\": \"industrial model 1 @ {scale}, 30% dynamic\",\n  \
         \"presets\": [\n{}\n]\n}}\n",
        blocks.join(",\n"),
    );
    std::fs::write(&output, &json).expect("write bdd timings");
    for row in &rows {
        println!(
            "bdd smoke: cutoff {:.0e}: {} cutsets, REA {:.4e} vs exact {:.4e} \
             (|error| {:.2e}), mocus {:.3}s vs bdd {:.3}s ({} modules, {} nodes)",
            row.cutoff,
            row.cutsets,
            row.rea,
            row.exact,
            row.abs_error,
            row.mocus_time.as_secs_f64(),
            row.bdd_time.as_secs_f64(),
            row.bdd_modules,
            row.bdd_nodes,
        );
    }
    println!("bdd smoke: wrote {output}");
}
