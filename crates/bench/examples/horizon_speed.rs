use sdft_core::{analyze, analyze_horizons, AnalysisOptions};
use sdft_models::bwr::{build, BwrConfig};
use std::time::Instant;

fn main() {
    let tree = build(&BwrConfig::fully_dynamic(0.01, 1));
    let horizons = [24.0, 48.0, 72.0, 96.0];
    let t0 = Instant::now();
    let batched = analyze_horizons(&tree, &AnalysisOptions::new(96.0), &horizons).unwrap();
    let batched_time = t0.elapsed();
    let t0 = Instant::now();
    let mut singles = Vec::new();
    for &h in &horizons {
        singles.push(analyze(&tree, &AnalysisOptions::new(h)).unwrap());
    }
    let single_time = t0.elapsed();
    println!("batched: {batched_time:?}, singles: {single_time:?}");
    for (b, s) in batched.iter().zip(&singles) {
        println!(
            "h={}: batched {:.6e} vs single {:.6e} (batched MCS {}, single {})",
            b.horizon, b.frequency, s.frequency, b.stats.num_cutsets, s.stats.num_cutsets
        );
    }
}
