//! Timing probe for the T5 re-evaluation headline number: the 792k-cutset
//! multi-horizon re-quantification on industrial model 2 at 30% scale
//! (one cutset list generated at the 96 h horizon, all four horizons
//! quantified from a single shared uniformization pass per cutset).
//! Prints the amortized per-horizon quantification so kernel changes can
//! be compared run-over-run.

use sdft_bench as exp;

fn main() {
    let horizons = [24.0, 48.0, 72.0, 96.0];
    let rows = exp::t5_reevaluate(0.3, &horizons);
    for row in &rows {
        println!(
            "h={}: freq {:.3e}, amortized quantification {:?}, {} MCS, {} kernel steps",
            row.horizon, row.frequency, row.time, row.cutsets, row.kernel_steps,
        );
    }
}
