use sdft_ft::EventProbabilities;
use sdft_mocus::{minimal_cutsets, MocusOptions};
use sdft_models::industrial::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(0.1);
    let which = args.get(2).map(|s| s.as_str()).unwrap_or("1");
    let cfg = if which == "2" { model2() } else { model1() }.scaled(scale);
    let t0 = Instant::now();
    let tree = generate(&cfg);
    println!(
        "gen: BE={} gates={} ({:?})",
        tree.num_basic_events(),
        tree.num_gates(),
        t0.elapsed()
    );
    let probs = EventProbabilities::from_static(&tree).unwrap();
    let t0 = Instant::now();
    match minimal_cutsets(&tree, &probs, &MocusOptions::default()) {
        Ok(mcs) => {
            let rea = mcs.rare_event_approximation(|e| probs.get(e));
            let max_order = mcs.iter().map(|c| c.order()).max().unwrap_or(0);
            println!(
                "MCS={} REA={:.3e} max_order={} time={:?}",
                mcs.len(),
                rea,
                max_order,
                t0.elapsed()
            );
        }
        Err(e) => println!("MOCUS failed after {:?}: {e}", t0.elapsed()),
    }
}
