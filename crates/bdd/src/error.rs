use std::fmt;

/// Errors produced by the BDD engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BddError {
    /// The diagram exceeded the configured node budget.
    TooManyNodes {
        /// The configured budget.
        limit: usize,
    },
    /// A custom variable order did not cover every basic event exactly
    /// once.
    InvalidOrder {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::TooManyNodes { limit } => {
                write!(f, "BDD exceeded the node budget of {limit}")
            }
            BddError::InvalidOrder { reason } => write!(f, "invalid variable order: {reason}"),
        }
    }
}

impl std::error::Error for BddError {}
