use crate::error::BddError;
use sdft_ft::{Cutset, CutsetList, EventProbabilities, FaultTree, FxBuild, GateKind, NodeId};
use std::collections::HashMap;

pub(crate) type Ref = u32;

pub(crate) const FALSE: Ref = 0;
pub(crate) const TRUE: Ref = 1;
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    level: u32,
    low: Ref,
    high: Ref,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
}

/// Options for the BDD engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddOptions {
    /// Abort construction once this many BDD nodes exist.
    pub max_nodes: usize,
}

impl Default for BddOptions {
    fn default() -> Self {
        BddOptions {
            max_nodes: 20_000_000,
        }
    }
}

/// A reduced ordered BDD of a fault tree's top-gate function.
///
/// The diagram is built once from a [`FaultTree`]; afterwards it answers
/// exact probability queries ([`Bdd::top_probability`]) and extracts the
/// complete list of minimal cutsets ([`Bdd::minimal_cutsets`]).
///
/// Dynamic basic events are treated as opaque variables (their triggers
/// and chains are ignored), exactly like in MOCUS.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref, FxBuild>,
    apply_cache: HashMap<(Op, Ref, Ref), Ref, FxBuild>,
    /// level -> basic event.
    vars: Vec<NodeId>,
    root: Ref,
    max_nodes: usize,
    apply_hits: u64,
    apply_misses: u64,
}

impl Bdd {
    /// Build the BDD of `tree`'s top gate with a DFS variable order.
    ///
    /// # Errors
    ///
    /// Returns an error if the diagram exceeds the default node budget.
    pub fn new(tree: &FaultTree) -> Result<Self, BddError> {
        Self::with_options(tree, &BddOptions::default())
    }

    /// Build with explicit options.
    ///
    /// # Errors
    ///
    /// Returns an error if the diagram exceeds `options.max_nodes`.
    pub fn with_options(tree: &FaultTree, options: &BddOptions) -> Result<Self, BddError> {
        let order = dfs_order(tree);
        Self::with_order(tree, order, options)
    }

    /// Build with a caller-supplied variable order (a permutation of all
    /// basic events; earlier events are closer to the root).
    ///
    /// # Errors
    ///
    /// Returns an error if `order` is not a permutation of the tree's
    /// basic events or the diagram exceeds the node budget.
    pub fn with_order(
        tree: &FaultTree,
        order: Vec<NodeId>,
        options: &BddOptions,
    ) -> Result<Self, BddError> {
        let level_of = validate_order(tree, &order)?;

        let mut bdd = Bdd::empty(order, options.max_nodes);

        // Bottom-up construction: node ids are topological, so every
        // gate's inputs already have a function when we reach it.
        let mut func: Vec<Ref> = vec![FALSE; tree.len()];
        for id in tree.node_ids() {
            func[id.index()] = if tree.is_basic(id) {
                bdd.mk(level_of[&id], FALSE, TRUE)?
            } else {
                let inputs: Vec<Ref> = tree
                    .gate_inputs(id)
                    .iter()
                    .map(|i| func[i.index()])
                    .collect();
                match tree.gate_kind(id).expect("gate") {
                    GateKind::And => {
                        let mut acc = TRUE;
                        for f in inputs {
                            acc = bdd.apply(Op::And, acc, f)?;
                        }
                        acc
                    }
                    GateKind::Or => {
                        let mut acc = FALSE;
                        for f in inputs {
                            acc = bdd.apply(Op::Or, acc, f)?;
                        }
                        acc
                    }
                    GateKind::AtLeast(k) => bdd.atleast(k as usize, &inputs)?,
                }
            };
        }
        bdd.root = func[tree.top().index()];
        Ok(bdd)
    }

    /// An empty manager over the given variable order (terminals only,
    /// root = FALSE). The modular builder constructs functions into it
    /// region by region.
    pub(crate) fn empty(vars: Vec<NodeId>, max_nodes: usize) -> Self {
        Bdd {
            nodes: vec![
                Node {
                    level: TERMINAL_LEVEL,
                    low: FALSE,
                    high: FALSE,
                },
                Node {
                    level: TERMINAL_LEVEL,
                    low: TRUE,
                    high: TRUE,
                },
            ],
            unique: HashMap::default(),
            apply_cache: HashMap::default(),
            vars,
            root: FALSE,
            max_nodes,
            apply_hits: 0,
            apply_misses: 0,
        }
    }

    pub(crate) fn set_root(&mut self, root: Ref) {
        self.root = root;
    }

    /// Number of live nodes (including the two terminals).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables in the order.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Apply-cache `(hits, misses)` accumulated by this manager. A miss
    /// is any non-trivial `apply` that had to recurse; hits are served
    /// from the memo table.
    #[must_use]
    pub fn apply_cache_stats(&self) -> (u64, u64) {
        (self.apply_hits, self.apply_misses)
    }

    /// Whether the top function is constant true/false.
    #[must_use]
    pub fn is_constant(&self) -> Option<bool> {
        match self.root {
            FALSE => Some(false),
            TRUE => Some(true),
            _ => None,
        }
    }

    /// The exact top-event probability under `probs` (Shannon expansion
    /// with memoization). This is the exact `p(FT)` of §II, free of the
    /// rare-event approximation.
    #[must_use]
    pub fn top_probability(&self, probs: &EventProbabilities) -> f64 {
        self.top_probability_with(|event| probs.get(event))
    }

    /// The exact top-event probability with a caller-supplied variable
    /// probability function. This is what the modular engine uses to give
    /// pseudo-variables (nested modules) their computed probabilities.
    #[must_use]
    pub fn top_probability_with(&self, var_prob: impl Fn(NodeId) -> f64) -> f64 {
        let mut memo: HashMap<Ref, f64, FxBuild> = HashMap::default();
        memo.insert(FALSE, 0.0);
        memo.insert(TRUE, 1.0);
        self.probability_rec(self.root, &var_prob, &mut memo)
    }

    fn probability_rec(
        &self,
        f: Ref,
        var_prob: &impl Fn(NodeId) -> f64,
        memo: &mut HashMap<Ref, f64, FxBuild>,
    ) -> f64 {
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let node = self.nodes[f as usize];
        let p_var = var_prob(self.vars[node.level as usize]);
        let p_low = self.probability_rec(node.low, var_prob, memo);
        let p_high = self.probability_rec(node.high, var_prob, memo);
        let p = (1.0 - p_var) * p_low + p_var * p_high;
        memo.insert(f, p);
        p
    }

    /// The complete list of minimal cutsets of the top function, via
    /// Rauzy's `minsol` construction (sound for the coherent functions
    /// produced by fault trees).
    ///
    /// # Errors
    ///
    /// Returns an error if the intermediate diagrams exceed the node
    /// budget.
    pub fn minimal_cutsets(&mut self) -> Result<CutsetList, BddError> {
        let sol = self.minimal_solutions()?;
        let mut out = CutsetList::new();
        let mut path: Vec<NodeId> = Vec::new();
        self.enumerate_sets(sol, &mut path, &mut out);
        Ok(out)
    }

    /// The minsol family of the root as a set-family diagram, for lazy
    /// enumeration by the modular engine.
    pub(crate) fn minimal_solutions(&mut self) -> Result<Ref, BddError> {
        let mut minsol_cache: HashMap<Ref, Ref, FxBuild> = HashMap::default();
        let mut without_cache: HashMap<(Ref, Ref), Ref, FxBuild> = HashMap::default();
        let root = self.root;
        self.minsol(root, &mut minsol_cache, &mut without_cache)
    }

    /// `minsol(f)`: the antichain of minimal solutions of a monotone `f`.
    fn minsol(
        &mut self,
        f: Ref,
        minsol_cache: &mut HashMap<Ref, Ref, FxBuild>,
        without_cache: &mut HashMap<(Ref, Ref), Ref, FxBuild>,
    ) -> Result<Ref, BddError> {
        if f == FALSE || f == TRUE {
            return Ok(f);
        }
        if let Some(&r) = minsol_cache.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f as usize];
        let low = self.minsol(node.low, minsol_cache, without_cache)?;
        let high0 = self.minsol(node.high, minsol_cache, without_cache)?;
        let high = self.without(high0, low, without_cache)?;
        let result = self.mk_set(node.level, low, high)?;
        minsol_cache.insert(f, result);
        Ok(result)
    }

    /// `without(f, g)`: the sets of family `f` that are not supersets of
    /// (or equal to) any set of family `g`. Families are read structurally:
    /// a high edge includes the variable, a low or skipped edge excludes
    /// it.
    fn without(
        &mut self,
        f: Ref,
        g: Ref,
        cache: &mut HashMap<(Ref, Ref), Ref, FxBuild>,
    ) -> Result<Ref, BddError> {
        if f == FALSE || g == TRUE || f == g {
            return Ok(FALSE);
        }
        if g == FALSE {
            return Ok(f);
        }
        if f == TRUE {
            // f = {∅}; ∅ is a superset only of ∅, which is in g iff the
            // all-low path of g reaches TRUE.
            let g_low = self.nodes[g as usize].low;
            return self.without(TRUE, g_low, cache);
        }
        if let Some(&r) = cache.get(&(f, g)) {
            return Ok(r);
        }
        let fn_ = self.nodes[f as usize];
        let gn = self.nodes[g as usize];
        let result = if fn_.level < gn.level {
            // Sets of g never contain f's top variable here.
            let low = self.without(fn_.low, g, cache)?;
            let high = self.without(fn_.high, g, cache)?;
            self.mk_set(fn_.level, low, high)?
        } else if gn.level < fn_.level {
            // Sets of g that contain gn's variable cannot be subsets of
            // f's sets (which never contain it); only gn.low matters.
            self.without(f, gn.low, cache)?
        } else {
            let low = self.without(fn_.low, gn.low, cache)?;
            let partial = self.without(fn_.high, gn.low, cache)?;
            let high = self.without(partial, gn.high, cache)?;
            self.mk_set(fn_.level, low, high)?
        };
        cache.insert((f, g), result);
        Ok(result)
    }

    fn enumerate_sets(&self, f: Ref, path: &mut Vec<NodeId>, out: &mut CutsetList) {
        if f == FALSE {
            return;
        }
        if f == TRUE {
            out.push(Cutset::new(path.iter().copied()));
            return;
        }
        let node = self.nodes[f as usize];
        self.enumerate_sets(node.low, path, out);
        path.push(self.vars[node.level as usize]);
        self.enumerate_sets(node.high, path, out);
        path.pop();
    }

    /// Walk every set of the family rooted at `f` in the deterministic
    /// low-before-high order, with branch-and-bound pruning: `weight_of`
    /// maps a variable to an optimistic `(probability, order)`
    /// contribution (for a plain event, its probability and 1; for a
    /// pseudo-variable, the best kept expansion's probability and the
    /// smallest kept order). Including a variable multiplies the path's
    /// probability bound and adds to its order bound; a branch is pruned
    /// once no extension can beat `bounds` — sound for antichain
    /// enumeration under a cutoff because every extension only lowers
    /// the probability and raises the order. `visit` receives the
    /// variables on the current high-path; returning `false` aborts the
    /// walk, and the walk's own return mirrors that. With empty bounds
    /// this is a plain exhaustive walk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_each_set_pruned(
        &self,
        f: Ref,
        path: &mut Vec<NodeId>,
        prob_bound: f64,
        order_bound: usize,
        weight_of: &impl Fn(NodeId) -> (f64, usize),
        bounds: &SetBounds,
        visit: &mut impl FnMut(&[NodeId]) -> bool,
    ) -> bool {
        if f == FALSE {
            return true;
        }
        if f == TRUE {
            return visit(path);
        }
        let node = self.nodes[f as usize];
        if !self.for_each_set_pruned(
            node.low,
            path,
            prob_bound,
            order_bound,
            weight_of,
            bounds,
            visit,
        ) {
            return false;
        }
        let var = self.vars[node.level as usize];
        let (weight, order) = weight_of(var);
        let high_prob = prob_bound * weight;
        let high_order = order_bound.saturating_add(order);
        if bounds.prune_below.is_some_and(|c| high_prob <= c)
            || bounds.max_order.is_some_and(|m| high_order > m)
        {
            return true;
        }
        path.push(var);
        let keep_going = self.for_each_set_pruned(
            node.high, path, high_prob, high_order, weight_of, bounds, visit,
        );
        path.pop();
        keep_going
    }

    /// At-least-k over arbitrary input functions via a threshold network:
    /// `c[j]` = "at least j of the inputs processed so far hold".
    pub(crate) fn atleast(&mut self, k: usize, inputs: &[Ref]) -> Result<Ref, BddError> {
        let mut counts: Vec<Ref> = vec![FALSE; k + 1];
        counts[0] = TRUE;
        for &input in inputs {
            for j in (1..=k).rev() {
                let took = self.apply(Op::And, counts[j - 1], input)?;
                counts[j] = self.apply(Op::Or, counts[j], took)?;
            }
        }
        Ok(counts[k])
    }

    pub(crate) fn apply(&mut self, op: Op, f: Ref, g: Ref) -> Result<Ref, BddError> {
        match (op, f, g) {
            (Op::And, FALSE, _) | (Op::And, _, FALSE) => return Ok(FALSE),
            (Op::And, TRUE, x) | (Op::And, x, TRUE) => return Ok(x),
            (Op::Or, TRUE, _) | (Op::Or, _, TRUE) => return Ok(TRUE),
            (Op::Or, FALSE, x) | (Op::Or, x, FALSE) => return Ok(x),
            _ => {}
        }
        if f == g {
            return Ok(f);
        }
        let key = (op, f.min(g), f.max(g));
        if let Some(&r) = self.apply_cache.get(&key) {
            self.apply_hits += 1;
            return Ok(r);
        }
        self.apply_misses += 1;
        let fnode = self.nodes[f as usize];
        let gnode = self.nodes[g as usize];
        let level = fnode.level.min(gnode.level);
        let (f_low, f_high) = if fnode.level == level {
            (fnode.low, fnode.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if gnode.level == level {
            (gnode.low, gnode.high)
        } else {
            (g, g)
        };
        let low = self.apply(op, f_low, g_low)?;
        let high = self.apply(op, f_high, g_high)?;
        let result = self.mk(level, low, high)?;
        self.apply_cache.insert(key, result);
        Ok(result)
    }

    /// Hash-consed node constructor with the standard (function) reduction
    /// rule `low == high → low`.
    pub(crate) fn mk(&mut self, level: u32, low: Ref, high: Ref) -> Result<Ref, BddError> {
        if low == high {
            return Ok(low);
        }
        let node = Node { level, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.max_nodes {
            return Err(BddError::TooManyNodes {
                limit: self.max_nodes,
            });
        }
        let r = Ref::try_from(self.nodes.len()).map_err(|_| BddError::TooManyNodes {
            limit: self.max_nodes,
        })?;
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }

    /// Node constructor for set families: an empty high branch adds
    /// nothing to the family, so the node collapses to its low branch
    /// (zero-suppressed-style reduction).
    fn mk_set(&mut self, level: u32, low: Ref, high: Ref) -> Result<Ref, BddError> {
        if high == FALSE {
            return Ok(low);
        }
        if low == high {
            // Cannot happen for antichains (s and s∪{x} would both be
            // members); keep the node anyway for structural safety.
            debug_assert!(low == FALSE || low == TRUE, "antichain violation");
        }
        let node = Node { level, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.max_nodes {
            return Err(BddError::TooManyNodes {
                limit: self.max_nodes,
            });
        }
        let r = Ref::try_from(self.nodes.len()).map_err(|_| BddError::TooManyNodes {
            limit: self.max_nodes,
        })?;
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }
}

/// Pruning bounds for [`Bdd::for_each_set_pruned`]: branches whose
/// optimistic probability falls to `prune_below` or less, or whose
/// minimum order exceeds `max_order`, are skipped wholesale.
pub(crate) struct SetBounds {
    pub(crate) prune_below: Option<f64>,
    pub(crate) max_order: Option<usize>,
}

/// Validate a user-supplied order: every entry must be an in-range basic
/// event of `tree`, appear exactly once, and the order must cover every
/// basic event. Returns the event → level map on success.
fn validate_order(tree: &FaultTree, order: &[NodeId]) -> Result<HashMap<NodeId, u32>, BddError> {
    let mut level_of: HashMap<NodeId, u32> = HashMap::new();
    for (level, &event) in order.iter().enumerate() {
        if event.index() >= tree.len() {
            return Err(BddError::InvalidOrder {
                reason: format!(
                    "node id {} is out of range for a tree of {} nodes",
                    event.index(),
                    tree.len()
                ),
            });
        }
        if !tree.is_basic(event) {
            return Err(BddError::InvalidOrder {
                reason: format!("{} is not a basic event", tree.name(event)),
            });
        }
        if level_of.insert(event, level as u32).is_some() {
            return Err(BddError::InvalidOrder {
                reason: format!("{} appears twice", tree.name(event)),
            });
        }
    }
    let events: Vec<NodeId> = tree.basic_events().collect();
    if order.len() != events.len() {
        let missing: Vec<&str> = events
            .iter()
            .filter(|e| !level_of.contains_key(e))
            .map(|&e| tree.name(e))
            .collect();
        let shown = missing[..missing.len().min(3)].join(", ");
        let ellipsis = if missing.len() > 3 { ", …" } else { "" };
        return Err(BddError::InvalidOrder {
            reason: format!(
                "order has {} entries for {} basic events (missing: {shown}{ellipsis})",
                order.len(),
                events.len(),
            ),
        });
    }
    Ok(level_of)
}

/// Default variable order: first occurrence in a depth-first traversal
/// from the top gate, with unreachable events appended.
fn dfs_order(tree: &FaultTree) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; tree.len()];
    let mut stack = vec![tree.top()];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        if tree.is_basic(id) {
            order.push(id);
        } else {
            // Push in reverse so the first input is visited first.
            for &input in tree.gate_inputs(id).iter().rev() {
                stack.push(input);
            }
        }
    }
    for event in tree.basic_events() {
        if !seen[event.index()] {
            order.push(event);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn sorted_names(tree: &FaultTree, list: &CutsetList) -> Vec<Vec<String>> {
        let mut v: Vec<Vec<String>> = list
            .iter()
            .map(|c| {
                c.events()
                    .iter()
                    .map(|&e| tree.name(e).to_owned())
                    .collect()
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn exact_probability_matches_enumeration() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let bdd = Bdd::new(&t).unwrap();
        let p = bdd.top_probability(&probs);
        let exact = t.exact_static_probability().unwrap();
        assert!((p - exact).abs() < 1e-15, "{p} vs {exact}");
    }

    #[test]
    fn minimal_cutsets_match_example7() {
        let t = example1();
        let mut bdd = Bdd::new(&t).unwrap();
        let mcs = bdd.minimal_cutsets().unwrap();
        assert_eq!(
            sorted_names(&t, &mcs),
            vec![
                vec!["a".to_owned(), "c".to_owned()],
                vec!["a".to_owned(), "d".to_owned()],
                vec!["b".to_owned(), "c".to_owned()],
                vec!["b".to_owned(), "d".to_owned()],
                vec!["e".to_owned()],
            ]
        );
    }

    #[test]
    fn atleast_probability_is_binomial() {
        let mut b = FaultTreeBuilder::new();
        let p = 0.3;
        let events: Vec<_> = (0..4)
            .map(|i| b.static_event(&format!("e{i}"), p).unwrap())
            .collect();
        let g = b.atleast("g", 2, events).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let bdd = Bdd::new(&t).unwrap();
        let got = bdd.top_probability(&probs);
        // P[X >= 2], X ~ Binomial(4, 0.3).
        let q: f64 = 1.0 - p;
        let exact = 1.0 - q.powi(4) - 4.0 * p * q.powi(3);
        assert!((got - exact).abs() < 1e-12);
    }

    #[test]
    fn constant_functions_are_detected() {
        // AND(x, x) is x; OR over one event likewise — not constant.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.5).unwrap();
        let g = b.and("g", [x, x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let bdd = Bdd::new(&t).unwrap();
        assert_eq!(bdd.is_constant(), None);
        assert_eq!(bdd.node_count(), 3); // two terminals + one variable
    }

    #[test]
    fn shared_events_collapse() {
        // top = OR(AND(x,y), AND(x,y)) — both branches identical.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.5).unwrap();
        let y = b.static_event("y", 0.5).unwrap();
        let g1 = b.and("g1", [x, y]).unwrap();
        let g2 = b.and("g2", [y, x]).unwrap();
        let top = b.or("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mut bdd = Bdd::new(&t).unwrap();
        let mcs = bdd.minimal_cutsets().unwrap();
        assert_eq!(mcs.len(), 1);
        assert_eq!(mcs.get(0).unwrap().order(), 2);
    }

    #[test]
    fn custom_order_changes_nothing_semantically() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mut order: Vec<NodeId> = t.basic_events().collect();
        order.reverse();
        let bdd = Bdd::with_order(&t, order, &BddOptions::default()).unwrap();
        let p = bdd.top_probability(&probs);
        let exact = t.exact_static_probability().unwrap();
        assert!((p - exact).abs() < 1e-15);
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let t = example1();
        let opts = BddOptions::default();
        let a = t.node_by_name("a").unwrap();
        let err = Bdd::with_order(&t, vec![a], &opts);
        assert!(matches!(err, Err(BddError::InvalidOrder { .. })));
        let events: Vec<NodeId> = t.basic_events().collect();
        let mut dup = events.clone();
        dup[1] = dup[0];
        assert!(matches!(
            Bdd::with_order(&t, dup, &opts),
            Err(BddError::InvalidOrder { .. })
        ));
        let mut with_gate = events;
        with_gate[0] = t.node_by_name("pumps").unwrap();
        assert!(matches!(
            Bdd::with_order(&t, with_gate, &opts),
            Err(BddError::InvalidOrder { .. })
        ));
    }

    #[test]
    fn out_of_range_order_entries_are_rejected_not_panicking() {
        let t = example1();
        // An id minted by a different, larger tree: out of range for `t`.
        let mut b = FaultTreeBuilder::new();
        let foreign: Vec<NodeId> = (0..20)
            .map(|i| b.static_event(&format!("x{i}"), 0.1).unwrap())
            .collect();
        let g = b.or("g", foreign.iter().copied()).unwrap();
        b.top(g);
        b.build().unwrap();
        let mut order: Vec<NodeId> = t.basic_events().collect();
        order[0] = foreign[19];
        let err = Bdd::with_order(&t, order, &BddOptions::default()).unwrap_err();
        match err {
            BddError::InvalidOrder { reason } => {
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected InvalidOrder, got {other:?}"),
        }
    }

    #[test]
    fn short_orders_name_the_missing_events() {
        let t = example1();
        let order: Vec<NodeId> = t.basic_events().take(2).collect();
        let err = Bdd::with_order(&t, order, &BddOptions::default()).unwrap_err();
        match err {
            BddError::InvalidOrder { reason } => {
                assert!(reason.contains("missing"), "{reason}");
                assert!(
                    reason.contains('c'),
                    "should name a missing event: {reason}"
                );
            }
            other => panic!("expected InvalidOrder, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut b = FaultTreeBuilder::new();
        // A 2-of-20 structure has a quadratic but non-trivial BDD.
        let events: Vec<_> = (0..20)
            .map(|i| b.static_event(&format!("e{i}"), 0.1).unwrap())
            .collect();
        let g = b.atleast("g", 10, events).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let err = Bdd::with_options(&t, &BddOptions { max_nodes: 16 });
        assert!(matches!(err, Err(BddError::TooManyNodes { limit: 16 })));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;

    #[test]
    fn minsol_on_or_of_and_is_exactly_two_sets() {
        // f = x ∨ (y ∧ z): naive path enumeration on the function BDD
        // would also surface {x, y} style implicants; minsol must not.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let inner = b.and("inner", [y, z]).unwrap();
        let top = b.or("top", [x, inner]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mut bdd = Bdd::new(&t).unwrap();
        let mcs = bdd.minimal_cutsets().unwrap();
        assert_eq!(mcs.len(), 2);
        assert!(mcs.contains_set(&sdft_ft::Cutset::new([x])));
        assert!(mcs.contains_set(&sdft_ft::Cutset::new([y, z])));
    }

    #[test]
    fn deep_alternating_tree_stays_small() {
        // A balanced alternating AND/OR tree over 32 distinct events has
        // a linear-size BDD in the DFS order.
        let mut b = FaultTreeBuilder::new();
        let mut layer: Vec<NodeId> = (0..32)
            .map(|i| b.static_event(&format!("e{i}"), 0.3).unwrap())
            .collect();
        let mut and_layer = true;
        let mut g = 0;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    g += 1;
                    if and_layer {
                        b.and(&format!("g{g}"), pair.iter().copied()).unwrap()
                    } else {
                        b.or(&format!("g{g}"), pair.iter().copied()).unwrap()
                    }
                })
                .collect();
            and_layer = !and_layer;
        }
        b.top(layer[0]);
        let t = b.build().unwrap();
        let bdd = Bdd::new(&t).unwrap();
        assert!(bdd.node_count() < 200, "nodes: {}", bdd.node_count());
        let probs = EventProbabilities::from_static(&t).unwrap();
        let p = bdd.top_probability(&probs);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn repeated_minimal_cutsets_calls_are_consistent() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.2).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let g = b.atleast("g", 1, [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let mut bdd = Bdd::new(&t).unwrap();
        let a = bdd.minimal_cutsets().unwrap();
        let b2 = bdd.minimal_cutsets().unwrap();
        assert_eq!(a, b2);
    }
}
