//! Modular BDD analysis: one ROBDD per independent module.
//!
//! [`modules`](sdft_ft::modules) finds the gates whose subtrees share no
//! node with the rest of the tree (Dutuit & Rauzy 1996). Each such
//! subtree can be analyzed in isolation and re-enters its parent as a
//! single *pseudo-variable*, which keeps every individual diagram small:
//! the monolithic BDD of a 50k-gate industrial tree is hopeless, but its
//! modules rarely exceed a few hundred variables each.
//!
//! Soundness of the composition rests on the modules being
//! event-disjoint:
//!
//! * **probability** — a pseudo-variable is an independent Boolean with
//!   the module's exact probability, so Shannon expansion composes
//!   bottom-up without approximation;
//! * **minimal cutsets** — substituting each pseudo-variable occurrence
//!   in a minimal solution by any minimal cutset of its module (cartesian
//!   expansion) yields exactly the minimal cutsets of the composed
//!   function, because no substitution can collide with or subsume
//!   events from a sibling branch.

use crate::error::BddError;
use crate::manager::{Bdd, Op, Ref, SetBounds, FALSE, TRUE};
use sdft_ft::{
    modules, Cutset, CutsetList, EventProbabilities, FaultTree, FxBuild, GateKind, NodeId,
};
use std::collections::HashMap;

/// Limits pushed *into* the minsol enumeration as branch-and-bound
/// pruning, mirroring the MOCUS cutoff semantics (keep cutsets with
/// probability strictly above `cutoff` and order at most `max_order`).
///
/// Pruning is conservative: every cutset that passes the limits is
/// guaranteed to be delivered, but cutsets within a relative `1e-9` of
/// the cutoff may be delivered as well (the enumeration accumulates
/// probability products in a different association order than
/// [`Cutset::probability_with`], so the exact boundary is left to the
/// caller's own final filter). Without limits the full antichain is
/// enumerated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CutsetLimits {
    /// Drop cutsets whose probability is at or below this value.
    pub cutoff: Option<f64>,
    /// Drop cutsets with more events than this.
    pub max_order: Option<usize>,
}

/// The margin that keeps internal pruning strictly conservative against
/// floating-point association differences (see [`CutsetLimits`]).
const PRUNE_SLACK: f64 = 1e-9;

/// One fully expanded (plain-event) minimal cutset of a nested module,
/// with its probability and order under the enumeration's probe.
struct ExpandedSet {
    events: Vec<NodeId>,
    prob: f64,
    order: usize,
}

/// A nested module's kept cutsets, best-first, plus the optimistic
/// bounds its pseudo-variable contributes to an enclosing path.
struct Expansion {
    /// Kept sets sorted by descending probability (stable, so the
    /// unlimited enumeration preserves the walk order).
    sets: Vec<ExpandedSet>,
    /// Largest kept probability (`0.0` when nothing survived — any path
    /// through the pseudo-variable is then dead under a cutoff).
    max_prob: f64,
    /// Smallest kept order (`usize::MAX` when nothing survived).
    min_order: usize,
}

/// Options for the modular BDD engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularBddOptions {
    /// Abort once this many BDD nodes exist *in total* across all
    /// module diagrams (shared budget).
    pub max_nodes: usize,
    /// Modules whose region (gates + variables) is at least this large
    /// use the weight/depth variable order instead of plain DFS order.
    pub weighted_order_threshold: usize,
}

impl Default for ModularBddOptions {
    fn default() -> Self {
        ModularBddOptions {
            max_nodes: 20_000_000,
            weighted_order_threshold: 64,
        }
    }
}

/// Per-module construction statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleStats {
    /// The module's root gate.
    pub gate: NodeId,
    /// BDD nodes of the module's diagram (including terminals).
    pub nodes: usize,
    /// Variables of the diagram: own basic events plus nested-module
    /// pseudo-variables.
    pub variables: usize,
    /// Whether the weight/depth order was chosen over plain DFS order.
    pub weighted_order: bool,
}

/// Aggregate statistics of a modular construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModularBddStats {
    /// Number of independent modules (the top counts as one).
    pub modules: usize,
    /// Total BDD nodes across all module diagrams.
    pub total_nodes: usize,
    /// Largest single module diagram.
    pub max_module_nodes: usize,
    /// Modules that used the weight/depth order.
    pub weighted_orders: usize,
    /// Apply-cache hits summed over all module managers.
    pub apply_hits: u64,
    /// Apply-cache misses summed over all module managers.
    pub apply_misses: u64,
    /// Per-module detail, in bottom-up (id) order; the last entry is the
    /// top module.
    pub per_module: Vec<ModuleStats>,
}

struct Module {
    gate: NodeId,
    bdd: Bdd,
    weighted: bool,
}

/// A modular BDD of a fault tree: one diagram per independent module,
/// composed through pseudo-variables.
///
/// Like [`Bdd`], dynamic basic events are opaque variables; trigger
/// edges only influence module boundaries (via [`modules`]).
pub struct ModularBdd {
    mods: Vec<Module>,
    /// gate id → index into `mods` (only module gates).
    index_of: HashMap<NodeId, usize, FxBuild>,
}

impl ModularBdd {
    /// Build one BDD per module of `tree` with default options.
    ///
    /// # Errors
    ///
    /// Returns an error if the diagrams exceed the shared node budget.
    pub fn new(tree: &FaultTree) -> Result<Self, BddError> {
        Self::with_options(tree, &ModularBddOptions::default())
    }

    /// Build with explicit options.
    ///
    /// # Errors
    ///
    /// Returns an error if the diagrams exceed the shared node budget.
    pub fn with_options(tree: &FaultTree, options: &ModularBddOptions) -> Result<Self, BddError> {
        let module_gates = modules(tree);
        let mut index_of: HashMap<NodeId, usize, FxBuild> = HashMap::default();
        for (i, &g) in module_gates.iter().enumerate() {
            index_of.insert(g, i);
        }
        let mut mods: Vec<Module> = Vec::with_capacity(module_gates.len());
        let mut used_nodes = 0usize;
        // Ids are topological, so iterating in id order builds every
        // nested module before the module that references it.
        for &gate in &module_gates {
            let region = collect_region(tree, gate, &index_of);
            let weighted = region.size >= options.weighted_order_threshold;
            let order = if weighted {
                weighted_order(&region)
            } else {
                region.vars.clone()
            };
            let budget = options.max_nodes.saturating_sub(used_nodes).max(2);
            let bdd = build_module(tree, &region, order, budget)?;
            used_nodes += bdd.node_count();
            mods.push(Module {
                gate,
                bdd,
                weighted,
            });
        }
        Ok(ModularBdd { mods, index_of })
    }

    /// Number of modules.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.mods.len()
    }

    /// Construction statistics (node counts, ordering choices, apply
    /// cache behavior).
    #[must_use]
    pub fn stats(&self) -> ModularBddStats {
        let mut stats = ModularBddStats {
            modules: self.mods.len(),
            ..ModularBddStats::default()
        };
        for m in &self.mods {
            let nodes = m.bdd.node_count();
            let (hits, misses) = m.bdd.apply_cache_stats();
            stats.total_nodes += nodes;
            stats.max_module_nodes = stats.max_module_nodes.max(nodes);
            stats.weighted_orders += usize::from(m.weighted);
            stats.apply_hits += hits;
            stats.apply_misses += misses;
            stats.per_module.push(ModuleStats {
                gate: m.gate,
                nodes,
                variables: m.bdd.var_count(),
                weighted_order: m.weighted,
            });
        }
        stats
    }

    /// The exact top-event probability under `probs`: per-module Shannon
    /// expansion composed bottom-up, free of cutoffs and of the
    /// rare-event approximation.
    #[must_use]
    pub fn exact_probability(&self, probs: &EventProbabilities) -> f64 {
        self.exact_probability_with(|event| probs.get(event))
    }

    /// The exact top-event probability with a caller-supplied basic event
    /// probability function.
    #[must_use]
    pub fn exact_probability_with(&self, var_prob: impl Fn(NodeId) -> f64) -> f64 {
        let mut module_prob: HashMap<NodeId, f64, FxBuild> = HashMap::default();
        let mut top = 0.0;
        for m in &self.mods {
            let p = m.bdd.top_probability_with(|v| {
                module_prob.get(&v).copied().unwrap_or_else(|| var_prob(v))
            });
            module_prob.insert(m.gate, p);
            top = p;
        }
        top
    }

    /// The complete list of minimal cutsets, identical (as a set) to the
    /// monolithic [`Bdd::minimal_cutsets`].
    ///
    /// # Errors
    ///
    /// Returns an error if the minsol diagrams exceed the node budget.
    pub fn minimal_cutsets(&mut self) -> Result<CutsetList, BddError> {
        let mut out = CutsetList::new();
        self.stream_minimal_cutsets(usize::MAX, |batch| {
            for c in batch.drain(..) {
                out.push(c);
            }
            true
        })?;
        Ok(out)
    }

    /// Stream the complete minimal cutset antichain in deterministic
    /// order, delivering batches of (at least) `batch_size` through
    /// `deliver`. The final batch may be smaller. `deliver` returning
    /// `false` aborts the enumeration; the function then returns
    /// `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the minsol diagrams exceed the node budget.
    pub fn stream_minimal_cutsets(
        &mut self,
        batch_size: usize,
        deliver: impl FnMut(&mut Vec<Cutset>) -> bool,
    ) -> Result<bool, BddError> {
        self.stream_minimal_cutsets_bounded(batch_size, |_| 1.0, &CutsetLimits::default(), deliver)
    }

    /// [`ModularBdd::stream_minimal_cutsets`] with the cutoff and order
    /// limits pushed *into* the enumeration as branch-and-bound pruning
    /// (see [`CutsetLimits`] for the conservative-boundary contract).
    ///
    /// This is what makes the exact backend usable on industrial trees:
    /// their full antichain is combinatorially huge, but the part above
    /// any practical cutoff is small, and extending a cutset only lowers
    /// its probability and raises its order — so whole branches of the
    /// minsol walk and of the nested-module cartesian expansion can be
    /// discarded the moment their optimistic bound falls below the
    /// cutoff.
    ///
    /// Minimality is established *inside* the backend: each nested module
    /// is fully solved before the top module's solutions are expanded, so
    /// every delivered cutset is already minimal and no cross-batch
    /// subsumption is ever needed.
    ///
    /// # Errors
    ///
    /// Returns an error if the minsol diagrams exceed the node budget.
    pub fn stream_minimal_cutsets_bounded(
        &mut self,
        batch_size: usize,
        prob_of: impl Fn(NodeId) -> f64,
        limits: &CutsetLimits,
        mut deliver: impl FnMut(&mut Vec<Cutset>) -> bool,
    ) -> Result<bool, BddError> {
        let bounds = SetBounds {
            prune_below: limits.cutoff.map(|c| c * (1.0 - PRUNE_SLACK)),
            max_order: limits.max_order,
        };
        // Fully expand every nested module bottom-up; the top module is
        // then enumerated lazily.
        let mut expanded: HashMap<NodeId, Expansion, FxBuild> = HashMap::default();
        let last = self.mods.len() - 1;
        for i in 0..last {
            let sol = self.mods[i].bdd.minimal_solutions()?;
            let gate = self.mods[i].gate;
            let mut sets: Vec<ExpandedSet> = Vec::new();
            let mut path = Vec::new();
            self.mods[i].bdd.for_each_set_pruned(
                sol,
                &mut path,
                1.0,
                0,
                &|v| pseudo_weight(v, &expanded, &prob_of),
                &bounds,
                &mut |set| {
                    expand_set(
                        set,
                        &expanded,
                        &prob_of,
                        &bounds,
                        &mut |events, prob, order| {
                            sets.push(ExpandedSet {
                                events: events.to_vec(),
                                prob,
                                order,
                            });
                        },
                    );
                    true
                },
            );
            // Best-first, so enclosing expansions can stop a candidate
            // loop as soon as the probability bound drops out. The sort
            // is stable and unlimited runs give every set probability
            // 1.0, preserving the walk order exactly.
            sets.sort_by(|a, b| b.prob.total_cmp(&a.prob));
            let max_prob = sets.first().map_or(0.0, |s| s.prob);
            let min_order = sets.iter().map(|s| s.order).min().unwrap_or(usize::MAX);
            expanded.insert(
                gate,
                Expansion {
                    sets,
                    max_prob,
                    min_order,
                },
            );
        }

        let sol = self.mods[last].bdd.minimal_solutions()?;
        let mut buffer: Vec<Cutset> = Vec::new();
        let mut path = Vec::new();
        let completed = self.mods[last].bdd.for_each_set_pruned(
            sol,
            &mut path,
            1.0,
            0,
            &|v| pseudo_weight(v, &expanded, &prob_of),
            &bounds,
            &mut |set| {
                expand_set(set, &expanded, &prob_of, &bounds, &mut |events, _, _| {
                    buffer.push(Cutset::new(events.iter().copied()));
                });
                if buffer.len() >= batch_size {
                    deliver(&mut buffer)
                } else {
                    true
                }
            },
        );
        if !completed {
            return Ok(false);
        }
        if !buffer.is_empty() && !deliver(&mut buffer) {
            return Ok(false);
        }
        Ok(true)
    }

    /// Whether `id` is one of the module root gates.
    #[must_use]
    pub fn is_module(&self, id: NodeId) -> bool {
        self.index_of.contains_key(&id)
    }
}

/// The optimistic `(probability, order)` contribution of including a
/// minsol variable on a path: a plain event contributes its own
/// probability and one event; a pseudo-variable contributes its module's
/// best kept probability and smallest kept order.
fn pseudo_weight(
    v: NodeId,
    expanded: &HashMap<NodeId, Expansion, FxBuild>,
    prob_of: &impl Fn(NodeId) -> f64,
) -> (f64, usize) {
    match expanded.get(&v) {
        Some(exp) => (exp.max_prob, exp.min_order),
        None => (prob_of(v), 1),
    }
}

/// Expand one minsol set (own events + pseudo-variables) into plain
/// event sets by cartesian product over the nested modules' expansions,
/// pruning combinations that cannot pass `bounds`. Emits each surviving
/// set with its probability and order; first pseudo-variable slowest, so
/// the expansion order is deterministic.
fn expand_set(
    set: &[NodeId],
    expanded: &HashMap<NodeId, Expansion, FxBuild>,
    prob_of: &impl Fn(NodeId) -> f64,
    bounds: &SetBounds,
    emit: &mut impl FnMut(&[NodeId], f64, usize),
) {
    let mut own: Vec<NodeId> = Vec::with_capacity(set.len());
    let mut pseudo: Vec<&Expansion> = Vec::new();
    for &v in set {
        match expanded.get(&v) {
            Some(exp) => pseudo.push(exp),
            None => own.push(v),
        }
    }
    let mut own_prob = 1.0;
    for &e in &own {
        own_prob *= prob_of(e);
    }
    let own_order = own.len();
    if pseudo.is_empty() {
        if bounds.prune_below.is_none_or(|c| own_prob > c)
            && bounds.max_order.is_none_or(|m| own_order <= m)
        {
            emit(&own, own_prob, own_order);
        }
        return;
    }
    // Optimistic bounds over the not-yet-chosen suffix of pseudo
    // variables, for early loop exits inside the recursion.
    let n = pseudo.len();
    let mut suffix_prob = vec![1.0; n + 1];
    let mut suffix_order = vec![0usize; n + 1];
    for i in (0..n).rev() {
        suffix_prob[i] = suffix_prob[i + 1] * pseudo[i].max_prob;
        suffix_order[i] = suffix_order[i + 1].saturating_add(pseudo[i].min_order);
    }
    let mut scratch = own;
    expand_rec(
        &pseudo,
        &suffix_prob,
        &suffix_order,
        bounds,
        0,
        own_prob,
        own_order,
        &mut scratch,
        emit,
    );
}

/// One level of the pruned cartesian product: try this pseudo-variable's
/// kept sets best-first and stop the loop once even the optimistic
/// remainder cannot clear the probability bound.
#[allow(clippy::too_many_arguments)]
fn expand_rec(
    pseudo: &[&Expansion],
    suffix_prob: &[f64],
    suffix_order: &[usize],
    bounds: &SetBounds,
    depth: usize,
    prob: f64,
    order: usize,
    scratch: &mut Vec<NodeId>,
    emit: &mut impl FnMut(&[NodeId], f64, usize),
) {
    if depth == pseudo.len() {
        emit(scratch, prob, order);
        return;
    }
    for s in &pseudo[depth].sets {
        let p = prob * s.prob;
        if bounds
            .prune_below
            .is_some_and(|c| p * suffix_prob[depth + 1] <= c)
        {
            // Sets are sorted by descending probability: the rest of
            // this loop can only do worse.
            break;
        }
        let o = order.saturating_add(s.order);
        if bounds
            .max_order
            .is_some_and(|m| o.saturating_add(suffix_order[depth + 1]) > m)
        {
            // Order is not monotone under the probability sort, so a
            // too-large candidate does not end the loop.
            continue;
        }
        let len = scratch.len();
        scratch.extend_from_slice(&s.events);
        expand_rec(
            pseudo,
            suffix_prob,
            suffix_order,
            bounds,
            depth + 1,
            p,
            o,
            scratch,
            emit,
        );
        scratch.truncate(len);
    }
}

/// A module's region: everything reachable from its root gate without
/// descending into nested modules.
struct Region {
    root: NodeId,
    /// Region gates in id (topological) order, excluding nested module
    /// roots, including the region root itself.
    gates: Vec<NodeId>,
    /// Variables (own basic events + nested module pseudo-variables) in
    /// DFS first-occurrence order.
    vars: Vec<NodeId>,
    /// Shallowest occurrence depth per variable, parallel to `vars`.
    min_depth: Vec<u32>,
    /// Edge reference count per variable, parallel to `vars`.
    occurrences: Vec<u32>,
    /// Gates + variables, the size used for the ordering decision.
    size: usize,
}

fn collect_region(
    tree: &FaultTree,
    root: NodeId,
    index_of: &HashMap<NodeId, usize, FxBuild>,
) -> Region {
    let mut var_pos: HashMap<NodeId, usize, FxBuild> = HashMap::default();
    let mut region = Region {
        root,
        gates: Vec::new(),
        vars: Vec::new(),
        min_depth: Vec::new(),
        occurrences: Vec::new(),
        size: 0,
    };
    let mut seen_gates: HashMap<NodeId, (), FxBuild> = HashMap::default();
    // DFS with explicit depth; inputs pushed in reverse so the first
    // input is visited first (matching the monolithic `dfs_order`).
    let mut stack: Vec<(NodeId, u32)> = vec![(root, 0)];
    while let Some((id, depth)) = stack.pop() {
        let is_var = tree.is_basic(id) || (id != root && index_of.contains_key(&id));
        if is_var {
            match var_pos.get(&id) {
                Some(&pos) => {
                    region.occurrences[pos] += 1;
                    region.min_depth[pos] = region.min_depth[pos].min(depth);
                }
                None => {
                    var_pos.insert(id, region.vars.len());
                    region.vars.push(id);
                    region.min_depth.push(depth);
                    region.occurrences.push(1);
                }
            }
            continue;
        }
        if seen_gates.insert(id, ()).is_some() {
            continue;
        }
        region.gates.push(id);
        for &input in tree.gate_inputs(id).iter().rev() {
            stack.push((input, depth + 1));
        }
    }
    region.gates.sort_unstable();
    region.size = region.gates.len() + region.vars.len();
    region
}

/// The weight/depth order for large modules: shallow, frequently
/// referenced variables first (they dominate the function's shape), DFS
/// position as the deterministic tiebreak.
fn weighted_order(region: &Region) -> Vec<NodeId> {
    let mut idx: Vec<usize> = (0..region.vars.len()).collect();
    idx.sort_by_key(|&i| {
        (
            region.min_depth[i],
            std::cmp::Reverse(region.occurrences[i]),
            i,
        )
    });
    idx.into_iter().map(|i| region.vars[i]).collect()
}

fn build_module(
    tree: &FaultTree,
    region: &Region,
    order: Vec<NodeId>,
    max_nodes: usize,
) -> Result<Bdd, BddError> {
    let mut level_of: HashMap<NodeId, u32, FxBuild> = HashMap::default();
    for (level, &v) in order.iter().enumerate() {
        level_of.insert(v, level as u32);
    }
    let mut bdd = Bdd::empty(order, max_nodes);
    // Variables first, then region gates bottom-up (ids are topological).
    let mut func: HashMap<NodeId, Ref, FxBuild> = HashMap::default();
    for (&v, &level) in &level_of {
        func.insert(v, bdd.mk(level, FALSE, TRUE)?);
    }
    for &gate in &region.gates {
        let inputs: Vec<Ref> = tree.gate_inputs(gate).iter().map(|i| func[i]).collect();
        let f = match tree.gate_kind(gate).expect("gate") {
            GateKind::And => {
                let mut acc = TRUE;
                for g in inputs {
                    acc = bdd.apply(Op::And, acc, g)?;
                }
                acc
            }
            GateKind::Or => {
                let mut acc = FALSE;
                for g in inputs {
                    acc = bdd.apply(Op::Or, acc, g)?;
                }
                acc
            }
            GateKind::AtLeast(k) => bdd.atleast(k as usize, &inputs)?,
        };
        func.insert(gate, f);
    }
    bdd.set_root(func[&region.root]);
    Ok(bdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn modular_probability_matches_monolithic_and_enumeration() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let modular = ModularBdd::new(&t).unwrap();
        let mono = Bdd::new(&t).unwrap();
        let exact = t.exact_static_probability().unwrap();
        let pm = modular.exact_probability(&probs);
        assert!((pm - exact).abs() < 1e-15, "{pm} vs {exact}");
        assert!((pm - mono.top_probability(&probs)).abs() < 1e-15);
    }

    #[test]
    fn modular_cutsets_match_monolithic() {
        let t = example1();
        let mut modular = ModularBdd::new(&t).unwrap();
        let mut mono = Bdd::new(&t).unwrap();
        let mut a: Vec<Cutset> = modular.minimal_cutsets().unwrap().iter().cloned().collect();
        let mut b: Vec<Cutset> = mono.minimal_cutsets().unwrap().iter().cloned().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn streaming_yields_the_same_cutsets_in_batches() {
        let t = example1();
        let mut modular = ModularBdd::new(&t).unwrap();
        let full: Vec<Cutset> = modular.minimal_cutsets().unwrap().iter().cloned().collect();
        let mut streamed: Vec<Cutset> = Vec::new();
        let mut batches = 0;
        let done = modular
            .stream_minimal_cutsets(1, |batch| {
                batches += 1;
                streamed.append(batch);
                true
            })
            .unwrap();
        assert!(done);
        assert!(batches >= 2, "expected several batches, got {batches}");
        assert_eq!(streamed, full, "stream order must match batch order");
    }

    #[test]
    fn streaming_abort_is_honored() {
        let t = example1();
        let mut modular = ModularBdd::new(&t).unwrap();
        let done = modular.stream_minimal_cutsets(1, |_| false).unwrap();
        assert!(!done);
    }

    #[test]
    fn stats_report_one_diagram_per_module() {
        let t = example1();
        let modular = ModularBdd::new(&t).unwrap();
        let stats = modular.stats();
        // p1, p2, pumps, cooling are all modules of example1.
        assert_eq!(stats.modules, 4);
        assert_eq!(stats.per_module.len(), 4);
        assert!(stats.total_nodes >= stats.max_module_nodes);
        assert_eq!(stats.weighted_orders, 0, "tiny modules stay on DFS order");
        assert!(modular.is_module(t.node_by_name("pumps").unwrap()));
        assert!(!modular.is_module(t.node_by_name("a").unwrap()));
    }

    #[test]
    fn shared_budget_is_enforced_across_modules() {
        let t = example1();
        let err = ModularBdd::with_options(
            &t,
            &ModularBddOptions {
                max_nodes: 4,
                ..ModularBddOptions::default()
            },
        );
        assert!(matches!(err, Err(BddError::TooManyNodes { .. })));
    }

    #[test]
    fn weighted_order_threshold_changes_order_not_semantics() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let weighted = ModularBdd::with_options(
            &t,
            &ModularBddOptions {
                weighted_order_threshold: 0,
                ..ModularBddOptions::default()
            },
        )
        .unwrap();
        assert_eq!(weighted.stats().weighted_orders, 4);
        let exact = t.exact_static_probability().unwrap();
        assert!((weighted.exact_probability(&probs) - exact).abs() < 1e-15);
    }
}
