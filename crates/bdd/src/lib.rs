#![warn(missing_docs)]

//! Reduced ordered binary decision diagrams for exact static fault tree
//! analysis.
//!
//! The SD analysis of Krčál & Krčál (DSN 2015) relies on MOCUS plus the
//! rare-event approximation; this crate provides the *exact* counterpart
//! used to validate it: a small ROBDD engine with
//!
//! * hash-consed nodes and memoized apply,
//! * exact top-event probability by Shannon expansion,
//! * minimal cutset extraction via Rauzy's `minsol`/`without`
//!   construction on monotone functions.
//!
//! # Example
//!
//! ```
//! use sdft_bdd::Bdd;
//! use sdft_ft::{EventProbabilities, FaultTreeBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FaultTreeBuilder::new();
//! let x = b.static_event("x", 0.3)?;
//! let y = b.static_event("y", 0.2)?;
//! let g = b.or("g", [x, y])?;
//! b.top(g);
//! let tree = b.build()?;
//! let mut bdd = Bdd::new(&tree)?;
//! let probs = EventProbabilities::from_static(&tree)?;
//! let p = bdd.top_probability(&probs);
//! assert!((p - (1.0 - 0.7 * 0.8)).abs() < 1e-12);
//! assert_eq!(bdd.minimal_cutsets()?.len(), 2);
//! # Ok(())
//! # }
//! ```

mod error;
mod manager;
mod modular;

pub use error::BddError;
pub use manager::{Bdd, BddOptions};
pub use modular::{CutsetLimits, ModularBdd, ModularBddOptions, ModularBddStats, ModuleStats};
