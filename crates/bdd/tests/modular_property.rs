//! Property-based tests for the modular BDD backend on random static
//! trees: the modular diagram (one ROBDD per independent module,
//! composed through pseudo-variables) must agree with the monolithic
//! diagram and with exhaustive scenario enumeration on both the exact
//! probability and the minimal cutset antichain — and the module
//! decomposition it builds on must be a genuine laminar family (any
//! two module subtrees are nested or event-disjoint).

use proptest::prelude::*;
use sdft_bdd::{Bdd, ModularBdd};
use sdft_ft::{modules, Cutset, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId};
use std::collections::BTreeSet;

/// A compact description of a random static fault tree: event
/// probabilities plus gate specs referencing earlier nodes by index
/// (same scheme as the workspace-level property suite).
#[derive(Debug, Clone)]
struct TreeSpec {
    probs: Vec<f64>,
    gates: Vec<(u8, Vec<usize>)>,
}

fn arb_tree_spec() -> impl Strategy<Value = TreeSpec> {
    let events = prop::collection::vec(0.0f64..=1.0, 2..8);
    let gates = prop::collection::vec((0u8..3, prop::collection::vec(0usize..100, 1..5)), 1..7);
    (events, gates).prop_map(|(probs, gates)| TreeSpec { probs, gates })
}

fn build_tree(spec: &TreeSpec) -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let mut nodes: Vec<NodeId> = spec
        .probs
        .iter()
        .enumerate()
        .map(|(i, &p)| b.static_event(&format!("e{i}"), p).expect("valid"))
        .collect();
    for (g, (kind, refs)) in spec.gates.iter().enumerate() {
        let mut inputs: Vec<NodeId> = refs.iter().map(|&r| nodes[r % nodes.len()]).collect();
        inputs.sort();
        inputs.dedup();
        let id = match kind {
            0 => b.and(&format!("g{g}"), inputs).expect("valid"),
            1 => b.or(&format!("g{g}"), inputs).expect("valid"),
            _ => {
                let k = (refs.len() as u32 % inputs.len() as u32) + 1;
                b.atleast(&format!("g{g}"), k, inputs).expect("valid")
            }
        };
        nodes.push(id);
    }
    b.top(*nodes.last().expect("at least one gate"));
    b.build().expect("spec produces a valid tree")
}

/// All basic events reachable from `node`.
fn subtree_events(tree: &FaultTree, node: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if tree.is_basic(n) {
            out.insert(n);
        } else {
            stack.extend(tree.gate_inputs(n).iter().copied());
        }
    }
    out
}

fn sorted(mut cutsets: Vec<Cutset>) -> Vec<Cutset> {
    cutsets.sort();
    cutsets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Modular probability == monolithic probability == exhaustive
    /// enumeration, to tight tolerance (different factorizations of the
    /// same polynomial, so exact equality is not guaranteed bitwise).
    #[test]
    fn modular_probability_matches_monolithic_and_enumeration(spec in arb_tree_spec()) {
        let tree = build_tree(&spec);
        let probs = EventProbabilities::from_static(&tree).unwrap();
        let modular = ModularBdd::new(&tree).unwrap();
        let mono = Bdd::new(&tree).unwrap();
        let p_modular = modular.exact_probability(&probs);
        let p_mono = mono.top_probability(&probs);
        let p_enum = tree.exact_static_probability().unwrap();
        prop_assert!((p_modular - p_mono).abs() <= 1e-12 * p_mono.abs().max(1.0),
            "modular {p_modular} vs monolithic {p_mono}");
        prop_assert!((p_modular - p_enum).abs() <= 1e-10 * p_enum.abs().max(1.0),
            "modular {p_modular} vs enumeration {p_enum}");
    }

    /// The modular backend's composed minimal cutsets equal the
    /// monolithic diagram's antichain exactly.
    #[test]
    fn modular_cutsets_match_monolithic(spec in arb_tree_spec()) {
        let tree = build_tree(&spec);
        let mut modular = ModularBdd::new(&tree).unwrap();
        let mut mono = Bdd::new(&tree).unwrap();
        let from_modular = sorted(modular.minimal_cutsets().unwrap().into_iter().collect());
        let from_mono = sorted(mono.minimal_cutsets().unwrap().into_iter().collect());
        prop_assert_eq!(from_modular, from_mono);
    }

    /// `modules()` returns a laminar family: any two module subtrees
    /// are either nested or have disjoint basic events — the
    /// independence that makes pseudo-variable composition sound.
    #[test]
    fn modules_partition_is_laminar(spec in arb_tree_spec()) {
        let tree = build_tree(&spec);
        let mods = modules(&tree);
        prop_assert!(mods.contains(&tree.top()), "top is always a module");
        let event_sets: Vec<BTreeSet<NodeId>> = mods
            .iter()
            .map(|&m| subtree_events(&tree, m))
            .collect();
        for i in 0..event_sets.len() {
            for j in i + 1..event_sets.len() {
                let (a, b) = (&event_sets[i], &event_sets[j]);
                let nested = a.is_subset(b) || b.is_subset(a);
                let disjoint = a.is_disjoint(b);
                prop_assert!(nested || disjoint,
                    "modules {:?} and {:?} overlap without nesting: {:?} vs {:?}",
                    tree.name(mods[i]), tree.name(mods[j]), a, b);
            }
        }
    }
}
