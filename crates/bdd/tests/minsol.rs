//! Targeted coverage for the `minsol`/`without` antichain construction
//! on the shapes most likely to expose it: at-least gates (whose
//! threshold network creates heavy node sharing inside the diagram)
//! and deeply shared subtrees (where `without` must subsume cutsets
//! discovered along different paths to the same sub-function).

use sdft_bdd::Bdd;
use sdft_ft::{
    Cutset, CutsetList, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId, Scenario,
};

/// Brute-force minimal cutsets by scenario enumeration (independent of
/// both the BDD and MOCUS).
fn brute_force_mcs(tree: &FaultTree) -> Vec<Cutset> {
    let events: Vec<NodeId> = tree.basic_events().collect();
    assert!(events.len() <= 20, "brute force needs a small tree");
    let mut failing: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << events.len()) {
        let scenario = Scenario::from_events(
            tree,
            events
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e),
        );
        if tree.fails(tree.top(), &scenario) {
            failing.push(mask);
        }
    }
    let mut out: Vec<Cutset> = failing
        .iter()
        .filter(|&&m| !failing.iter().any(|&o| o != m && o & m == o))
        .map(|&m| {
            Cutset::new(
                events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m >> i & 1 == 1)
                    .map(|(_, &e)| e),
            )
        })
        .collect();
    out.sort();
    out
}

fn bdd_mcs(tree: &FaultTree) -> Vec<Cutset> {
    let mut bdd = Bdd::new(tree).unwrap();
    let mut out: Vec<Cutset> = bdd.minimal_cutsets().unwrap().into_iter().collect();
    out.sort();
    out
}

fn assert_antichain(sets: &[Cutset]) {
    for a in sets {
        for b in sets {
            assert!(a == b || !a.is_subset_of(b), "{a:?} subsumes {b:?}");
        }
    }
}

#[test]
fn atleast_over_shared_events_matches_brute_force() {
    // 3-of-5 voting where two of the voters are themselves gates over
    // overlapping event sets — the threshold network shares nodes
    // aggressively, and minsol must still produce the C(5,3)-style
    // antichain of the *flattened* function.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..5)
        .map(|i| {
            b.static_event(&format!("e{i}"), 0.1 + 0.05 * i as f64)
                .unwrap()
        })
        .collect();
    let v0 = b.or("v0", [es[0], es[1]]).unwrap();
    let v1 = b.and("v1", [es[1], es[2]]).unwrap();
    let g = b.atleast("g", 3, [v0, v1, es[2], es[3], es[4]]).unwrap();
    b.top(g);
    let t = b.build().unwrap();
    let got = bdd_mcs(&t);
    assert_eq!(got, brute_force_mcs(&t));
    assert_antichain(&got);
}

#[test]
fn atleast_degenerate_k_equals_or_and_and() {
    // k = 1 is OR; k = n is AND. minsol must produce singleton cutsets
    // in the first case and one full cutset in the second.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..4)
        .map(|i| b.static_event(&format!("e{i}"), 0.2).unwrap())
        .collect();
    let any = b.atleast("any", 1, es.clone()).unwrap();
    let all = b.atleast("all", 4, es.clone()).unwrap();
    let top = b.and("top", [any, all]).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    // any ∧ all ≡ all: a single minimal cutset of order 4.
    let got = bdd_mcs(&t);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].order(), 4);
    assert_eq!(got, brute_force_mcs(&t));
}

#[test]
fn nested_atleast_gates_match_brute_force() {
    // at-least over at-least gates sharing inputs.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..6)
        .map(|i| b.static_event(&format!("e{i}"), 0.3).unwrap())
        .collect();
    let inner1 = b.atleast("i1", 2, [es[0], es[1], es[2]]).unwrap();
    let inner2 = b.atleast("i2", 2, [es[2], es[3], es[4]]).unwrap();
    let g = b.atleast("g", 2, [inner1, inner2, es[5]]).unwrap();
    b.top(g);
    let t = b.build().unwrap();
    let got = bdd_mcs(&t);
    assert_eq!(got, brute_force_mcs(&t));
    assert_antichain(&got);
}

#[test]
fn without_subsumes_across_shared_subtree_paths() {
    // top = OR(x, AND(x, y), AND(y, z)): the cutset {x} must absorb
    // {x, y}, exercising the `without` pass between the low and high
    // branches of minsol.
    let mut b = FaultTreeBuilder::new();
    let x = b.static_event("x", 0.2).unwrap();
    let y = b.static_event("y", 0.3).unwrap();
    let z = b.static_event("z", 0.4).unwrap();
    let xy = b.and("xy", [x, y]).unwrap();
    let yz = b.and("yz", [y, z]).unwrap();
    let top = b.or("top", [x, xy, yz]).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    let got = bdd_mcs(&t);
    assert_eq!(got, brute_force_mcs(&t));
    assert_eq!(got.len(), 2); // {x} and {y, z}
}

#[test]
fn deeply_shared_ladder_matches_brute_force() {
    // A ladder of depth 6 where every rung reuses the previous rung
    // twice: the fault tree DAG is small but the unfolded formula is
    // exponential, so correctness here really tests sharing-awareness.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..7)
        .map(|i| b.static_event(&format!("e{i}"), 0.25).unwrap())
        .collect();
    let mut rung = es[0];
    for (i, &e) in es.iter().enumerate().skip(1) {
        let a = b.and(&format!("a{i}"), [rung, e]).unwrap();
        rung = b.or(&format!("r{i}"), [a, rung]).unwrap();
    }
    b.top(rung);
    let t = b.build().unwrap();
    let got = bdd_mcs(&t);
    assert_eq!(got, brute_force_mcs(&t));
    // OR(AND(r, e), r) ≡ r at every rung, so the ladder collapses to e0.
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].order(), 1);
}

#[test]
fn diamond_sharing_with_voting_matches_brute_force() {
    // A diamond: two at-least gates over the same shared OR/AND layer,
    // rejoined by an AND. Shared sub-functions appear on both sides of
    // `without`'s recursion.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..6)
        .map(|i| b.static_event(&format!("e{i}"), 0.15).unwrap())
        .collect();
    let s0 = b.or("s0", [es[0], es[1]]).unwrap();
    let s1 = b.or("s1", [es[2], es[3]]).unwrap();
    let s2 = b.and("s2", [es[4], es[5]]).unwrap();
    let left = b.atleast("left", 2, [s0, s1, s2]).unwrap();
    let right = b.atleast("right", 2, [s1, s2, es[0]]).unwrap();
    let top = b.and("top", [left, right]).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    let got = bdd_mcs(&t);
    assert_eq!(got, brute_force_mcs(&t));
    assert_antichain(&got);
}

#[test]
fn minimal_cutsets_rea_bounds_exact_probability() {
    // On every tree above, the rare-event approximation over the BDD's
    // own cutsets upper-bounds its exact probability.
    let mut b = FaultTreeBuilder::new();
    let es: Vec<_> = (0..5)
        .map(|i| b.static_event(&format!("e{i}"), 0.2).unwrap())
        .collect();
    let g = b.atleast("g", 2, es).unwrap();
    b.top(g);
    let t = b.build().unwrap();
    let probs = EventProbabilities::from_static(&t).unwrap();
    let mut bdd = Bdd::new(&t).unwrap();
    let exact = bdd.top_probability(&probs);
    let mcs: CutsetList = bdd.minimal_cutsets().unwrap();
    let rea = mcs.rare_event_approximation(|e| probs.get(e));
    assert!(rea >= exact - 1e-12, "rea {rea} < exact {exact}");
}
