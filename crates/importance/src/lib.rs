#![warn(missing_docs)]

//! Cutset-based importance measures for fault tree analysis.
//!
//! §VI-B of Krčál & Krčál (DSN 2015) selects which basic events to model
//! dynamically by ranking them with the Fussell–Vesely importance factor
//! and builds triggering chains between events of equal importance. This
//! crate computes the standard importance measures on a minimal cutset
//! list under the rare-event approximation:
//!
//! * **Fussell–Vesely** `FV(a) = Σ_{C∋a} p(C) / Σ_C p(C)` — the fraction
//!   of risk flowing through the event,
//! * **Birnbaum** `B(a) = ∂(Σ p(C))/∂p(a)` — the sensitivity of the risk
//!   to the event's probability,
//! * **Risk Achievement Worth** `RAW(a)` — risk ratio with `p(a) := 1`,
//! * **Risk Reduction Worth** `RRW(a)` — risk ratio with `p(a) := 0`
//!   (infinite when all risk flows through the event).
//!
//! The [`uncertainty`] module propagates lognormal parameter
//! uncertainty through the same cutset list (the re-evaluation workflow
//! the paper's conclusion highlights).
//!
//! # Example
//!
//! ```
//! use sdft_ft::{EventProbabilities, FaultTreeBuilder};
//! use sdft_importance::fussell_vesely_ranking;
//! use sdft_mocus::{minimal_cutsets, MocusOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FaultTreeBuilder::new();
//! let x = b.static_event("x", 0.01)?;
//! let y = b.static_event("y", 0.001)?;
//! let g = b.or("g", [x, y])?;
//! b.top(g);
//! let tree = b.build()?;
//! let probs = EventProbabilities::from_static(&tree)?;
//! let mcs = minimal_cutsets(&tree, &probs, &MocusOptions::default())?;
//! let ranking = fussell_vesely_ranking(&mcs, &probs, tree.basic_events());
//! assert_eq!(ranking[0].0, x); // x carries ~10x more risk than y
//! # Ok(())
//! # }
//! ```

pub mod uncertainty;

use sdft_ft::{CutsetList, EventProbabilities, NodeId};
use std::collections::HashMap;

/// The importance measures of one basic event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceReport {
    /// The basic event.
    pub event: NodeId,
    /// Fussell–Vesely importance in `[0, 1]`.
    pub fussell_vesely: f64,
    /// Birnbaum importance (risk sensitivity).
    pub birnbaum: f64,
    /// Risk achievement worth (`≥ 1`).
    pub raw: f64,
    /// Risk reduction worth (`≥ 1`, infinite if all risk passes through
    /// the event).
    pub rrw: f64,
}

/// Compute the importance measures of `events` over a minimal cutset
/// list, under the rare-event approximation.
///
/// Events that appear in no cutset get `FV = 0`, `B = 0`, `RAW = RRW = 1`.
/// If the total risk is zero, `FV` is reported as zero and the risk
/// ratios as one.
pub fn importance<I>(
    cutsets: &CutsetList,
    probs: &EventProbabilities,
    events: I,
) -> Vec<ImportanceReport>
where
    I: IntoIterator<Item = NodeId>,
{
    // One pass over the cutsets accumulates, per event:
    //   with[a]  = Σ_{C∋a} p(C)                  (Fussell–Vesely numerator)
    //   deriv[a] = Σ_{C∋a} ∏_{b∈C, b≠a} p(b)     (Birnbaum)
    let mut total = 0.0;
    let mut with: HashMap<NodeId, f64> = HashMap::new();
    let mut deriv: HashMap<NodeId, f64> = HashMap::new();
    for cutset in cutsets {
        let p = cutset.probability_with(|e| probs.get(e));
        total += p;
        for &a in cutset.events() {
            *with.entry(a).or_insert(0.0) += p;
            let rest: f64 = cutset
                .events()
                .iter()
                .filter(|&&b| b != a)
                .map(|&b| probs.get(b))
                .product();
            *deriv.entry(a).or_insert(0.0) += rest;
        }
    }

    events
        .into_iter()
        .map(|event| {
            let w = with.get(&event).copied().unwrap_or(0.0);
            let d = deriv.get(&event).copied().unwrap_or(0.0);
            if total <= 0.0 {
                return ImportanceReport {
                    event,
                    fussell_vesely: 0.0,
                    birnbaum: d,
                    raw: 1.0,
                    rrw: 1.0,
                };
            }
            let without = total - w;
            ImportanceReport {
                event,
                fussell_vesely: w / total,
                birnbaum: d,
                // p(a) := 1 turns every cutset containing a into its
                // Birnbaum term.
                raw: (without + d) / total,
                rrw: if without > 0.0 {
                    total / without
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// Rank `events` by descending Fussell–Vesely importance.
///
/// Ties are broken by event id, which makes the ranking deterministic —
/// the property §VI-B relies on when building triggering chains among
/// equally important redundant components.
pub fn fussell_vesely_ranking<I>(
    cutsets: &CutsetList,
    probs: &EventProbabilities,
    events: I,
) -> Vec<(NodeId, f64)>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut ranked: Vec<(NodeId, f64)> = importance(cutsets, probs, events)
        .into_iter()
        .map(|r| (r.event, r.fussell_vesely))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_bdd::Bdd;
    use sdft_ft::{FaultTree, FaultTreeBuilder};
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn setup(t: &FaultTree) -> (CutsetList, EventProbabilities) {
        let probs = EventProbabilities::from_static(t).unwrap();
        let mcs = minimal_cutsets(t, &probs, &MocusOptions::exhaustive()).unwrap();
        (mcs, probs)
    }

    #[test]
    fn fussell_vesely_on_the_running_example() {
        let t = example1();
        let (mcs, probs) = setup(&t);
        let a = t.node_by_name("a").unwrap();
        let e = t.node_by_name("e").unwrap();
        let reports = importance(&mcs, &probs, [a, e]);
        // total = 1.9e-5; a appears in {a,c}=9e-6 and {a,d}=3e-6.
        let total = 1.9e-5;
        assert!((reports[0].fussell_vesely - 1.2e-5 / total).abs() < 1e-9);
        assert!((reports[1].fussell_vesely - 3e-6 / total).abs() < 1e-9);
    }

    #[test]
    fn birnbaum_matches_bdd_derivative() {
        // B(a) under the REA approximates p(top | a=1) - p(top | a=0).
        let t = example1();
        let (mcs, probs) = setup(&t);
        let bdd = Bdd::new(&t).unwrap();
        for event in t.basic_events() {
            let mut hi = probs.clone();
            hi.set(event, 1.0).unwrap();
            let mut lo = probs.clone();
            lo.set(event, 0.0).unwrap();
            let exact = bdd.top_probability(&hi) - bdd.top_probability(&lo);
            let report = importance(&mcs, &probs, [event])[0];
            assert!(
                (report.birnbaum - exact).abs() / exact.max(1e-30) < 0.02,
                "{}: {} vs {exact}",
                t.name(event),
                report.birnbaum
            );
        }
    }

    #[test]
    fn raw_and_rrw_are_risk_ratios() {
        let t = example1();
        let (mcs, probs) = setup(&t);
        let total = mcs.rare_event_approximation(|e| probs.get(e));
        for event in t.basic_events() {
            let report = importance(&mcs, &probs, [event])[0];
            let mut hi = probs.clone();
            hi.set(event, 1.0).unwrap();
            let raw_direct = mcs.rare_event_approximation(|e| hi.get(e)) / total;
            assert!((report.raw - raw_direct).abs() < 1e-9, "{}", t.name(event));
            let mut lo = probs.clone();
            lo.set(event, 0.0).unwrap();
            let rrw_direct = total / mcs.rare_event_approximation(|e| lo.get(e));
            assert!((report.rrw - rrw_direct).abs() < 1e-9, "{}", t.name(event));
            assert!(report.raw >= 1.0 && report.rrw >= 1.0);
        }
    }

    #[test]
    fn single_point_of_failure_has_infinite_rrw() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.01).unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let (mcs, probs) = setup(&t);
        let report = importance(&mcs, &probs, [x])[0];
        assert_eq!(report.fussell_vesely, 1.0);
        assert_eq!(report.rrw, f64::INFINITY);
    }

    #[test]
    fn ranking_orders_by_risk_and_breaks_ties_by_id() {
        let t = example1();
        let (mcs, probs) = setup(&t);
        let ranking = fussell_vesely_ranking(&mcs, &probs, t.basic_events());
        assert_eq!(ranking.len(), 5);
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // a and c are symmetric (both 3e-3, same cutset structure): the
        // tie breaks by id.
        let a = t.node_by_name("a").unwrap();
        let c = t.node_by_name("c").unwrap();
        let pa = ranking.iter().position(|&(e, _)| e == a).unwrap();
        let pc = ranking.iter().position(|&(e, _)| e == c).unwrap();
        assert!(pa < pc);
        assert!((ranking[pa].1 - ranking[pc].1).abs() < 1e-12);
    }

    #[test]
    fn empty_cutset_list_yields_neutral_measures() {
        let t = example1();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let empty = CutsetList::new();
        let a = t.node_by_name("a").unwrap();
        let report = importance(&empty, &probs, [a])[0];
        assert_eq!(report.fussell_vesely, 0.0);
        assert_eq!(report.raw, 1.0);
        assert_eq!(report.rrw, 1.0);
    }
}
