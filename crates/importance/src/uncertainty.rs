//! Monte-Carlo uncertainty propagation over a minimal cutset list.
//!
//! PSA practice attaches an uncertainty distribution — typically
//! lognormal with an *error factor* `EF` (the ratio of the 95th
//! percentile to the median) — to every basic event probability. The
//! paper's closing remark points out that importance and uncertainty
//! analyses re-evaluate the cutset list many times; this module does
//! exactly that: sample parameter vectors, re-evaluate the rare-event
//! approximation per sample, and report percentiles of the top-event
//! frequency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdft_ft::{CutsetList, EventProbabilities, FaultTree, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A lognormal uncertainty on one event's probability, parameterized by
/// the error factor `EF = p95 / p50` (so `σ = ln(EF) / 1.645`); the
/// event's point probability is used as the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorFactor(f64);

impl ErrorFactor {
    /// Create an error factor; must be `≥ 1` and finite.
    ///
    /// # Errors
    ///
    /// Returns the offending value if it is below one or not finite.
    pub fn new(ef: f64) -> Result<Self, f64> {
        if ef.is_finite() && ef >= 1.0 {
            Ok(ErrorFactor(ef))
        } else {
            Err(ef)
        }
    }

    /// The underlying factor.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    fn sigma(self) -> f64 {
        self.0.ln() / 1.644_853_626_951_472_6
    }
}

impl fmt::Display for ErrorFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EF {}", self.0)
    }
}

/// Options for the uncertainty analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintyOptions {
    /// Number of parameter samples.
    pub samples: usize,
    /// RNG seed (the analysis is deterministic given the seed).
    pub seed: u64,
    /// Error factor applied to events without an explicit one.
    pub default_error_factor: ErrorFactor,
}

impl Default for UncertaintyOptions {
    fn default() -> Self {
        UncertaintyOptions {
            samples: 10_000,
            seed: 0x0EF,
            default_error_factor: ErrorFactor(3.0),
        }
    }
}

/// Percentile summary of the sampled top-event frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintyResult {
    /// Mean of the sampled frequencies.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// The point estimate with the nominal probabilities.
    pub point: f64,
}

impl fmt::Display for UncertaintyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point {:.3e}, mean {:.3e}, 5%/50%/95% = {:.3e}/{:.3e}/{:.3e}",
            self.point, self.mean, self.p05, self.p50, self.p95
        )
    }
}

/// Propagate lognormal parameter uncertainty through the rare-event
/// approximation of a cutset list.
///
/// `error_factors` overrides the default error factor per event. Events
/// with zero nominal probability stay at zero. Sampled probabilities are
/// clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `options.samples` is zero.
#[must_use]
pub fn propagate(
    tree: &FaultTree,
    cutsets: &CutsetList,
    probs: &EventProbabilities,
    error_factors: &HashMap<NodeId, ErrorFactor>,
    options: &UncertaintyOptions,
) -> UncertaintyResult {
    assert!(options.samples > 0, "at least one sample required");
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Only the events appearing in cutsets matter.
    let mut relevant: Vec<NodeId> = Vec::new();
    {
        let mut seen = vec![false; tree.len()];
        for cutset in cutsets {
            for &e in cutset.events() {
                if !std::mem::replace(&mut seen[e.index()], true) {
                    relevant.push(e);
                }
            }
        }
    }
    let point = cutsets.rare_event_approximation(|e| probs.get(e));

    let mut sampled = probs.clone();
    let mut frequencies: Vec<f64> = Vec::with_capacity(options.samples);
    for _ in 0..options.samples {
        for &event in &relevant {
            let median = probs.get(event);
            if median <= 0.0 {
                continue;
            }
            let sigma = error_factors
                .get(&event)
                .copied()
                .unwrap_or(options.default_error_factor)
                .sigma();
            let z = standard_normal(&mut rng);
            let value = (median.ln() + sigma * z).exp().clamp(0.0, 1.0);
            sampled
                .set(event, value)
                .expect("clamped probability is valid");
        }
        frequencies.push(cutsets.rare_event_approximation(|e| sampled.get(e)));
    }
    frequencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = frequencies.iter().sum::<f64>() / frequencies.len() as f64;
    let pct = |q: f64| -> f64 {
        let idx = ((frequencies.len() as f64 - 1.0) * q).round() as usize;
        frequencies[idx]
    };
    UncertaintyResult {
        mean,
        p05: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
        point,
    }
}

/// A standard normal draw by Box–Muller (keeps the dependency surface at
/// plain `rand`).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ft::FaultTreeBuilder;
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    fn setup() -> (FaultTree, CutsetList, EventProbabilities) {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 1e-3).unwrap();
        let y = b.static_event("y", 2e-3).unwrap();
        let z = b.static_event("z", 5e-4).unwrap();
        let g1 = b.and("g1", [x, y]).unwrap();
        let top = b.or("top", [g1, z]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = EventProbabilities::from_static(&t).unwrap();
        let mcs = minimal_cutsets(&t, &probs, &MocusOptions::exhaustive()).unwrap();
        (t, mcs, probs)
    }

    #[test]
    fn error_factor_validation() {
        assert!(ErrorFactor::new(1.0).is_ok());
        assert!(ErrorFactor::new(10.0).is_ok());
        assert_eq!(ErrorFactor::new(0.5), Err(0.5));
        assert!(ErrorFactor::new(f64::NAN).is_err());
        assert!(ErrorFactor::new(f64::INFINITY).is_err());
        assert_eq!(ErrorFactor::new(3.0).unwrap().value(), 3.0);
    }

    #[test]
    fn percentiles_bracket_the_point_estimate() {
        let (t, mcs, probs) = setup();
        let result = propagate(
            &t,
            &mcs,
            &probs,
            &HashMap::new(),
            &UncertaintyOptions {
                samples: 5_000,
                ..UncertaintyOptions::default()
            },
        );
        assert!(result.p05 < result.p50 && result.p50 < result.p95);
        assert!(result.p05 < result.point && result.point < result.p95);
        // Lognormal sampling is right-skewed: mean above median.
        assert!(result.mean > result.p50);
        // The median of the sampled REA is near the point estimate.
        assert!((result.p50 / result.point).ln().abs() < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (t, mcs, probs) = setup();
        let opts = UncertaintyOptions {
            samples: 500,
            ..UncertaintyOptions::default()
        };
        let a = propagate(&t, &mcs, &probs, &HashMap::new(), &opts);
        let b = propagate(&t, &mcs, &probs, &HashMap::new(), &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_error_factor_widens_the_band() {
        let (t, mcs, probs) = setup();
        let narrow = propagate(
            &t,
            &mcs,
            &probs,
            &HashMap::new(),
            &UncertaintyOptions {
                samples: 3_000,
                default_error_factor: ErrorFactor::new(1.5).unwrap(),
                ..UncertaintyOptions::default()
            },
        );
        let wide = propagate(
            &t,
            &mcs,
            &probs,
            &HashMap::new(),
            &UncertaintyOptions {
                samples: 3_000,
                default_error_factor: ErrorFactor::new(10.0).unwrap(),
                ..UncertaintyOptions::default()
            },
        );
        assert!(wide.p95 / wide.p05 > narrow.p95 / narrow.p05);
    }

    #[test]
    fn per_event_overrides_apply() {
        let (t, mcs, probs) = setup();
        let z = t.node_by_name("z").unwrap();
        // z dominates the REA; pinning its EF to ~1 collapses the band.
        let mut overrides = HashMap::new();
        overrides.insert(z, ErrorFactor::new(1.0001).unwrap());
        let pinned = propagate(
            &t,
            &mcs,
            &probs,
            &overrides,
            &UncertaintyOptions {
                samples: 3_000,
                default_error_factor: ErrorFactor::new(1.0001).unwrap(),
                ..UncertaintyOptions::default()
            },
        );
        assert!((pinned.p95 - pinned.p05) / pinned.p50 < 0.01);
    }
}
