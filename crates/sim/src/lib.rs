#![warn(missing_docs)]

//! Monte-Carlo discrete-event simulation of SD fault tree semantics.
//!
//! The simulator samples runs of the product Markov chain of §III-C of
//! Krčál & Krčál (DSN 2015) *without building it*: each run draws the
//! initial state of every basic event, resolves trigger updates, and then
//! races the exponential clocks of all components until the top gate fails
//! or the mission horizon expires.
//!
//! The trigger-update logic is implemented independently from
//! `sdft-product` on purpose: two separate implementations of the
//! semantics agreeing (see the cross-validation tests in `sdft-core` and
//! `tests/`) is part of this workspace's evidence that both are right.
//!
//! # Example
//!
//! ```
//! use sdft_ft::format;
//! use sdft_sim::{simulate, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = format::parse_str(
//!     "top g\n\
//!      dynamic x erlang k=1 lambda=0.01 mu=0\n\
//!      gate g or x\n",
//! )?;
//! let result = simulate(&tree, &SimOptions { samples: 20_000, horizon: 24.0, seed: 7 })?;
//! let exact = 1.0 - (-0.01f64 * 24.0).exp();
//! let (lo, hi) = result.confidence_interval_95();
//! assert!(lo <= exact && exact <= hi);
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdft_ctmc::{Ctmc, CtmcBuilder, Mode};
use sdft_ft::{Behavior, FaultTree, NodeId, Scenario};
use std::fmt;

/// Options for the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Number of independent runs.
    pub samples: usize,
    /// Mission horizon `t`.
    pub horizon: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            samples: 100_000,
            horizon: 24.0,
            seed: 0x5D_F7,
        }
    }
}

/// The outcome of a simulation campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Number of runs in which the top gate failed within the horizon.
    pub failures: usize,
    /// Total number of runs.
    pub samples: usize,
}

impl SimResult {
    /// Point estimate of the failure probability.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.failures as f64 / self.samples as f64
    }

    /// 95% Wilson score interval for the failure probability.
    #[must_use]
    pub fn confidence_interval_95(&self) -> (f64, f64) {
        if self.samples == 0 {
            return (0.0, 1.0);
        }
        let n = self.samples as f64;
        let p = self.estimate();
        let z = 1.959_963_984_540_054_f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.confidence_interval_95();
        write!(
            f,
            "{}/{} failures, estimate {:.3e} (95% CI [{:.3e}, {:.3e}])",
            self.failures,
            self.samples,
            self.estimate(),
            lo,
            hi
        )
    }
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The horizon is negative or not finite.
    InvalidHorizon {
        /// The offending horizon.
        horizon: f64,
    },
    /// `samples == 0`: a campaign with no runs has no estimate, and
    /// silently returning `0/0` would masquerade as "never fails".
    NoSamples,
    /// Trigger updates failed to converge (internal invariant violation).
    UpdateDiverged,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidHorizon { horizon } => {
                write!(f, "invalid simulation horizon {horizon}")
            }
            SimError::NoSamples => {
                write!(f, "simulation requires at least one sample")
            }
            SimError::UpdateDiverged => {
                write!(f, "trigger updates did not reach a consistent state")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct Component {
    event: NodeId,
    chain: Ctmc,
    modes: Option<(Vec<Mode>, Vec<usize>, Vec<usize>)>,
    trigger_gate: Option<NodeId>,
}

/// Estimate `Pr[Reach≤t(F)]` of `tree` by Monte-Carlo simulation across
/// `threads` worker threads.
///
/// Runs are split evenly; each worker derives its RNG stream from the
/// seed and its index, so the result is deterministic for a fixed
/// `(seed, threads)` pair. `threads == 0` uses all available cores (the
/// result then depends on the machine's core count).
///
/// # Errors
///
/// Returns an error if the horizon is negative or not finite, or if
/// `samples == 0`.
pub fn simulate_parallel(
    tree: &FaultTree,
    options: &SimOptions,
    threads: usize,
) -> Result<SimResult, SimError> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    // Never spawn more workers than there are samples: a worker with an
    // empty share would otherwise hit `NoSamples` and fail the whole
    // campaign (this also validates `samples == 0` up front).
    let threads = threads.min(options.samples);
    if threads <= 1 {
        return simulate(tree, options);
    }
    let per_worker = options.samples / threads;
    let remainder = options.samples % threads;
    let outcomes: Vec<Result<SimResult, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let worker_options = SimOptions {
                    samples: per_worker + usize::from(w < remainder),
                    seed: options
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(w as u64),
                    ..*options
                };
                scope.spawn(move || simulate(tree, &worker_options))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect()
    });
    let mut failures = 0;
    let mut samples = 0;
    for outcome in outcomes {
        let r = outcome?;
        failures += r.failures;
        samples += r.samples;
    }
    Ok(SimResult { failures, samples })
}

/// Estimate `Pr[Reach≤t(F)]` of `tree` by Monte-Carlo simulation.
///
/// # Errors
///
/// Returns an error if the horizon is negative or not finite, or if
/// `samples == 0`.
pub fn simulate(tree: &FaultTree, options: &SimOptions) -> Result<SimResult, SimError> {
    if !options.horizon.is_finite() || options.horizon < 0.0 {
        return Err(SimError::InvalidHorizon {
            horizon: options.horizon,
        });
    }
    if options.samples == 0 {
        return Err(SimError::NoSamples);
    }
    let components: Vec<Component> = tree
        .basic_events()
        .map(|event| match tree.behavior(event).expect("basic event") {
            Behavior::Static { probability } => {
                let mut b = CtmcBuilder::new(2);
                b.initial(0, 1.0 - probability)
                    .initial(1, *probability)
                    .failed(1);
                Component {
                    event,
                    chain: b.build().expect("static two-state chain is valid"),
                    modes: None,
                    trigger_gate: None,
                }
            }
            Behavior::Dynamic(chain) => Component {
                event,
                chain: chain.clone(),
                modes: None,
                trigger_gate: None,
            },
            Behavior::Triggered(chain) => {
                let n = chain.len();
                let mode: Vec<Mode> = (0..n).map(|s| chain.mode(s)).collect();
                let on_map = (0..n)
                    .map(|s| {
                        if mode[s] == Mode::Off {
                            chain.on_of(s)
                        } else {
                            s
                        }
                    })
                    .collect();
                let off_map = (0..n)
                    .map(|s| {
                        if mode[s] == Mode::On {
                            chain.off_of(s)
                        } else {
                            s
                        }
                    })
                    .collect();
                Component {
                    event,
                    chain: chain.chain().clone(),
                    modes: Some((mode, on_map, off_map)),
                    trigger_gate: tree.trigger_source(event),
                }
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut failures = 0;
    for _ in 0..options.samples {
        if run_once(tree, &components, options.horizon, &mut rng)? {
            failures += 1;
        }
    }
    Ok(SimResult {
        failures,
        samples: options.samples,
    })
}

fn run_once(
    tree: &FaultTree,
    components: &[Component],
    horizon: f64,
    rng: &mut StdRng,
) -> Result<bool, SimError> {
    // Draw initial component states.
    let mut state: Vec<usize> = components
        .iter()
        .map(|c| {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            for s in 0..c.chain.len() {
                acc += c.chain.initial_probability(s);
                if u < acc {
                    return s;
                }
            }
            c.chain.len() - 1
        })
        .collect();
    resolve_triggers(tree, components, &mut state)?;
    if fails_top(tree, components, &state) {
        return Ok(true);
    }

    let mut t = 0.0;
    loop {
        // Race the exponential clocks of all enabled transitions.
        let total: f64 = state
            .iter()
            .zip(components)
            .map(|(&s, c)| c.chain.exit_rate(s))
            .sum();
        if total <= 0.0 {
            return Ok(false);
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        t += -u.ln() / total;
        if t > horizon {
            return Ok(false);
        }
        // Pick the transition proportionally to its rate.
        let mut pick = rng.gen::<f64>() * total;
        'chosen: for (i, c) in components.iter().enumerate() {
            for &(to, rate) in c.chain.transitions_from(state[i]) {
                pick -= rate;
                if pick <= 0.0 {
                    state[i] = to;
                    break 'chosen;
                }
            }
        }
        resolve_triggers(tree, components, &mut state)?;
        if fails_top(tree, components, &state) {
            return Ok(true);
        }
    }
}

fn scenario_of(tree: &FaultTree, components: &[Component], state: &[usize]) -> Scenario {
    Scenario::from_events(
        tree,
        state
            .iter()
            .zip(components)
            .filter(|&(&s, c)| c.chain.is_failed(s))
            .map(|(_, c)| c.event),
    )
}

fn fails_top(tree: &FaultTree, components: &[Component], state: &[usize]) -> bool {
    let scenario = scenario_of(tree, components, state);
    tree.fails(tree.top(), &scenario)
}

fn resolve_triggers(
    tree: &FaultTree,
    components: &[Component],
    state: &mut [usize],
) -> Result<(), SimError> {
    let limit = components.len() + 2;
    for _ in 0..limit {
        let scenario = scenario_of(tree, components, state);
        let failed = tree.evaluate_scenario(&scenario);
        let mut changed = false;
        for (i, c) in components.iter().enumerate() {
            let (Some((mode, on_map, off_map)), Some(gate)) = (&c.modes, c.trigger_gate) else {
                continue;
            };
            let s = state[i];
            if failed[gate.index()] {
                if mode[s] == Mode::Off {
                    state[i] = on_map[s];
                    changed = true;
                }
            } else if mode[s] == Mode::On {
                state[i] = off_map[s];
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
    }
    Err(SimError::UpdateDiverged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;
    use sdft_product::{failure_probability, ProductOptions};

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-2).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-2, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-2).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-2, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-4).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn static_tree_estimate_matches_exact() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.3).unwrap();
        let y = b.static_event("y", 0.4).unwrap();
        let g = b.or("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let exact = t.exact_static_probability().unwrap();
        let r = simulate(
            &t,
            &SimOptions {
                samples: 50_000,
                horizon: 1.0,
                seed: 1,
            },
        )
        .unwrap();
        let (lo, hi) = r.confidence_interval_95();
        assert!(lo <= exact && exact <= hi, "{exact} outside [{lo}, {hi}]");
    }

    #[test]
    fn agrees_with_product_chain_on_sd_tree() {
        // Scaled-up rates so failures are frequent enough to estimate.
        let t = example3();
        let exact = failure_probability(&t, 48.0, &ProductOptions::default()).unwrap();
        let r = simulate(
            &t,
            &SimOptions {
                samples: 200_000,
                horizon: 48.0,
                seed: 42,
            },
        )
        .unwrap();
        let (lo, hi) = r.confidence_interval_95();
        assert!(
            lo <= exact && exact <= hi,
            "product {exact} outside simulation CI [{lo}, {hi}]"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = example3();
        let opts = SimOptions {
            samples: 5_000,
            horizon: 24.0,
            seed: 9,
        };
        let a = simulate(&t, &opts).unwrap();
        let b = simulate(&t, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_horizon_counts_initial_failures_only() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.5).unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let r = simulate(
            &t,
            &SimOptions {
                samples: 20_000,
                horizon: 0.0,
                seed: 3,
            },
        )
        .unwrap();
        assert!((r.estimate() - 0.5).abs() < 0.02);
    }

    #[test]
    fn rejects_invalid_horizon() {
        let t = example3();
        assert!(matches!(
            simulate(
                &t,
                &SimOptions {
                    horizon: -1.0,
                    ..SimOptions::default()
                }
            ),
            Err(SimError::InvalidHorizon { .. })
        ));
        assert!(matches!(
            simulate(
                &t,
                &SimOptions {
                    horizon: f64::NAN,
                    ..SimOptions::default()
                }
            ),
            Err(SimError::InvalidHorizon { .. })
        ));
    }

    #[test]
    fn rejects_zero_samples() {
        let t = example3();
        let opts = SimOptions {
            samples: 0,
            horizon: 24.0,
            seed: 1,
        };
        assert_eq!(simulate(&t, &opts), Err(SimError::NoSamples));
        assert_eq!(simulate_parallel(&t, &opts, 4), Err(SimError::NoSamples));
        assert_eq!(simulate_parallel(&t, &opts, 0), Err(SimError::NoSamples));
    }

    #[test]
    fn infinite_horizon_is_rejected() {
        let t = example3();
        let result = simulate(
            &t,
            &SimOptions {
                horizon: f64::INFINITY,
                ..SimOptions::default()
            },
        );
        assert!(
            matches!(result, Err(SimError::InvalidHorizon { horizon }) if horizon.is_infinite())
        );
    }

    #[test]
    fn wilson_interval_sane() {
        let r = SimResult {
            failures: 0,
            samples: 1000,
        };
        let (lo, hi) = r.confidence_interval_95();
        assert!(lo < 1e-12, "lo = {lo}");
        assert!(hi > 0.0 && hi < 0.01);
        let r = SimResult {
            failures: 1000,
            samples: 1000,
        };
        let (lo, hi) = r.confidence_interval_95();
        assert!(lo > 0.99 && hi > 0.999 && hi <= 1.0);
        let r = SimResult {
            failures: 0,
            samples: 0,
        };
        assert_eq!(r.confidence_interval_95(), (0.0, 1.0));
        assert_eq!(r.estimate(), 0.0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use sdft_ft::format;

    fn model() -> FaultTree {
        format::parse_str(
            "top g\ndynamic x erlang k=1 lambda=0.01 mu=0\nbasic y 0.3\ngate g and x y\n",
        )
        .unwrap()
    }

    #[test]
    fn parallel_simulation_is_deterministic_and_consistent() {
        let t = model();
        let opts = SimOptions {
            samples: 40_000,
            horizon: 24.0,
            seed: 11,
        };
        let a = simulate_parallel(&t, &opts, 4).unwrap();
        let b = simulate_parallel(&t, &opts, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.samples, 40_000);
        // Statistically consistent with the sequential estimate.
        let sequential = simulate(&t, &opts).unwrap();
        let exact = 0.3 * (1.0 - (-0.01f64 * 24.0).exp());
        let (lo, hi) = a.confidence_interval_95();
        assert!(lo <= exact && exact <= hi, "{exact} outside [{lo}, {hi}]");
        let (lo, hi) = sequential.confidence_interval_95();
        assert!(lo <= exact && exact <= hi);
    }

    #[test]
    fn one_thread_delegates_to_sequential() {
        let t = model();
        let opts = SimOptions {
            samples: 5_000,
            horizon: 24.0,
            seed: 3,
        };
        assert_eq!(
            simulate_parallel(&t, &opts, 1).unwrap(),
            simulate(&t, &opts).unwrap()
        );
    }

    #[test]
    fn more_threads_than_samples_still_runs_every_sample() {
        let t = model();
        let opts = SimOptions {
            samples: 3,
            horizon: 24.0,
            seed: 7,
        };
        let r = simulate_parallel(&t, &opts, 16).unwrap();
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn odd_sample_counts_are_fully_used() {
        let t = model();
        let opts = SimOptions {
            samples: 10_001,
            horizon: 24.0,
            seed: 5,
        };
        let r = simulate_parallel(&t, &opts, 3).unwrap();
        assert_eq!(r.samples, 10_001);
    }
}
