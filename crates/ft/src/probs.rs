use crate::error::FtError;
use crate::node::{Behavior, NodeId};
use crate::tree::FaultTree;

/// A per-basic-event probability assignment for one fault tree.
///
/// Static analysis algorithms (MOCUS, BDD, importance measures) work on a
/// probability per basic event. For static events this is the event's own
/// failure probability; for dynamic events the caller supplies a value —
/// typically the *worst-case* probability of §V-B2, computed by
/// `sdft-core`.
///
/// # Example
///
/// ```
/// # use sdft_ft::{EventProbabilities, FaultTreeBuilder};
/// # fn main() -> Result<(), sdft_ft::FtError> {
/// let mut b = FaultTreeBuilder::new();
/// let x = b.static_event("x", 0.25)?;
/// let g = b.or("g", [x])?;
/// b.top(g);
/// let tree = b.build()?;
/// let probs = EventProbabilities::from_static(&tree)?;
/// assert_eq!(probs.get(x), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventProbabilities {
    probs: Vec<f64>,
}

impl EventProbabilities {
    /// Probabilities of a purely static tree, taken from the events
    /// themselves.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree contains dynamic basic events.
    pub fn from_static(tree: &FaultTree) -> Result<Self, FtError> {
        Self::with_dynamic(tree, |id| {
            Err(FtError::KindMismatch {
                name: tree.name(id).to_owned(),
                expected: "a static basic event",
            })
        })
    }

    /// Probabilities taking static values from the tree and dynamic values
    /// from `dynamic`, which is called once per dynamic basic event.
    ///
    /// # Errors
    ///
    /// Propagates errors from `dynamic`, and rejects values outside
    /// `[0, 1]`.
    pub fn with_dynamic<F>(tree: &FaultTree, mut dynamic: F) -> Result<Self, FtError>
    where
        F: FnMut(NodeId) -> Result<f64, FtError>,
    {
        let mut probs = vec![0.0; tree.len()];
        for event in tree.basic_events() {
            let p = match tree.behavior(event).expect("basic event") {
                Behavior::Static { probability } => *probability,
                Behavior::Dynamic(_) | Behavior::Triggered(_) => dynamic(event)?,
            };
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FtError::InvalidProbability {
                    name: tree.name(event).to_owned(),
                    probability: p,
                });
            }
            probs[event.index()] = p;
        }
        Ok(EventProbabilities { probs })
    }

    /// The probability assigned to `event` (zero for gates).
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    #[must_use]
    pub fn get(&self, event: NodeId) -> f64 {
        self.probs[event.index()]
    }

    /// Override the probability of one event.
    ///
    /// # Errors
    ///
    /// Returns an error if `probability` is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    pub fn set(&mut self, event: NodeId, probability: f64) -> Result<(), FtError> {
        if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
            return Err(FtError::InvalidProbability {
                name: event.to_string(),
                probability,
            });
        }
        self.probs[event.index()] = probability;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;
    use sdft_ctmc::erlang;

    #[test]
    fn static_tree_probabilities() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.25).unwrap();
        let y = b.static_event("y", 0.5).unwrap();
        let g = b.or("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let p = EventProbabilities::from_static(&t).unwrap();
        assert_eq!(p.get(x), 0.25);
        assert_eq!(p.get(y), 0.5);
        assert_eq!(p.get(g), 0.0);
    }

    #[test]
    fn dynamic_tree_requires_supplier() {
        let mut b = FaultTreeBuilder::new();
        let x = b
            .dynamic_event("x", erlang::plain(1, 1e-3).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(EventProbabilities::from_static(&t).is_err());
        let p = EventProbabilities::with_dynamic(&t, |_| Ok(0.125)).unwrap();
        assert_eq!(p.get(x), 0.125);
    }

    #[test]
    fn rejects_out_of_range_values() {
        let mut b = FaultTreeBuilder::new();
        let x = b
            .dynamic_event("x", erlang::plain(1, 1e-3).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(EventProbabilities::with_dynamic(&t, |_| Ok(1.5)).is_err());
        let mut p = EventProbabilities::with_dynamic(&t, |_| Ok(0.5)).unwrap();
        assert!(p.set(x, f64::NAN).is_err());
        p.set(x, 0.75).unwrap();
        assert_eq!(p.get(x), 0.75);
    }
}
