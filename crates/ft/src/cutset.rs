use crate::node::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A cutset: a set of basic events whose joint failure fails the top gate
/// (§IV-A of the paper).
///
/// Events are kept sorted and deduplicated; two cutsets are equal iff they
/// contain the same events.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cutset {
    events: Vec<NodeId>,
}

impl Cutset {
    /// Build a cutset from any collection of events (sorted, deduplicated).
    #[must_use]
    pub fn new<I>(events: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut events: Vec<NodeId> = events.into_iter().collect();
        events.sort_unstable();
        events.dedup();
        Cutset { events }
    }

    /// The events of the cutset, sorted by id.
    #[must_use]
    pub fn events(&self) -> &[NodeId] {
        &self.events
    }

    /// The order (number of events) of the cutset.
    #[must_use]
    pub fn order(&self) -> usize {
        self.events.len()
    }

    /// Whether the cutset is empty (fails the top gate unconditionally).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `event` is in the cutset.
    #[must_use]
    pub fn contains(&self, event: NodeId) -> bool {
        self.events.binary_search(&event).is_ok()
    }

    /// Whether every event of `self` is in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Cutset) -> bool {
        if self.events.len() > other.events.len() {
            return false;
        }
        // Merge walk over the two sorted lists.
        let mut oi = 0;
        'outer: for &e in &self.events {
            while oi < other.events.len() {
                match other.events[oi].cmp(&e) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `∏ p(a)` over the events of the cutset, with probabilities supplied
    /// by `prob` (property ii of §IV-A).
    #[must_use]
    pub fn probability_with<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        self.events.iter().map(|&e| prob(e)).product()
    }
}

impl FromIterator<NodeId> for Cutset {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Cutset::new(iter)
    }
}

impl fmt::Display for Cutset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A list of cutsets, typically the minimal cutsets of a fault tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CutsetList {
    cutsets: Vec<Cutset>,
}

impl CutsetList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing vector of cutsets (no minimization performed).
    #[must_use]
    pub fn from_vec(cutsets: Vec<Cutset>) -> Self {
        CutsetList { cutsets }
    }

    /// Number of cutsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cutsets.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cutsets.is_empty()
    }

    /// The cutsets, in list order.
    pub fn iter(&self) -> impl Iterator<Item = &Cutset> {
        self.cutsets.iter()
    }

    /// The `i`-th cutset.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Cutset> {
        self.cutsets.get(i)
    }

    /// Whether the list contains exactly this set of events.
    #[must_use]
    pub fn contains_set(&self, cutset: &Cutset) -> bool {
        self.cutsets.iter().any(|c| c == cutset)
    }

    /// Add a cutset (no minimization).
    pub fn push(&mut self, cutset: Cutset) {
        self.cutsets.push(cutset);
    }

    /// Remove duplicates and non-minimal cutsets, keeping exactly the
    /// minimal ones; the result is sorted by (order, events).
    ///
    /// Uses subset enumeration for small cutsets and an inverted-index
    /// counting pass for large ones, so minimizing lists with ~10^5
    /// cutsets of small order stays fast.
    #[must_use]
    pub fn minimize(mut self) -> Self {
        const ENUM_LIMIT: usize = 12;
        self.cutsets.sort_unstable_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.events.cmp(&b.events))
        });
        self.cutsets.dedup();

        let mut kept: Vec<Cutset> = Vec::new();
        let mut by_event: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut kept_sets: HashSet<Vec<NodeId>> = HashSet::new();

        let mut counter: Vec<u32> = Vec::new();
        let mut stamp: Vec<u32> = Vec::new();
        let mut round: u32 = 0;

        'candidates: for cutset in self.cutsets {
            // An empty cutset (sorted first) subsumes every other set.
            if kept.first().is_some_and(Cutset::is_empty) {
                break;
            }
            if cutset.order() <= ENUM_LIMIT {
                // Enumerate all proper non-empty subsets and look them up.
                let m = cutset.order();
                if m > 0 {
                    let full = (1u32 << m) - 1;
                    let mut buf: Vec<NodeId> = Vec::with_capacity(m);
                    for mask in 1..full {
                        buf.clear();
                        for (bit, &e) in cutset.events.iter().enumerate() {
                            if mask >> bit & 1 == 1 {
                                buf.push(e);
                            }
                        }
                        if kept_sets.contains(&buf) {
                            continue 'candidates;
                        }
                    }
                }
            } else {
                // Counting pass over the inverted index: a kept set K is a
                // subset of the candidate iff every one of its events is
                // hit, i.e. its counter reaches |K|.
                round += 1;
                for &e in cutset.events() {
                    if let Some(list) = by_event.get(&e) {
                        for &ki in list {
                            if ki >= counter.len() {
                                counter.resize(ki + 1, 0);
                                stamp.resize(ki + 1, 0);
                            }
                            if stamp[ki] != round {
                                stamp[ki] = round;
                                counter[ki] = 0;
                            }
                            counter[ki] += 1;
                            if counter[ki] as usize == kept[ki].order()
                                && kept[ki].order() < cutset.order()
                            {
                                continue 'candidates;
                            }
                        }
                    }
                }
            }
            let ki = kept.len();
            for &e in cutset.events() {
                by_event.entry(e).or_default().push(ki);
            }
            kept_sets.insert(cutset.events.clone());
            kept.push(cutset);
        }
        CutsetList { cutsets: kept }
    }

    /// The rare-event approximation `Σ_C ∏_{a∈C} p(a)` over all cutsets in
    /// the list (§IV-A, property iii).
    #[must_use]
    pub fn rare_event_approximation<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        // `Sum for f64` folds from -0.0; normalize so an empty list
        // reports a plain 0.0.
        let sum: f64 = self
            .cutsets
            .iter()
            .map(|c| c.probability_with(&mut prob))
            .sum();
        sum + 0.0
    }

    /// Sort the list by descending cutset probability.
    pub fn sort_by_probability_desc<F>(&mut self, mut prob: F)
    where
        F: FnMut(NodeId) -> f64,
    {
        let mut keyed: Vec<(f64, Cutset)> = std::mem::take(&mut self.cutsets)
            .into_iter()
            .map(|c| (c.probability_with(&mut prob), c))
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        self.cutsets = keyed.into_iter().map(|(_, c)| c).collect();
    }
}

impl FromIterator<Cutset> for CutsetList {
    fn from_iter<I: IntoIterator<Item = Cutset>>(iter: I) -> Self {
        CutsetList {
            cutsets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cutset> for CutsetList {
    fn extend<I: IntoIterator<Item = Cutset>>(&mut self, iter: I) {
        self.cutsets.extend(iter);
    }
}

impl IntoIterator for CutsetList {
    type Item = Cutset;
    type IntoIter = std::vec::IntoIter<Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.into_iter()
    }
}

impl<'a> IntoIterator for &'a CutsetList {
    type Item = &'a Cutset;
    type IntoIter = std::slice::Iter<'a, Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[usize]) -> Cutset {
        Cutset::new(ids.iter().map(|&i| NodeId::from_index(i)))
    }

    #[test]
    fn cutset_normalizes_order_and_duplicates() {
        let c = cs(&[3, 1, 3, 2]);
        assert_eq!(c.order(), 3);
        assert_eq!(
            c.events(),
            &[
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(3)
            ]
        );
        assert!(c.contains(NodeId::from_index(2)));
        assert!(!c.contains(NodeId::from_index(0)));
        assert_eq!(c.to_string(), "{n1, n2, n3}");
    }

    #[test]
    fn subset_relation() {
        assert!(cs(&[1, 3]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(cs(&[]).is_subset_of(&cs(&[1])));
        assert!(cs(&[1]).is_subset_of(&cs(&[1])));
        assert!(!cs(&[1, 4]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(!cs(&[1, 2, 3]).is_subset_of(&cs(&[1, 2])));
    }

    #[test]
    fn probability_is_product() {
        let c = cs(&[0, 1]);
        let p = c.probability_with(|id| if id.index() == 0 { 0.5 } else { 0.25 });
        assert!((p - 0.125).abs() < 1e-15);
        assert_eq!(cs(&[]).probability_with(|_| 0.0), 1.0);
    }

    #[test]
    fn minimize_removes_supersets_and_duplicates() {
        let list: CutsetList = [
            cs(&[1, 2]),
            cs(&[1, 2, 3]),
            cs(&[2]),
            cs(&[2]),
            cs(&[4, 5]),
            cs(&[5, 4]),
        ]
        .into_iter()
        .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&cs(&[2])));
        assert!(min.contains_set(&cs(&[4, 5])));
    }

    #[test]
    fn minimize_keeps_incomparable_sets() {
        let list: CutsetList = [cs(&[1, 2]), cs(&[2, 3]), cs(&[1, 3])]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 3);
    }

    #[test]
    fn minimize_handles_large_cutsets_via_counting_path() {
        // A 14-element cutset (beyond the enumeration limit) subsumed by a
        // small kept set, plus one that is not.
        let small = cs(&[3, 7]);
        let big_subsumed = cs(&(0..14).collect::<Vec<_>>()); // contains 3 and 7
        let big_kept = cs(&(20..34).collect::<Vec<_>>());
        let list: CutsetList = [small.clone(), big_subsumed, big_kept.clone()]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&small));
        assert!(min.contains_set(&big_kept));
    }

    #[test]
    fn rare_event_approximation_sums_products() {
        let list: CutsetList = [cs(&[0]), cs(&[1, 2])].into_iter().collect();
        let rea = list.rare_event_approximation(|_| 0.1);
        assert!((rea - (0.1 + 0.01)).abs() < 1e-15);
        // An empty list reports +0.0, not the -0.0 a bare f64 sum yields.
        let empty = CutsetList::new().rare_event_approximation(|_| 0.1);
        assert_eq!(empty.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sort_by_probability() {
        let mut list: CutsetList = [cs(&[1, 2]), cs(&[0])].into_iter().collect();
        list.sort_by_probability_desc(|_| 0.1);
        assert_eq!(list.get(0), Some(&cs(&[0])));
    }

    #[test]
    fn empty_cutset_subsumes_everything() {
        let list: CutsetList = [cs(&[]), cs(&[1]), cs(&[1, 2])].into_iter().collect();
        let min = list.minimize();
        assert_eq!(min.len(), 1);
        assert!(min.get(0).unwrap().is_empty());
    }
}
