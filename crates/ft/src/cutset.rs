use crate::hash::FxBuild;
use crate::node::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cutset: a set of basic events whose joint failure fails the top gate
/// (§IV-A of the paper).
///
/// Events are kept sorted and deduplicated; two cutsets are equal iff they
/// contain the same events.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cutset {
    events: Vec<NodeId>,
}

impl Cutset {
    /// Build a cutset from any collection of events (sorted, deduplicated).
    #[must_use]
    pub fn new<I>(events: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut events: Vec<NodeId> = events.into_iter().collect();
        events.sort_unstable();
        events.dedup();
        Cutset { events }
    }

    /// The events of the cutset, sorted by id.
    #[must_use]
    pub fn events(&self) -> &[NodeId] {
        &self.events
    }

    /// The order (number of events) of the cutset.
    #[must_use]
    pub fn order(&self) -> usize {
        self.events.len()
    }

    /// Whether the cutset is empty (fails the top gate unconditionally).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `event` is in the cutset.
    #[must_use]
    pub fn contains(&self, event: NodeId) -> bool {
        self.events.binary_search(&event).is_ok()
    }

    /// Whether every event of `self` is in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Cutset) -> bool {
        if self.events.len() > other.events.len() {
            return false;
        }
        // Merge walk over the two sorted lists.
        let mut oi = 0;
        'outer: for &e in &self.events {
            while oi < other.events.len() {
                match other.events[oi].cmp(&e) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `∏ p(a)` over the events of the cutset, with probabilities supplied
    /// by `prob` (property ii of §IV-A).
    #[must_use]
    pub fn probability_with<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        self.events.iter().map(|&e| prob(e)).product()
    }

    /// Remap every event id through `f` in place, reusing the
    /// allocation. `f` must be strictly monotone over the current
    /// (sorted, deduplicated) events, so the result needs no re-sort —
    /// the debug assertion checks it.
    #[must_use]
    pub fn map_events_monotone<F>(mut self, f: F) -> Self
    where
        F: FnMut(NodeId) -> NodeId,
    {
        let mut f = f;
        for e in &mut self.events {
            *e = f(*e);
        }
        debug_assert!(
            self.events.windows(2).all(|w| w[0] < w[1]),
            "event mapping must be strictly monotone"
        );
        self
    }

    /// Deterministic shard assignment for sharded minimization: an
    /// FxHash over the order and the sorted event list, reduced mod
    /// `shards`. Equal cutsets always land in the same shard (so
    /// duplicates co-locate), and the key depends only on the cutset —
    /// never on arrival order, thread count, or process state — so a
    /// sharded run partitions the candidate stream identically on every
    /// host.
    #[must_use]
    pub fn shard_key(&self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        use std::hash::{Hash, Hasher};
        let mut h = crate::hash::FxHasher::default();
        self.events.hash(&mut h);
        (h.finish() % shards as u64) as usize
    }
}

/// The canonical cutset ordering: ascending order, then lexicographic
/// events — the order every minimized list is reported in.
fn canonical_cmp(a: &Cutset, b: &Cutset) -> std::cmp::Ordering {
    a.order()
        .cmp(&b.order())
        .then_with(|| a.events.cmp(&b.events))
}

/// Visit every size-`s` subset of `events` (indices ascending,
/// lexicographic), calling `probe` on each; returns `true` at the first
/// probe that returns `true`. `comb` and `buf` are caller-owned scratch.
fn any_subset_of_size(
    events: &[NodeId],
    s: usize,
    comb: &mut Vec<usize>,
    buf: &mut Vec<NodeId>,
    mut probe: impl FnMut(&[NodeId]) -> bool,
) -> bool {
    let m = events.len();
    debug_assert!(s >= 1 && s < m);
    comb.clear();
    comb.extend(0..s);
    loop {
        buf.clear();
        buf.extend(comb.iter().map(|&i| events[i]));
        if probe(buf.as_slice()) {
            return true;
        }
        // Advance to the next combination of `s` indices out of `m`.
        let mut i = s;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if comb[i] != i + m - s {
                comb[i] += 1;
                for j in i + 1..s {
                    comb[j] = comb[j - 1] + 1;
                }
                break;
            }
        }
    }
}

impl FromIterator<NodeId> for Cutset {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Cutset::new(iter)
    }
}

impl fmt::Display for Cutset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A list of cutsets, typically the minimal cutsets of a fault tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CutsetList {
    cutsets: Vec<Cutset>,
}

impl CutsetList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing vector of cutsets (no minimization performed).
    #[must_use]
    pub fn from_vec(cutsets: Vec<Cutset>) -> Self {
        CutsetList { cutsets }
    }

    /// Number of cutsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cutsets.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cutsets.is_empty()
    }

    /// The cutsets, in list order.
    pub fn iter(&self) -> impl Iterator<Item = &Cutset> {
        self.cutsets.iter()
    }

    /// The `i`-th cutset.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Cutset> {
        self.cutsets.get(i)
    }

    /// Whether the list contains exactly this set of events.
    #[must_use]
    pub fn contains_set(&self, cutset: &Cutset) -> bool {
        self.cutsets.iter().any(|c| c == cutset)
    }

    /// Add a cutset (no minimization).
    pub fn push(&mut self, cutset: Cutset) {
        self.cutsets.push(cutset);
    }

    /// Remove duplicates and non-minimal cutsets, keeping exactly the
    /// minimal ones; the result is sorted by (order, events).
    ///
    /// Uses subset enumeration for small cutsets and an inverted-index
    /// counting pass for large ones, so minimizing lists with ~10^5
    /// cutsets of small order stays fast.
    #[must_use]
    pub fn minimize(self) -> Self {
        self.minimize_with_stats(1).0
    }

    /// Like [`minimize`](Self::minimize), sharded over `threads` worker
    /// threads, also returning the number of subset tests performed.
    ///
    /// A candidate is dropped iff some *other candidate* is a proper
    /// subset of it — equivalent to dropping against kept (minimal) sets
    /// only, because any non-minimal subset itself contains a minimal
    /// one. This makes every candidate's verdict independent of the
    /// others', so candidates shard into chunks freely; both the result
    /// and the comparison count are identical for every thread count.
    #[must_use]
    pub fn minimize_with_stats(mut self, threads: usize) -> (Self, u64) {
        const ENUM_LIMIT: usize = 12;
        const CHUNK: usize = 2048;
        self.cutsets.sort_unstable_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.events.cmp(&b.events))
        });
        self.cutsets.dedup();
        // An empty cutset (sorted first) subsumes every other set.
        if self.cutsets.first().is_some_and(Cutset::is_empty) {
            self.cutsets.truncate(1);
            return (self, 0);
        }
        let n = self.cutsets.len();
        if n <= 1 {
            return (self, 0);
        }

        let (keep, comparisons) = {
            let candidates = &self.cutsets;
            // Exact-set probe index, bucketed by order: a candidate of
            // order m can only be subsumed by sets of order < m, so
            // probes walk subset sizes ascending and skip sizes with no
            // candidates at all instead of paying for all 2^m subsets.
            let max_order = candidates.last().map_or(0, Cutset::order);
            let mut order_sets: Vec<HashSet<&[NodeId], FxBuild>> =
                (0..=max_order).map(|_| HashSet::default()).collect();
            for c in candidates {
                order_sets[c.order()].insert(c.events());
            }
            // Inverted index for the counting path, built only when some
            // candidate exceeds the enumeration limit (orders ascend).
            let needs_index = candidates.last().is_some_and(|c| c.order() > ENUM_LIMIT);
            let by_event: HashMap<NodeId, Vec<usize>, FxBuild> = if needs_index {
                let mut index: HashMap<NodeId, Vec<usize>, FxBuild> = HashMap::default();
                for (i, c) in candidates.iter().enumerate() {
                    for &e in c.events() {
                        index.entry(e).or_default().push(i);
                    }
                }
                index
            } else {
                HashMap::default()
            };

            // Whether candidate `ci` is minimal; `comparisons` counts the
            // subset tests. Self-contained per candidate.
            let check = |ci: usize, comparisons: &mut u64| -> bool {
                let cutset = &candidates[ci];
                if cutset.order() <= ENUM_LIMIT {
                    // Enumerate proper non-empty subsets by ascending
                    // size, skipping sizes with no candidates.
                    let m = cutset.order();
                    let mut comb: Vec<usize> = Vec::with_capacity(m);
                    let mut buf: Vec<NodeId> = Vec::with_capacity(m);
                    for (s, bucket) in order_sets.iter().enumerate().take(m).skip(1) {
                        if bucket.is_empty() {
                            continue;
                        }
                        let hit =
                            any_subset_of_size(cutset.events(), s, &mut comb, &mut buf, |sub| {
                                *comparisons += 1;
                                bucket.contains(sub)
                            });
                        if hit {
                            return false;
                        }
                    }
                    true
                } else {
                    // Counting pass over the inverted index: a smaller
                    // candidate K is a subset iff every one of its events
                    // is shared, i.e. its hit count reaches |K|. Only
                    // strictly smaller orders can be proper subsets, and
                    // orders ascend with the index, so the lists cut off
                    // early.
                    let mut hits: HashMap<usize, u32, FxBuild> = HashMap::default();
                    for &e in cutset.events() {
                        if let Some(list) = by_event.get(&e) {
                            for &ki in list {
                                if ki >= ci || candidates[ki].order() >= cutset.order() {
                                    break;
                                }
                                *comparisons += 1;
                                let hit = hits.entry(ki).or_insert(0);
                                *hit += 1;
                                if *hit as usize == candidates[ki].order() {
                                    return false;
                                }
                            }
                        }
                    }
                    true
                }
            };

            let mut keep = vec![true; n];
            let mut comparisons: u64 = 0;
            if threads <= 1 || n < 2 * CHUNK {
                for (ci, flag) in keep.iter_mut().enumerate() {
                    *flag = check(ci, &mut comparisons);
                }
            } else {
                // Deterministic sharding: fixed chunks claimed through an
                // atomic cursor; verdicts land at fixed offsets and the
                // comparison counts sum to the same total regardless of
                // which worker claims which chunk.
                let next = AtomicUsize::new(0);
                let chunks: Mutex<Vec<(usize, Vec<bool>, u64)>> = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            let mut local: Vec<(usize, Vec<bool>, u64)> = Vec::new();
                            loop {
                                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                                if start >= n {
                                    break;
                                }
                                let end = (start + CHUNK).min(n);
                                let mut flags = Vec::with_capacity(end - start);
                                let mut count = 0u64;
                                for ci in start..end {
                                    flags.push(check(ci, &mut count));
                                }
                                local.push((start, flags, count));
                            }
                            chunks.lock().expect("chunk results").append(&mut local);
                        });
                    }
                });
                for (start, flags, count) in chunks.lock().expect("chunk results").drain(..) {
                    keep[start..start + flags.len()].copy_from_slice(&flags);
                    comparisons += count;
                }
            }
            (keep, comparisons)
        };

        let cutsets = std::mem::take(&mut self.cutsets);
        self.cutsets = cutsets
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();
        (self, comparisons)
    }

    /// The rare-event approximation `Σ_C ∏_{a∈C} p(a)` over all cutsets in
    /// the list (§IV-A, property iii).
    #[must_use]
    pub fn rare_event_approximation<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        // `Sum for f64` folds from -0.0; normalize so an empty list
        // reports a plain 0.0.
        let sum: f64 = self
            .cutsets
            .iter()
            .map(|c| c.probability_with(&mut prob))
            .sum();
        sum + 0.0
    }

    /// Sort the list by descending cutset probability.
    pub fn sort_by_probability_desc<F>(&mut self, mut prob: F)
    where
        F: FnMut(NodeId) -> f64,
    {
        let mut keyed: Vec<(f64, Cutset)> = std::mem::take(&mut self.cutsets)
            .into_iter()
            .map(|c| (c.probability_with(&mut prob), c))
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        self.cutsets = keyed.into_iter().map(|(_, c)| c).collect();
    }
}

/// Controls when the incremental filter abandons per-offer probing for
/// a buffered one-pass merge (the "batch fallback").
///
/// [`Adaptive`](Self::Adaptive) watches the observed probe rate: when
/// offers are paying substantially more subset tests than the
/// enumeration floor a one-pass minimize would also pay (heavy eviction
/// churn, deferred-compaction sweeps), the minimizer stops probing per
/// offer and buffers candidates, merging them in sorted one-pass
/// batches instead. [`Always`]/[`Never`](Self::Never) force the
/// respective path, for tests and benchmarks.
///
/// [`Always`]: Self::Always
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackMode {
    /// Fall back per epoch when the cost model says streaming can't win.
    #[default]
    Adaptive,
    /// Buffer-and-merge from the first candidate.
    Always,
    /// Pure incremental probing, never buffer.
    Never,
}

impl std::str::FromStr for FallbackMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "adaptive" => Ok(FallbackMode::Adaptive),
            "always" => Ok(FallbackMode::Always),
            "never" => Ok(FallbackMode::Never),
            other => Err(format!(
                "unknown fallback mode `{other}` (expected adaptive, always or never)"
            )),
        }
    }
}

impl fmt::Display for FallbackMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FallbackMode::Adaptive => "adaptive",
            FallbackMode::Always => "always",
            FallbackMode::Never => "never",
        })
    }
}

/// Counters exposed by an [`IncrementalMinimizer`]. All counts depend on
/// the offer order, so a streaming pipeline must treat them as
/// schedule-dependent diagnostics, not part of the deterministic result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Candidates offered (including buffered ones).
    pub offered: u64,
    /// Subset tests performed (hashed probes, merge walks and counting
    /// steps alike).
    pub probes: u64,
    /// Offers rejected as duplicates or subsumed.
    pub rejects: u64,
    /// Kept sets evicted by a later-accepted subset.
    pub evictions: u64,
    /// Deferred-eviction sweeps run at compaction points.
    pub compactions: u64,
    /// Sorted one-pass merges of the fallback buffer.
    pub fallback_merges: u64,
    /// Whether this minimizer entered (or was forced into) the batch
    /// fallback.
    pub fell_back: bool,
}

/// Per-order exact-set probe bucket of the incremental minimizer.
#[derive(Debug, Default)]
struct OrderBucket {
    /// Event list → slot id of every live kept set of this order.
    map: HashMap<Box<[NodeId]>, u32, FxBuild>,
    /// Accept sequence of the newest accept *of this order whose
    /// superset eviction was deferred*. A live set needs re-probing at
    /// this size only when this exceeds its own verification sequence:
    /// any other subsumer would either have rejected it on offer
    /// (accepted earlier) or evicted it eagerly (accepted later,
    /// eviction not deferred).
    last_deferred: u32,
}

/// Online minimization of a stream of cutset candidates.
///
/// An [`offer`](Self::offer) is rejected when a kept set is a subset of
/// it (or an exact duplicate); kept supersets of an accepted candidate
/// are evicted, so [`into_sorted`](Self::into_sorted) returns exactly
/// [`CutsetList::minimize`] of the offered multiset, for every offer
/// order. A streaming pipeline can therefore keep only roughly the
/// current minimal sets resident instead of every candidate.
///
/// Rejection uses hashed subset enumeration against an index *bucketed
/// by order*: a candidate of order `m` can only be subsumed by kept
/// sets of order `< m`, so probes walk subset sizes ascending and skip
/// sizes that hold no kept sets, instead of paying for all `2^m − 2`
/// subsets. Per-offer cost does not grow with the number of kept sets.
///
/// Eviction of kept supersets is eager when the accepted candidate's
/// rarest event indexes few kept sets, and deferred otherwise. Deferred
/// evictions are settled by a sweep at the next compaction point
/// (residency doubling), pruned per slot: a live set is re-probed only
/// at sizes whose bucket recorded a deferred evictor *after* the set
/// was last verified minimal, which makes the sweep nearly free when
/// deferrals are rare and bounded by the deferred-evictor orders when
/// they are not.
///
/// [`absorb`](Self::absorb) is the verdict-free streaming entry point
/// that additionally honors a [`FallbackMode`]: buffered candidates are
/// merged in sorted one-pass batches whose per-candidate cost matches
/// the batch [`CutsetList::minimize`], for epochs where incremental
/// probing cannot win.
#[derive(Debug)]
pub struct IncrementalMinimizer {
    /// Kept cutsets; `None` marks an evicted slot (ids are never
    /// reused). The slot id doubles as the insertion sequence.
    slots: Vec<Option<Cutset>>,
    /// Exact event-list → slot id, bucketed by order, for duplicate
    /// detection and subset-enumeration probes.
    buckets: Vec<OrderBucket>,
    /// Event → slot ids whose cutset contains the event (may contain
    /// stale ids of evicted slots; compacted lazily).
    by_event: HashMap<NodeId, Vec<u32>, FxBuild>,
    /// Scratch for subset enumeration (reused across offers).
    subset_buf: Vec<NodeId>,
    /// Scratch combination indices for subset enumeration.
    comb_buf: Vec<usize>,
    /// The empty cutset subsumes everything; it lives outside the index.
    has_empty: bool,
    live: usize,
    /// Live kept sets per order, for the eviction pre-check: an accept
    /// of order `m` can only evict sets of order `> m`.
    live_by_order: Vec<u32>,
    /// Residency threshold that triggers the next compaction.
    compact_at: usize,
    /// Per-slot accept sequence at the last proof of minimality (the
    /// insert, or the last sweep that cleared it).
    verified: Vec<u32>,
    /// Monotone accept counter.
    accept_seq: u32,
    /// Whether any eviction has been deferred since the last sweep.
    deferred: bool,
    /// Accepted offers and the probes they spent on the accept path —
    /// the enumeration floor a one-pass minimize would also pay.
    accepts: u64,
    accept_probes: u64,
    mode: FallbackMode,
    /// Whether `absorb` currently buffers instead of probing.
    buffering: bool,
    buffer: Vec<Cutset>,
    stats: FilterStats,
}

impl Default for IncrementalMinimizer {
    fn default() -> Self {
        IncrementalMinimizer {
            slots: Vec::new(),
            buckets: Vec::new(),
            by_event: HashMap::default(),
            subset_buf: Vec::new(),
            comb_buf: Vec::new(),
            has_empty: false,
            live: 0,
            live_by_order: Vec::new(),
            compact_at: Self::MIN_COMPACT,
            verified: Vec::new(),
            accept_seq: 0,
            deferred: false,
            accepts: 0,
            accept_probes: 0,
            mode: FallbackMode::Adaptive,
            buffering: false,
            buffer: Vec::new(),
            stats: FilterStats::default(),
        }
    }
}

/// Probe for a live proper subset of `events` in the order-bucketed
/// index via subset enumeration. With `newer_than = Some(v)` only sizes
/// whose bucket recorded a deferred evictor after sequence `v` are
/// probed (the compaction sweep); `None` probes every non-empty size
/// (the offer path).
fn enum_probe(
    buckets: &[OrderBucket],
    events: &[NodeId],
    newer_than: Option<u32>,
    comb: &mut Vec<usize>,
    buf: &mut Vec<NodeId>,
    probes: &mut u64,
) -> bool {
    let m = events.len();
    for (s, bucket) in buckets.iter().enumerate().take(m).skip(1) {
        if bucket.map.is_empty() {
            continue;
        }
        if let Some(v) = newer_than {
            if bucket.last_deferred <= v {
                continue;
            }
        }
        let hit = any_subset_of_size(events, s, comb, buf, |sub| {
            *probes += 1;
            bucket.map.contains_key(sub)
        });
        if hit {
            return true;
        }
    }
    false
}

/// Counting-pass probe for a live proper subset of `events` (order
/// `m > ENUM_LIMIT`), skipping slot `skip_id` (the probed set itself
/// when it is already kept).
fn counting_probe(
    slots: &[Option<Cutset>],
    by_event: &HashMap<NodeId, Vec<u32>, FxBuild>,
    events: &[NodeId],
    m: usize,
    skip_id: u32,
    probes: &mut u64,
) -> bool {
    let mut hits: HashMap<u32, u32, FxBuild> = HashMap::default();
    for &e in events {
        let Some(list) = by_event.get(&e) else {
            continue;
        };
        for &ki in list {
            if ki == skip_id {
                continue;
            }
            let Some(kept) = slots[ki as usize].as_ref() else {
                continue;
            };
            if kept.order() >= m {
                continue;
            }
            *probes += 1;
            let hit = hits.entry(ki).or_insert(0);
            *hit += 1;
            if *hit as usize == kept.order() {
                return true;
            }
        }
    }
    false
}

impl IncrementalMinimizer {
    /// Largest candidate order handled by subset enumeration (the same
    /// bound as the batch [`CutsetList::minimize`]).
    const ENUM_LIMIT: usize = 12;
    /// Eager eviction scans the candidate's shortest index list only up
    /// to this length; longer scans are left to the next compaction.
    const EVICT_SCAN_LIMIT: usize = 64;
    /// Compactions never trigger below this residency, and the fallback
    /// buffer always holds at least this many candidates before a merge.
    const MIN_COMPACT: usize = 4096;
    /// The adaptive cost model is consulted every this many offers.
    const FALLBACK_CHECK: u64 = 8192;

    /// An empty minimizer with the default [`FallbackMode::Adaptive`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty minimizer with an explicit fallback mode (only
    /// [`absorb`](Self::absorb) buffers; [`offer`](Self::offer) always
    /// probes so its verdict stays exact).
    #[must_use]
    pub fn with_mode(mode: FallbackMode) -> Self {
        IncrementalMinimizer {
            mode,
            buffering: mode == FallbackMode::Always,
            stats: FilterStats {
                fell_back: mode == FallbackMode::Always,
                ..FilterStats::default()
            },
            ..Self::default()
        }
    }

    /// Number of currently resident cutsets, counting both kept sets
    /// and buffered fallback candidates. Between compactions this may
    /// exceed the true minimal count by the supersets whose eviction
    /// was deferred (at most a doubling before a compaction runs) plus
    /// the unmerged buffer (at most half the kept count, see
    /// [`absorb`](Self::absorb)).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.has_empty {
            1
        } else {
            self.live + self.buffer.len()
        }
    }

    /// Whether no cutset has been kept yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Subset tests performed so far. Unlike the batch count this
    /// depends on the offer order.
    #[must_use]
    pub fn comparisons(&self) -> u64 {
        self.stats.probes
    }

    /// The filter counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Offer a candidate. Returns `true` if it was kept (no kept set is
    /// a subset of it); kept proper supersets are evicted, eagerly when
    /// cheap and otherwise at the next compaction. Returns `false` if a
    /// kept set already subsumes it (including an exact duplicate).
    ///
    /// The verdict is exact: any pending fallback buffer is merged
    /// first so the answer accounts for every candidate absorbed so
    /// far.
    pub fn offer(&mut self, cutset: Cutset) -> bool {
        if !self.buffer.is_empty() {
            self.merge();
        }
        self.stats.offered += 1;
        self.offer_internal(cutset)
    }

    /// Verdict-free streaming ingestion honoring the [`FallbackMode`]:
    /// either probes immediately (and consults the adaptive cost model)
    /// or appends to the fallback buffer, which is merged in a sorted
    /// one-pass batch once it reaches half the kept count (at least
    /// [`MIN_COMPACT`](Self::MIN_COMPACT)) — keeping residency bounded
    /// while paying batch-minimize cost per unique candidate.
    pub fn absorb(&mut self, cutset: Cutset) {
        self.stats.offered += 1;
        if self.buffering {
            if self.has_empty {
                self.stats.rejects += 1;
                return;
            }
            self.buffer.push(cutset);
            if self.buffer.len() >= (self.live / 2).max(Self::MIN_COMPACT) {
                self.merge();
            }
        } else {
            self.offer_internal(cutset);
            self.maybe_fall_back();
        }
    }

    fn offer_internal(&mut self, cutset: Cutset) -> bool {
        if self.has_empty {
            self.stats.rejects += 1;
            return false;
        }
        if cutset.is_empty() {
            self.clear_kept();
            self.has_empty = true;
            return true;
        }
        let m = cutset.order();
        let probes_before = self.stats.probes;
        self.stats.probes += 1;
        if self
            .buckets
            .get(m)
            .is_some_and(|b| b.map.contains_key(cutset.events()))
        {
            self.stats.rejects += 1;
            return false; // exact duplicate
        }
        let subsumed = if m <= Self::ENUM_LIMIT {
            let mut comb = std::mem::take(&mut self.comb_buf);
            let mut buf = std::mem::take(&mut self.subset_buf);
            let mut probes = 0u64;
            let hit = enum_probe(
                &self.buckets,
                cutset.events(),
                None,
                &mut comb,
                &mut buf,
                &mut probes,
            );
            self.comb_buf = comb;
            self.subset_buf = buf;
            self.stats.probes += probes;
            hit
        } else {
            self.counting_probe_compacting(&cutset)
        };
        if subsumed {
            self.stats.rejects += 1;
            return false;
        }
        // Accepted.
        self.accepts += 1;
        self.accept_probes += self.stats.probes - probes_before;
        self.accept_seq += 1;
        // Kept supersets can only exist at strictly larger orders;
        // when none are live the eviction machinery is skipped whole.
        let may_have_supersets = self.live_by_order.iter().skip(m + 1).any(|&n| n > 0);
        if may_have_supersets && !self.evict_supersets_of(&cutset) {
            self.buckets_entry(m).last_deferred = self.accept_seq;
            self.deferred = true;
        }
        self.insert(cutset);
        if self.live >= self.compact_at {
            self.compact();
        }
        true
    }

    /// Counting-pass rejection probe for an oversized offer, compacting
    /// stale ids out of the index lists it walks.
    fn counting_probe_compacting(&mut self, cutset: &Cutset) -> bool {
        let m = cutset.order();
        let mut hits: HashMap<u32, u32, FxBuild> = HashMap::default();
        for &e in cutset.events() {
            let Some(list) = self.by_event.get_mut(&e) else {
                continue;
            };
            let mut w = 0;
            for r in 0..list.len() {
                let ki = list[r];
                let Some(kept) = self.slots[ki as usize].as_ref() else {
                    continue; // stale id — drop it while we're here
                };
                list[w] = ki;
                w += 1;
                if kept.order() >= m {
                    continue;
                }
                self.stats.probes += 1;
                let hit = hits.entry(ki).or_insert(0);
                *hit += 1;
                if *hit as usize == kept.order() {
                    // Early reject: `w..=r` was already compacted.
                    list.drain(w..=r);
                    return true;
                }
            }
            list.truncate(w);
        }
        false
    }

    /// Try to evict every kept proper superset of `cutset` eagerly.
    /// Returns `false` when the scan was too expensive and eviction is
    /// deferred to the next compaction sweep.
    fn evict_supersets_of(&mut self, cutset: &Cutset) -> bool {
        // Every superset contains every event of `cutset`, so scanning
        // the index list of its rarest event finds them all.
        let probe = cutset
            .events()
            .iter()
            .copied()
            .min_by_key(|e| self.by_event.get(e).map_or(0, Vec::len));
        let Some(e) = probe else {
            return true;
        };
        let len = self.by_event.get(&e).map_or(0, Vec::len);
        if len == 0 {
            return true;
        }
        if len > Self::EVICT_SCAN_LIMIT {
            return false;
        }
        let mut list = self.by_event.remove(&e).unwrap_or_default();
        let mut w = 0;
        for r in 0..list.len() {
            let ki = list[r];
            if self.slots[ki as usize].is_none() {
                continue; // stale id
            }
            self.stats.probes += 1;
            let subsumed = self.slots[ki as usize]
                .as_ref()
                .is_some_and(|kept| cutset.is_subset_of(kept));
            if subsumed {
                self.evict(ki);
                continue;
            }
            list[w] = ki;
            w += 1;
        }
        list.truncate(w);
        self.by_event.insert(e, list);
        true
    }

    fn evict(&mut self, id: u32) {
        let kept = self.slots[id as usize].take().expect("live slot");
        let order = kept.order();
        if let Some(bucket) = self.buckets.get_mut(order) {
            bucket.map.remove(kept.events());
        }
        self.live -= 1;
        self.live_by_order[order] -= 1;
        self.stats.evictions += 1;
    }

    fn buckets_entry(&mut self, order: usize) -> &mut OrderBucket {
        if self.buckets.len() <= order {
            self.buckets.resize_with(order + 1, OrderBucket::default);
        }
        &mut self.buckets[order]
    }

    fn insert(&mut self, cutset: Cutset) {
        let m = cutset.order();
        let id = u32::try_from(self.slots.len()).expect("slot ids fit in u32");
        for &e in cutset.events() {
            self.by_event.entry(e).or_default().push(id);
        }
        if self.live_by_order.len() <= m {
            self.live_by_order.resize(m + 1, 0);
        }
        self.buckets_entry(m)
            .map
            .insert(cutset.events().to_vec().into_boxed_slice(), id);
        self.slots.push(Some(cutset));
        self.verified.push(self.accept_seq);
        self.live += 1;
        self.live_by_order[m] += 1;
    }

    fn clear_kept(&mut self) {
        self.slots.clear();
        self.buckets.clear();
        self.by_event.clear();
        self.verified.clear();
        self.live = 0;
        self.live_by_order.clear();
        self.compact_at = Self::MIN_COMPACT;
        self.deferred = false;
        self.buffer.clear();
    }

    /// Settle deferred evictions if any, then raise the compaction
    /// threshold to double the (now exact) residency.
    fn compact(&mut self) {
        if self.deferred {
            self.stats.compactions += 1;
            self.sweep();
            self.deferred = false;
        }
        self.compact_at = (self.live * 2).max(Self::MIN_COMPACT);
    }

    /// Re-verify every live set against deferred evictors accepted
    /// since its last verification. A live set `T` can only have become
    /// non-minimal through a subsumer accepted after it (an earlier one
    /// would have rejected `T` on offer) whose eviction was deferred
    /// (an eager eviction would have removed `T` on the spot), so only
    /// sizes whose bucket recorded a deferred evictor after `T`'s
    /// verification sequence need re-probing — and any hit at those
    /// sizes is a genuine live proper subset, so evicting on it is
    /// sound even if the hit is not itself a deferred evictor.
    fn sweep(&mut self) {
        let current = self.accept_seq;
        let mut comb = std::mem::take(&mut self.comb_buf);
        let mut buf = std::mem::take(&mut self.subset_buf);
        for id in 0..self.slots.len() {
            let Some(cutset) = self.slots[id].as_ref() else {
                continue;
            };
            let t = cutset.order();
            let v = self.verified[id];
            let mut probes = 0u64;
            let subsumed = if t <= Self::ENUM_LIMIT {
                enum_probe(
                    &self.buckets,
                    cutset.events(),
                    Some(v),
                    &mut comb,
                    &mut buf,
                    &mut probes,
                )
            } else {
                let dirty = self
                    .buckets
                    .iter()
                    .take(t)
                    .skip(1)
                    .any(|b| !b.map.is_empty() && b.last_deferred > v);
                dirty
                    && counting_probe(
                        &self.slots,
                        &self.by_event,
                        cutset.events(),
                        t,
                        u32::try_from(id).expect("slot ids fit in u32"),
                        &mut probes,
                    )
            };
            self.stats.probes += probes;
            if subsumed {
                self.evict(u32::try_from(id).expect("slot ids fit in u32"));
            } else {
                self.verified[id] = current;
            }
        }
        self.comb_buf = comb;
        self.subset_buf = buf;
    }

    /// Merge the fallback buffer: sort canonically, drop duplicates,
    /// then run the one-pass offers in ascending (order, events) order —
    /// within the batch every subset precedes its supersets, so the
    /// merge performs no intra-batch evictions and pays exactly the
    /// batch-minimize enumeration per unique candidate.
    fn merge(&mut self) {
        let mut buffer = std::mem::take(&mut self.buffer);
        if buffer.is_empty() {
            return;
        }
        self.stats.fallback_merges += 1;
        buffer.sort_unstable_by(canonical_cmp);
        let before = buffer.len();
        buffer.dedup();
        self.stats.rejects += (before - buffer.len()) as u64;
        for cutset in buffer {
            self.offer_internal(cutset);
        }
    }

    /// The adaptive cost model: compare the observed probe rate per
    /// offer against the enumeration floor (probes spent on offers that
    /// were ultimately accepted — the part a one-pass minimize would
    /// also pay). When the overhead exceeds 50% the epoch switches to
    /// buffer-and-merge.
    fn maybe_fall_back(&mut self) {
        if self.mode != FallbackMode::Adaptive || self.buffering {
            return;
        }
        let offered = self.stats.offered;
        if offered < Self::FALLBACK_CHECK
            || !offered.is_multiple_of(Self::FALLBACK_CHECK)
            || self.accepts == 0
        {
            return;
        }
        // probes / offered > 1.5 × accept_probes / accepts, in integers.
        if self.stats.probes * 2 * self.accepts > self.accept_probes * 3 * offered {
            self.buffering = true;
            self.stats.fell_back = true;
        }
    }

    /// Consume the minimizer, returning the minimal cutsets sorted by
    /// (order, events) — the same canonical order the batch
    /// [`CutsetList::minimize`] produces — together with the final
    /// filter counters.
    #[must_use]
    pub fn finish(mut self) -> (Vec<Cutset>, FilterStats) {
        if !self.buffer.is_empty() {
            self.merge();
        }
        if self.has_empty {
            return (vec![Cutset::new([])], self.stats);
        }
        if self.deferred {
            self.stats.compactions += 1;
            self.sweep();
            self.deferred = false;
        }
        let mut kept: Vec<Cutset> = std::mem::take(&mut self.slots)
            .into_iter()
            .flatten()
            .collect();
        kept.sort_unstable_by(canonical_cmp);
        (kept, self.stats)
    }

    /// [`finish`](Self::finish) without the counters.
    #[must_use]
    pub fn into_sorted(self) -> Vec<Cutset> {
        self.finish().0
    }
}

impl FromIterator<Cutset> for CutsetList {
    fn from_iter<I: IntoIterator<Item = Cutset>>(iter: I) -> Self {
        CutsetList {
            cutsets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cutset> for CutsetList {
    fn extend<I: IntoIterator<Item = Cutset>>(&mut self, iter: I) {
        self.cutsets.extend(iter);
    }
}

impl IntoIterator for CutsetList {
    type Item = Cutset;
    type IntoIter = std::vec::IntoIter<Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.into_iter()
    }
}

impl<'a> IntoIterator for &'a CutsetList {
    type Item = &'a Cutset;
    type IntoIter = std::slice::Iter<'a, Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[usize]) -> Cutset {
        Cutset::new(ids.iter().map(|&i| NodeId::from_index(i)))
    }

    #[test]
    fn cutset_normalizes_order_and_duplicates() {
        let c = cs(&[3, 1, 3, 2]);
        assert_eq!(c.order(), 3);
        assert_eq!(
            c.events(),
            &[
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(3)
            ]
        );
        assert!(c.contains(NodeId::from_index(2)));
        assert!(!c.contains(NodeId::from_index(0)));
        assert_eq!(c.to_string(), "{n1, n2, n3}");
    }

    #[test]
    fn subset_relation() {
        assert!(cs(&[1, 3]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(cs(&[]).is_subset_of(&cs(&[1])));
        assert!(cs(&[1]).is_subset_of(&cs(&[1])));
        assert!(!cs(&[1, 4]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(!cs(&[1, 2, 3]).is_subset_of(&cs(&[1, 2])));
    }

    #[test]
    fn probability_is_product() {
        let c = cs(&[0, 1]);
        let p = c.probability_with(|id| if id.index() == 0 { 0.5 } else { 0.25 });
        assert!((p - 0.125).abs() < 1e-15);
        assert_eq!(cs(&[]).probability_with(|_| 0.0), 1.0);
    }

    #[test]
    fn minimize_removes_supersets_and_duplicates() {
        let list: CutsetList = [
            cs(&[1, 2]),
            cs(&[1, 2, 3]),
            cs(&[2]),
            cs(&[2]),
            cs(&[4, 5]),
            cs(&[5, 4]),
        ]
        .into_iter()
        .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&cs(&[2])));
        assert!(min.contains_set(&cs(&[4, 5])));
    }

    #[test]
    fn minimize_keeps_incomparable_sets() {
        let list: CutsetList = [cs(&[1, 2]), cs(&[2, 3]), cs(&[1, 3])]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 3);
    }

    #[test]
    fn minimize_handles_large_cutsets_via_counting_path() {
        // A 14-element cutset (beyond the enumeration limit) subsumed by a
        // small kept set, plus one that is not.
        let small = cs(&[3, 7]);
        let big_subsumed = cs(&(0..14).collect::<Vec<_>>()); // contains 3 and 7
        let big_kept = cs(&(20..34).collect::<Vec<_>>());
        let list: CutsetList = [small.clone(), big_subsumed, big_kept.clone()]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&small));
        assert!(min.contains_set(&big_kept));
    }

    #[test]
    fn rare_event_approximation_sums_products() {
        let list: CutsetList = [cs(&[0]), cs(&[1, 2])].into_iter().collect();
        let rea = list.rare_event_approximation(|_| 0.1);
        assert!((rea - (0.1 + 0.01)).abs() < 1e-15);
        // An empty list reports +0.0, not the -0.0 a bare f64 sum yields.
        let empty = CutsetList::new().rare_event_approximation(|_| 0.1);
        assert_eq!(empty.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sort_by_probability() {
        let mut list: CutsetList = [cs(&[1, 2]), cs(&[0])].into_iter().collect();
        list.sort_by_probability_desc(|_| 0.1);
        assert_eq!(list.get(0), Some(&cs(&[0])));
    }

    #[test]
    fn minimize_with_stats_is_thread_count_independent() {
        // Enough cutsets to cross the parallel-sharding threshold, built
        // from a deterministic LCG so supersets, duplicates and large
        // (counting-path) cutsets all occur.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut rng = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as usize
        };
        let mut cutsets: Vec<Cutset> = Vec::new();
        for _ in 0..5000 {
            let order = 1 + rng() % 5;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 40)),
            ));
        }
        for _ in 0..50 {
            // Oversized cutsets exercise the inverted-index path.
            let order = 13 + rng() % 4;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 40)),
            ));
        }
        let (reference, ref_comparisons) =
            CutsetList::from_vec(cutsets.clone()).minimize_with_stats(1);
        assert!(!reference.is_empty());
        assert!(reference.len() < cutsets.len());
        for threads in [2, 4, 8] {
            let (minimized, comparisons) =
                CutsetList::from_vec(cutsets.clone()).minimize_with_stats(threads);
            assert_eq!(reference, minimized, "threads = {threads}");
            assert_eq!(ref_comparisons, comparisons, "threads = {threads}");
        }
        // And a sample of verdicts agrees with the quadratic definition.
        for (i, c) in cutsets.iter().enumerate().step_by(9) {
            let minimal = !cutsets.iter().any(|k| k != c && k.is_subset_of(c));
            assert_eq!(minimal, reference.contains_set(c), "cutset {i}");
        }
    }

    #[test]
    fn empty_cutset_subsumes_everything() {
        let list: CutsetList = [cs(&[]), cs(&[1]), cs(&[1, 2])].into_iter().collect();
        let min = list.minimize();
        assert_eq!(min.len(), 1);
        assert!(min.get(0).unwrap().is_empty());
    }

    #[test]
    fn incremental_offer_verdicts() {
        let mut inc = IncrementalMinimizer::new();
        assert!(inc.offer(cs(&[1, 2])));
        assert!(!inc.offer(cs(&[1, 2]))); // duplicate
        assert!(!inc.offer(cs(&[1, 2, 3]))); // superset of a kept set
        assert!(inc.offer(cs(&[2]))); // evicts {1,2}
        assert_eq!(inc.len(), 1);
        assert!(inc.offer(cs(&[4, 5])));
        assert!(inc.comparisons() > 0);
        assert_eq!(inc.into_sorted(), vec![cs(&[2]), cs(&[4, 5])]);
    }

    #[test]
    fn incremental_empty_cutset_wins() {
        let mut inc = IncrementalMinimizer::new();
        assert!(inc.offer(cs(&[1])));
        assert!(inc.offer(cs(&[])));
        assert_eq!(inc.len(), 1);
        assert!(!inc.offer(cs(&[7])));
        assert_eq!(inc.into_sorted(), vec![cs(&[])]);
    }

    #[test]
    fn incremental_matches_batch_on_random_streams() {
        // Same LCG recipe as the batch determinism test: duplicates,
        // supersets and oversized cutsets, offered in several different
        // orders — the surviving set must equal the batch minimization
        // regardless of order.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as usize
        };
        let mut cutsets: Vec<Cutset> = Vec::new();
        for _ in 0..3000 {
            let order = 1 + rng() % 5;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 32)),
            ));
        }
        for _ in 0..40 {
            let order = 13 + rng() % 4;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 32)),
            ));
        }
        let reference: Vec<Cutset> = CutsetList::from_vec(cutsets.clone())
            .minimize()
            .into_iter()
            .collect();
        for pass in 0..3 {
            let mut stream = cutsets.clone();
            match pass {
                0 => {}
                1 => stream.reverse(),
                _ => {
                    // Deterministic shuffle.
                    let mut s: u64 = 0xdead_beef;
                    for i in (1..stream.len()).rev() {
                        s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        stream.swap(i, (s >> 33) as usize % (i + 1));
                    }
                }
            }
            let mut inc = IncrementalMinimizer::new();
            for c in stream {
                inc.offer(c);
            }
            assert_eq!(inc.into_sorted(), reference, "pass {pass}");
        }
    }

    /// Deterministic LCG stream with duplicates, supersets and
    /// oversized (counting-path) cutsets.
    fn lcg_stream(seed: u64, small: usize, big: usize, universe: usize) -> Vec<Cutset> {
        let mut state = seed;
        let mut rng = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as usize
        };
        let mut cutsets: Vec<Cutset> = Vec::new();
        for _ in 0..small {
            let order = 1 + rng() % 5;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % universe)),
            ));
        }
        for _ in 0..big {
            let order = 13 + rng() % 4;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % universe)),
            ));
        }
        cutsets
    }

    #[test]
    fn absorb_fallback_modes_match_batch_on_random_streams() {
        let cutsets = lcg_stream(0x1234_5678_9abc_def0, 4000, 30, 36);
        let reference: Vec<Cutset> = CutsetList::from_vec(cutsets.clone())
            .minimize()
            .into_iter()
            .collect();
        for mode in [
            FallbackMode::Adaptive,
            FallbackMode::Always,
            FallbackMode::Never,
        ] {
            let mut inc = IncrementalMinimizer::with_mode(mode);
            for c in cutsets.iter().cloned() {
                inc.absorb(c);
            }
            let offered = inc.stats().offered;
            assert_eq!(offered, cutsets.len() as u64, "mode {mode}");
            let (sorted, stats) = inc.finish();
            assert_eq!(sorted, reference, "mode {mode}");
            if mode == FallbackMode::Always {
                assert!(stats.fell_back, "Always must report the fallback");
                assert!(stats.fallback_merges >= 1, "Always must merge");
            }
            if mode == FallbackMode::Never {
                assert!(!stats.fell_back, "Never must not fall back");
                assert_eq!(stats.fallback_merges, 0, "Never must not merge");
            }
            assert_eq!(
                stats.offered - stats.rejects,
                reference.len() as u64 + stats.evictions,
                "mode {mode}: accepts must equal survivors plus evictions"
            );
        }
    }

    #[test]
    fn sharded_partition_reassembles_to_batch() {
        let cutsets = lcg_stream(0x0fed_cba9_8765_4321, 3000, 25, 30);
        let reference = CutsetList::from_vec(cutsets.clone()).minimize();
        for shards in [1usize, 2, 4, 8] {
            // Shard keys are deterministic and in range.
            for c in &cutsets {
                let key = c.shard_key(shards);
                assert!(key < shards);
                assert_eq!(key, c.shard_key(shards));
            }
            for mode in [FallbackMode::Never, FallbackMode::Always] {
                let mut minimizers: Vec<IncrementalMinimizer> = (0..shards)
                    .map(|_| IncrementalMinimizer::with_mode(mode))
                    .collect();
                for c in cutsets.iter().cloned() {
                    let key = c.shard_key(shards);
                    minimizers[key].absorb(c);
                }
                // A globally minimal set survives its own shard (its
                // subsets land elsewhere at worst), so re-minimizing the
                // union of the per-shard antichains is exact.
                let union: Vec<Cutset> = minimizers
                    .into_iter()
                    .flat_map(|m| m.into_sorted())
                    .collect();
                let (reconciled, _) = CutsetList::from_vec(union).minimize_with_stats(1);
                assert_eq!(reconciled, reference, "shards {shards}, mode {mode}");
            }
        }
    }

    #[test]
    fn deferred_evictions_settle_at_finish() {
        // 70 supersets sharing event 0 make the rarest-event list longer
        // than the eager-scan limit, so accepting {0} defers all 70
        // evictions to the sweep.
        let mut inc = IncrementalMinimizer::new();
        for k in 1..=70 {
            assert!(inc.offer(cs(&[0, k])));
        }
        assert!(inc.offer(cs(&[0])));
        assert_eq!(inc.len(), 71, "evictions must be deferred, not eager");
        let (sorted, stats) = inc.finish();
        assert_eq!(sorted, vec![cs(&[0])]);
        assert_eq!(stats.evictions, 70);
        assert!(stats.compactions >= 1, "finish must run the sweep");
    }

    #[test]
    fn absorbed_empty_cutset_wins_through_the_buffer() {
        let mut inc = IncrementalMinimizer::with_mode(FallbackMode::Always);
        inc.absorb(cs(&[1, 2]));
        inc.absorb(cs(&[]));
        inc.absorb(cs(&[3]));
        let (sorted, _) = inc.finish();
        assert_eq!(sorted, vec![cs(&[])]);
    }

    #[test]
    fn incremental_bounds_residency_under_eviction_churn() {
        // Offer supersets first, then the small sets that evict them;
        // the kept count must track the true minimal count, and stale
        // index entries must not corrupt later verdicts.
        let mut inc = IncrementalMinimizer::new();
        for i in 0..100 {
            assert!(inc.offer(cs(&[i, i + 100, i + 200])));
        }
        for i in 0..100 {
            assert!(inc.offer(cs(&[i])));
            assert!(!inc.offer(cs(&[i, i + 100, i + 200])));
        }
        assert_eq!(inc.len(), 100);
        let kept = inc.into_sorted();
        assert!(kept.iter().all(|c| c.order() == 1));
    }
}
