use crate::hash::FxBuild;
use crate::node::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cutset: a set of basic events whose joint failure fails the top gate
/// (§IV-A of the paper).
///
/// Events are kept sorted and deduplicated; two cutsets are equal iff they
/// contain the same events.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cutset {
    events: Vec<NodeId>,
}

impl Cutset {
    /// Build a cutset from any collection of events (sorted, deduplicated).
    #[must_use]
    pub fn new<I>(events: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut events: Vec<NodeId> = events.into_iter().collect();
        events.sort_unstable();
        events.dedup();
        Cutset { events }
    }

    /// The events of the cutset, sorted by id.
    #[must_use]
    pub fn events(&self) -> &[NodeId] {
        &self.events
    }

    /// The order (number of events) of the cutset.
    #[must_use]
    pub fn order(&self) -> usize {
        self.events.len()
    }

    /// Whether the cutset is empty (fails the top gate unconditionally).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `event` is in the cutset.
    #[must_use]
    pub fn contains(&self, event: NodeId) -> bool {
        self.events.binary_search(&event).is_ok()
    }

    /// Whether every event of `self` is in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Cutset) -> bool {
        if self.events.len() > other.events.len() {
            return false;
        }
        // Merge walk over the two sorted lists.
        let mut oi = 0;
        'outer: for &e in &self.events {
            while oi < other.events.len() {
                match other.events[oi].cmp(&e) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `∏ p(a)` over the events of the cutset, with probabilities supplied
    /// by `prob` (property ii of §IV-A).
    #[must_use]
    pub fn probability_with<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        self.events.iter().map(|&e| prob(e)).product()
    }
}

impl FromIterator<NodeId> for Cutset {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Cutset::new(iter)
    }
}

impl fmt::Display for Cutset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A list of cutsets, typically the minimal cutsets of a fault tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CutsetList {
    cutsets: Vec<Cutset>,
}

impl CutsetList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing vector of cutsets (no minimization performed).
    #[must_use]
    pub fn from_vec(cutsets: Vec<Cutset>) -> Self {
        CutsetList { cutsets }
    }

    /// Number of cutsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cutsets.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cutsets.is_empty()
    }

    /// The cutsets, in list order.
    pub fn iter(&self) -> impl Iterator<Item = &Cutset> {
        self.cutsets.iter()
    }

    /// The `i`-th cutset.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Cutset> {
        self.cutsets.get(i)
    }

    /// Whether the list contains exactly this set of events.
    #[must_use]
    pub fn contains_set(&self, cutset: &Cutset) -> bool {
        self.cutsets.iter().any(|c| c == cutset)
    }

    /// Add a cutset (no minimization).
    pub fn push(&mut self, cutset: Cutset) {
        self.cutsets.push(cutset);
    }

    /// Remove duplicates and non-minimal cutsets, keeping exactly the
    /// minimal ones; the result is sorted by (order, events).
    ///
    /// Uses subset enumeration for small cutsets and an inverted-index
    /// counting pass for large ones, so minimizing lists with ~10^5
    /// cutsets of small order stays fast.
    #[must_use]
    pub fn minimize(self) -> Self {
        self.minimize_with_stats(1).0
    }

    /// Like [`minimize`](Self::minimize), sharded over `threads` worker
    /// threads, also returning the number of subset tests performed.
    ///
    /// A candidate is dropped iff some *other candidate* is a proper
    /// subset of it — equivalent to dropping against kept (minimal) sets
    /// only, because any non-minimal subset itself contains a minimal
    /// one. This makes every candidate's verdict independent of the
    /// others', so candidates shard into chunks freely; both the result
    /// and the comparison count are identical for every thread count.
    #[must_use]
    pub fn minimize_with_stats(mut self, threads: usize) -> (Self, u64) {
        const ENUM_LIMIT: usize = 12;
        const CHUNK: usize = 2048;
        self.cutsets.sort_unstable_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.events.cmp(&b.events))
        });
        self.cutsets.dedup();
        // An empty cutset (sorted first) subsumes every other set.
        if self.cutsets.first().is_some_and(Cutset::is_empty) {
            self.cutsets.truncate(1);
            return (self, 0);
        }
        let n = self.cutsets.len();
        if n <= 1 {
            return (self, 0);
        }

        let (keep, comparisons) = {
            let candidates = &self.cutsets;
            let sets: HashSet<&[NodeId], FxBuild> = candidates.iter().map(Cutset::events).collect();
            // Inverted index for the counting path, built only when some
            // candidate exceeds the enumeration limit (orders ascend).
            let needs_index = candidates.last().is_some_and(|c| c.order() > ENUM_LIMIT);
            let by_event: HashMap<NodeId, Vec<usize>, FxBuild> = if needs_index {
                let mut index: HashMap<NodeId, Vec<usize>, FxBuild> = HashMap::default();
                for (i, c) in candidates.iter().enumerate() {
                    for &e in c.events() {
                        index.entry(e).or_default().push(i);
                    }
                }
                index
            } else {
                HashMap::default()
            };

            // Whether candidate `ci` is minimal; `comparisons` counts the
            // subset tests. Self-contained per candidate.
            let check = |ci: usize, comparisons: &mut u64| -> bool {
                let cutset = &candidates[ci];
                if cutset.order() <= ENUM_LIMIT {
                    // Enumerate all proper non-empty subsets and look
                    // them up in the full candidate set.
                    let m = cutset.order();
                    let full = (1u32 << m) - 1;
                    let mut buf: Vec<NodeId> = Vec::with_capacity(m);
                    for mask in 1..full {
                        buf.clear();
                        for (bit, &e) in cutset.events.iter().enumerate() {
                            if mask >> bit & 1 == 1 {
                                buf.push(e);
                            }
                        }
                        *comparisons += 1;
                        if sets.contains(buf.as_slice()) {
                            return false;
                        }
                    }
                    true
                } else {
                    // Counting pass over the inverted index: a smaller
                    // candidate K is a subset iff every one of its events
                    // is shared, i.e. its hit count reaches |K|. Only
                    // strictly smaller orders can be proper subsets, and
                    // orders ascend with the index, so the lists cut off
                    // early.
                    let mut hits: HashMap<usize, u32, FxBuild> = HashMap::default();
                    for &e in cutset.events() {
                        if let Some(list) = by_event.get(&e) {
                            for &ki in list {
                                if ki >= ci || candidates[ki].order() >= cutset.order() {
                                    break;
                                }
                                *comparisons += 1;
                                let hit = hits.entry(ki).or_insert(0);
                                *hit += 1;
                                if *hit as usize == candidates[ki].order() {
                                    return false;
                                }
                            }
                        }
                    }
                    true
                }
            };

            let mut keep = vec![true; n];
            let mut comparisons: u64 = 0;
            if threads <= 1 || n < 2 * CHUNK {
                for (ci, flag) in keep.iter_mut().enumerate() {
                    *flag = check(ci, &mut comparisons);
                }
            } else {
                // Deterministic sharding: fixed chunks claimed through an
                // atomic cursor; verdicts land at fixed offsets and the
                // comparison counts sum to the same total regardless of
                // which worker claims which chunk.
                let next = AtomicUsize::new(0);
                let chunks: Mutex<Vec<(usize, Vec<bool>, u64)>> = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            let mut local: Vec<(usize, Vec<bool>, u64)> = Vec::new();
                            loop {
                                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                                if start >= n {
                                    break;
                                }
                                let end = (start + CHUNK).min(n);
                                let mut flags = Vec::with_capacity(end - start);
                                let mut count = 0u64;
                                for ci in start..end {
                                    flags.push(check(ci, &mut count));
                                }
                                local.push((start, flags, count));
                            }
                            chunks.lock().expect("chunk results").append(&mut local);
                        });
                    }
                });
                for (start, flags, count) in chunks.lock().expect("chunk results").drain(..) {
                    keep[start..start + flags.len()].copy_from_slice(&flags);
                    comparisons += count;
                }
            }
            (keep, comparisons)
        };

        let cutsets = std::mem::take(&mut self.cutsets);
        self.cutsets = cutsets
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();
        (self, comparisons)
    }

    /// The rare-event approximation `Σ_C ∏_{a∈C} p(a)` over all cutsets in
    /// the list (§IV-A, property iii).
    #[must_use]
    pub fn rare_event_approximation<F>(&self, mut prob: F) -> f64
    where
        F: FnMut(NodeId) -> f64,
    {
        // `Sum for f64` folds from -0.0; normalize so an empty list
        // reports a plain 0.0.
        let sum: f64 = self
            .cutsets
            .iter()
            .map(|c| c.probability_with(&mut prob))
            .sum();
        sum + 0.0
    }

    /// Sort the list by descending cutset probability.
    pub fn sort_by_probability_desc<F>(&mut self, mut prob: F)
    where
        F: FnMut(NodeId) -> f64,
    {
        let mut keyed: Vec<(f64, Cutset)> = std::mem::take(&mut self.cutsets)
            .into_iter()
            .map(|c| (c.probability_with(&mut prob), c))
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        self.cutsets = keyed.into_iter().map(|(_, c)| c).collect();
    }
}

/// Online minimization of a stream of cutset candidates.
///
/// An [`offer`](Self::offer) is rejected when a kept set is a subset of
/// it (or an exact duplicate); kept supersets of an accepted candidate
/// are evicted, so [`into_sorted`](Self::into_sorted) returns exactly
/// [`CutsetList::minimize`] of the offered multiset, for every offer
/// order. A streaming pipeline can therefore keep only roughly the
/// current minimal sets resident instead of every candidate.
///
/// Rejection uses the same hashed subset enumeration as the batch path
/// (all `2^m − 2` proper subsets of a small candidate are looked up in
/// an exact-set hash), so the per-offer cost does not grow with the
/// number of kept sets. Eviction is performed eagerly only when the
/// candidate's rarest event indexes few kept sets; otherwise the
/// subsumed supersets stay resident until the next compaction — a batch
/// re-minimize triggered whenever residency doubles — which keeps
/// [`len`](Self::len) within a small factor of the true minimal count
/// with amortized batch-like cost.
#[derive(Debug)]
pub struct IncrementalMinimizer {
    /// Kept cutsets; `None` marks an evicted slot (ids are never reused
    /// between compactions).
    slots: Vec<Option<Cutset>>,
    /// Exact event-list → slot id of every kept cutset, for duplicate
    /// detection and subset-enumeration lookups.
    by_events: HashMap<Box<[NodeId]>, usize, FxBuild>,
    /// Event → slot ids whose cutset contains the event (may contain
    /// stale ids of evicted slots; rebuilt on compaction).
    by_event: HashMap<NodeId, Vec<usize>, FxBuild>,
    /// Scratch for subset enumeration (reused across offers).
    subset_buf: Vec<NodeId>,
    /// The empty cutset subsumes everything; it lives outside the index.
    has_empty: bool,
    live: usize,
    /// Residency threshold that triggers the next compaction.
    compact_at: usize,
    comparisons: u64,
}

impl Default for IncrementalMinimizer {
    fn default() -> Self {
        IncrementalMinimizer {
            slots: Vec::new(),
            by_events: HashMap::default(),
            by_event: HashMap::default(),
            subset_buf: Vec::new(),
            has_empty: false,
            live: 0,
            compact_at: Self::MIN_COMPACT,
            comparisons: 0,
        }
    }
}

impl IncrementalMinimizer {
    /// Largest candidate order handled by subset enumeration (the same
    /// bound as the batch [`CutsetList::minimize`]).
    const ENUM_LIMIT: usize = 12;
    /// Eager eviction scans the candidate's shortest index list only up
    /// to this length; longer scans are left to the next compaction.
    const EVICT_SCAN_LIMIT: usize = 64;
    /// Compactions never trigger below this residency.
    const MIN_COMPACT: usize = 4096;

    /// An empty minimizer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently resident cutsets. Between compactions this
    /// may exceed the true minimal count by the supersets whose eviction
    /// was deferred (at most a doubling before a compaction runs).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.has_empty {
            1
        } else {
            self.live
        }
    }

    /// Whether no cutset has been kept yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Subset tests performed so far. Unlike the batch count this
    /// depends on the offer order.
    #[must_use]
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Offer a candidate. Returns `true` if it was kept (no kept set is
    /// a subset of it); kept proper supersets are evicted, eagerly when
    /// cheap and otherwise at the next compaction. Returns `false` if a
    /// kept set already subsumes it (including an exact duplicate).
    pub fn offer(&mut self, cutset: Cutset) -> bool {
        if self.has_empty {
            return false;
        }
        if cutset.is_empty() {
            self.slots.clear();
            self.by_events.clear();
            self.by_event.clear();
            self.live = 0;
            self.compact_at = Self::MIN_COMPACT;
            self.has_empty = true;
            return true;
        }
        self.comparisons += 1;
        if self.by_events.contains_key(cutset.events()) {
            return false; // exact duplicate
        }
        let m = cutset.order();
        if m <= Self::ENUM_LIMIT {
            // Enumerate all proper non-empty subsets and look them up in
            // the exact-set hash — a kept subset rejects the candidate.
            let full = (1u32 << m) - 1;
            let mut buf = std::mem::take(&mut self.subset_buf);
            for mask in 1..full {
                buf.clear();
                for (bit, &e) in cutset.events().iter().enumerate() {
                    if mask >> bit & 1 == 1 {
                        buf.push(e);
                    }
                }
                self.comparisons += 1;
                if self.by_events.contains_key(buf.as_slice()) {
                    self.subset_buf = buf;
                    return false;
                }
            }
            self.subset_buf = buf;
        } else {
            // Counting pass over the inverted index for the rare
            // oversized candidate: a kept set of smaller order is a
            // subset iff its hit count reaches its own order.
            let mut hits: HashMap<usize, u32, FxBuild> = HashMap::default();
            for &e in cutset.events() {
                let Some(list) = self.by_event.get_mut(&e) else {
                    continue;
                };
                let mut w = 0;
                for r in 0..list.len() {
                    let ki = list[r];
                    let Some(kept) = self.slots[ki].as_ref() else {
                        continue; // stale id — drop it while we're here
                    };
                    list[w] = ki;
                    w += 1;
                    if kept.order() >= m {
                        continue;
                    }
                    self.comparisons += 1;
                    let hit = hits.entry(ki).or_insert(0);
                    *hit += 1;
                    if *hit as usize == kept.order() {
                        // Early reject: `w..=r` was already compacted.
                        list.drain(w..=r);
                        return false;
                    }
                }
                list.truncate(w);
            }
        }
        // Accepted. Evict kept proper supersets now if the candidate's
        // rarest event indexes few enough kept sets to scan cheaply;
        // otherwise they stay until the next compaction.
        let probe = cutset
            .events()
            .iter()
            .copied()
            .min_by_key(|e| self.by_event.get(e).map_or(0, Vec::len));
        if let Some(e) = probe {
            let len = self.by_event.get(&e).map_or(0, Vec::len);
            if len > 0 && len <= Self::EVICT_SCAN_LIMIT {
                let mut list = self.by_event.remove(&e).unwrap_or_default();
                let mut w = 0;
                for r in 0..list.len() {
                    let ki = list[r];
                    if self.slots[ki].is_none() {
                        continue; // stale id
                    }
                    self.comparisons += 1;
                    let subsumed = self.slots[ki]
                        .as_ref()
                        .is_some_and(|kept| cutset.is_subset_of(kept));
                    if subsumed {
                        let kept = self.slots[ki].take().expect("live slot");
                        self.by_events.remove(kept.events());
                        self.live -= 1;
                        continue;
                    }
                    list[w] = ki;
                    w += 1;
                }
                list.truncate(w);
                self.by_event.insert(e, list);
            }
        }
        let id = self.slots.len();
        for &e in cutset.events() {
            self.by_event.entry(e).or_default().push(id);
        }
        self.by_events
            .insert(cutset.events().to_vec().into_boxed_slice(), id);
        self.slots.push(Some(cutset));
        self.live += 1;
        if self.live >= self.compact_at {
            self.compact();
        }
        true
    }

    /// Whether some *other* kept set is a proper subset of `cutset`
    /// (which is itself kept, so the exact-match lookup never fires).
    fn has_kept_proper_subset(
        &self,
        cutset: &Cutset,
        buf: &mut Vec<NodeId>,
        tests: &mut u64,
    ) -> bool {
        let m = cutset.order();
        if m <= Self::ENUM_LIMIT {
            let full = (1u32 << m) - 1;
            for mask in 1..full {
                buf.clear();
                for (bit, &e) in cutset.events().iter().enumerate() {
                    if mask >> bit & 1 == 1 {
                        buf.push(e);
                    }
                }
                *tests += 1;
                if self.by_events.contains_key(buf.as_slice()) {
                    return true;
                }
            }
            false
        } else {
            let mut hits: HashMap<usize, u32, FxBuild> = HashMap::default();
            for &e in cutset.events() {
                let Some(list) = self.by_event.get(&e) else {
                    continue;
                };
                for &ki in list {
                    let Some(kept) = self.slots[ki].as_ref() else {
                        continue;
                    };
                    if kept.order() >= m {
                        continue;
                    }
                    *tests += 1;
                    let hit = hits.entry(ki).or_insert(0);
                    *hit += 1;
                    if *hit as usize == kept.order() {
                        return true;
                    }
                }
            }
            false
        }
    }

    /// Drop resident sets whose eviction was deferred. A kept set's
    /// subsumer was necessarily accepted *after* it (an earlier kept
    /// subset would have rejected it on offer), and the offered-minimal
    /// sets are never evicted, so every non-minimal resident set still
    /// has a minimal proper subset in `by_events` — one hashed
    /// subset-enumeration pass over the residents restores exact
    /// minimality in place, with no re-sort or index rebuild. Doubling
    /// `compact_at` keeps the amortized cost linear in the offers.
    fn compact(&mut self) {
        let mut tests = 0u64;
        let mut buf = std::mem::take(&mut self.subset_buf);
        let mut doomed: Vec<usize> = Vec::new();
        for i in 0..self.slots.len() {
            if let Some(c) = &self.slots[i] {
                if self.has_kept_proper_subset(c, &mut buf, &mut tests) {
                    doomed.push(i);
                }
            }
        }
        for i in doomed {
            let c = self.slots[i].take().expect("doomed slot is live");
            self.by_events.remove(c.events());
            self.live -= 1;
        }
        self.subset_buf = buf;
        self.comparisons += tests;
        self.compact_at = (self.live * 2).max(Self::MIN_COMPACT);
    }

    /// Consume the minimizer, returning the minimal cutsets sorted by
    /// (order, events) — the same canonical order the batch
    /// [`CutsetList::minimize`] produces.
    #[must_use]
    pub fn into_sorted(mut self) -> Vec<Cutset> {
        if self.has_empty {
            return vec![Cutset::new([])];
        }
        self.compact();
        let mut kept: Vec<Cutset> = self.slots.into_iter().flatten().collect();
        kept.sort_unstable_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.events.cmp(&b.events))
        });
        kept
    }
}

impl FromIterator<Cutset> for CutsetList {
    fn from_iter<I: IntoIterator<Item = Cutset>>(iter: I) -> Self {
        CutsetList {
            cutsets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cutset> for CutsetList {
    fn extend<I: IntoIterator<Item = Cutset>>(&mut self, iter: I) {
        self.cutsets.extend(iter);
    }
}

impl IntoIterator for CutsetList {
    type Item = Cutset;
    type IntoIter = std::vec::IntoIter<Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.into_iter()
    }
}

impl<'a> IntoIterator for &'a CutsetList {
    type Item = &'a Cutset;
    type IntoIter = std::slice::Iter<'a, Cutset>;

    fn into_iter(self) -> Self::IntoIter {
        self.cutsets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[usize]) -> Cutset {
        Cutset::new(ids.iter().map(|&i| NodeId::from_index(i)))
    }

    #[test]
    fn cutset_normalizes_order_and_duplicates() {
        let c = cs(&[3, 1, 3, 2]);
        assert_eq!(c.order(), 3);
        assert_eq!(
            c.events(),
            &[
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(3)
            ]
        );
        assert!(c.contains(NodeId::from_index(2)));
        assert!(!c.contains(NodeId::from_index(0)));
        assert_eq!(c.to_string(), "{n1, n2, n3}");
    }

    #[test]
    fn subset_relation() {
        assert!(cs(&[1, 3]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(cs(&[]).is_subset_of(&cs(&[1])));
        assert!(cs(&[1]).is_subset_of(&cs(&[1])));
        assert!(!cs(&[1, 4]).is_subset_of(&cs(&[1, 2, 3])));
        assert!(!cs(&[1, 2, 3]).is_subset_of(&cs(&[1, 2])));
    }

    #[test]
    fn probability_is_product() {
        let c = cs(&[0, 1]);
        let p = c.probability_with(|id| if id.index() == 0 { 0.5 } else { 0.25 });
        assert!((p - 0.125).abs() < 1e-15);
        assert_eq!(cs(&[]).probability_with(|_| 0.0), 1.0);
    }

    #[test]
    fn minimize_removes_supersets_and_duplicates() {
        let list: CutsetList = [
            cs(&[1, 2]),
            cs(&[1, 2, 3]),
            cs(&[2]),
            cs(&[2]),
            cs(&[4, 5]),
            cs(&[5, 4]),
        ]
        .into_iter()
        .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&cs(&[2])));
        assert!(min.contains_set(&cs(&[4, 5])));
    }

    #[test]
    fn minimize_keeps_incomparable_sets() {
        let list: CutsetList = [cs(&[1, 2]), cs(&[2, 3]), cs(&[1, 3])]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 3);
    }

    #[test]
    fn minimize_handles_large_cutsets_via_counting_path() {
        // A 14-element cutset (beyond the enumeration limit) subsumed by a
        // small kept set, plus one that is not.
        let small = cs(&[3, 7]);
        let big_subsumed = cs(&(0..14).collect::<Vec<_>>()); // contains 3 and 7
        let big_kept = cs(&(20..34).collect::<Vec<_>>());
        let list: CutsetList = [small.clone(), big_subsumed, big_kept.clone()]
            .into_iter()
            .collect();
        let min = list.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.contains_set(&small));
        assert!(min.contains_set(&big_kept));
    }

    #[test]
    fn rare_event_approximation_sums_products() {
        let list: CutsetList = [cs(&[0]), cs(&[1, 2])].into_iter().collect();
        let rea = list.rare_event_approximation(|_| 0.1);
        assert!((rea - (0.1 + 0.01)).abs() < 1e-15);
        // An empty list reports +0.0, not the -0.0 a bare f64 sum yields.
        let empty = CutsetList::new().rare_event_approximation(|_| 0.1);
        assert_eq!(empty.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sort_by_probability() {
        let mut list: CutsetList = [cs(&[1, 2]), cs(&[0])].into_iter().collect();
        list.sort_by_probability_desc(|_| 0.1);
        assert_eq!(list.get(0), Some(&cs(&[0])));
    }

    #[test]
    fn minimize_with_stats_is_thread_count_independent() {
        // Enough cutsets to cross the parallel-sharding threshold, built
        // from a deterministic LCG so supersets, duplicates and large
        // (counting-path) cutsets all occur.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut rng = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as usize
        };
        let mut cutsets: Vec<Cutset> = Vec::new();
        for _ in 0..5000 {
            let order = 1 + rng() % 5;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 40)),
            ));
        }
        for _ in 0..50 {
            // Oversized cutsets exercise the inverted-index path.
            let order = 13 + rng() % 4;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 40)),
            ));
        }
        let (reference, ref_comparisons) =
            CutsetList::from_vec(cutsets.clone()).minimize_with_stats(1);
        assert!(!reference.is_empty());
        assert!(reference.len() < cutsets.len());
        for threads in [2, 4, 8] {
            let (minimized, comparisons) =
                CutsetList::from_vec(cutsets.clone()).minimize_with_stats(threads);
            assert_eq!(reference, minimized, "threads = {threads}");
            assert_eq!(ref_comparisons, comparisons, "threads = {threads}");
        }
        // And a sample of verdicts agrees with the quadratic definition.
        for (i, c) in cutsets.iter().enumerate().step_by(9) {
            let minimal = !cutsets.iter().any(|k| k != c && k.is_subset_of(c));
            assert_eq!(minimal, reference.contains_set(c), "cutset {i}");
        }
    }

    #[test]
    fn empty_cutset_subsumes_everything() {
        let list: CutsetList = [cs(&[]), cs(&[1]), cs(&[1, 2])].into_iter().collect();
        let min = list.minimize();
        assert_eq!(min.len(), 1);
        assert!(min.get(0).unwrap().is_empty());
    }

    #[test]
    fn incremental_offer_verdicts() {
        let mut inc = IncrementalMinimizer::new();
        assert!(inc.offer(cs(&[1, 2])));
        assert!(!inc.offer(cs(&[1, 2]))); // duplicate
        assert!(!inc.offer(cs(&[1, 2, 3]))); // superset of a kept set
        assert!(inc.offer(cs(&[2]))); // evicts {1,2}
        assert_eq!(inc.len(), 1);
        assert!(inc.offer(cs(&[4, 5])));
        assert!(inc.comparisons() > 0);
        assert_eq!(inc.into_sorted(), vec![cs(&[2]), cs(&[4, 5])]);
    }

    #[test]
    fn incremental_empty_cutset_wins() {
        let mut inc = IncrementalMinimizer::new();
        assert!(inc.offer(cs(&[1])));
        assert!(inc.offer(cs(&[])));
        assert_eq!(inc.len(), 1);
        assert!(!inc.offer(cs(&[7])));
        assert_eq!(inc.into_sorted(), vec![cs(&[])]);
    }

    #[test]
    fn incremental_matches_batch_on_random_streams() {
        // Same LCG recipe as the batch determinism test: duplicates,
        // supersets and oversized cutsets, offered in several different
        // orders — the surviving set must equal the batch minimization
        // regardless of order.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as usize
        };
        let mut cutsets: Vec<Cutset> = Vec::new();
        for _ in 0..3000 {
            let order = 1 + rng() % 5;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 32)),
            ));
        }
        for _ in 0..40 {
            let order = 13 + rng() % 4;
            cutsets.push(Cutset::new(
                (0..order).map(|_| NodeId::from_index(rng() % 32)),
            ));
        }
        let reference: Vec<Cutset> = CutsetList::from_vec(cutsets.clone())
            .minimize()
            .into_iter()
            .collect();
        for pass in 0..3 {
            let mut stream = cutsets.clone();
            match pass {
                0 => {}
                1 => stream.reverse(),
                _ => {
                    // Deterministic shuffle.
                    let mut s: u64 = 0xdead_beef;
                    for i in (1..stream.len()).rev() {
                        s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        stream.swap(i, (s >> 33) as usize % (i + 1));
                    }
                }
            }
            let mut inc = IncrementalMinimizer::new();
            for c in stream {
                inc.offer(c);
            }
            assert_eq!(inc.into_sorted(), reference, "pass {pass}");
        }
    }

    #[test]
    fn incremental_bounds_residency_under_eviction_churn() {
        // Offer supersets first, then the small sets that evict them;
        // the kept count must track the true minimal count, and stale
        // index entries must not corrupt later verdicts.
        let mut inc = IncrementalMinimizer::new();
        for i in 0..100 {
            assert!(inc.offer(cs(&[i, i + 100, i + 200])));
        }
        for i in 0..100 {
            assert!(inc.offer(cs(&[i])));
            assert!(!inc.offer(cs(&[i, i + 100, i + 200])));
        }
        assert_eq!(inc.len(), 100);
        let kept = inc.into_sorted();
        assert!(kept.iter().all(|c| c.order() == 1));
    }
}
