//! Module detection: gates whose subtree is independent of the rest of
//! the tree.
//!
//! A gate is a *module* when no node of its subtree is referenced from
//! outside the subtree — such gates can be analyzed in isolation and
//! their result substituted as a single pseudo-event, the classic
//! modularization of Dutuit & Rauzy (1996) that the paper's related work
//! (mixed static/dynamic trees) builds on. The implementation is their
//! linear-time visit-date algorithm, extended to SD fault trees by
//! treating trigger edges as additional dependencies of the triggering
//! gate, so a module always contains the whole triggering relationship.

use crate::node::NodeId;
use crate::tree::FaultTree;

/// The gates of `tree` (reachable from the top) whose subtrees are
/// modules, in id order. The top gate is always a module.
///
/// Trigger edges count as dependencies: a gate that triggers an event
/// located elsewhere is not independent, and neither is a gate containing
/// a triggered event whose triggering gate lies outside.
///
/// # Example
///
/// ```
/// # use sdft_ft::{modules, FaultTreeBuilder};
/// # fn main() -> Result<(), sdft_ft::FtError> {
/// let mut b = FaultTreeBuilder::new();
/// let x = b.static_event("x", 0.1)?;
/// let y = b.static_event("y", 0.2)?;
/// let z = b.static_event("z", 0.3)?;
/// let shared = b.or("shared", [x, y])?;
/// let g1 = b.and("g1", [shared, z])?;
/// let top = b.or("top", [g1, shared])?;
/// b.top(top);
/// let tree = b.build()?;
/// let mods = modules(&tree);
/// // `shared` is referenced from two places but its own subtree is
/// // self-contained; `g1` reaches into `shared`, so it is not a module.
/// assert!(mods.contains(&shared));
/// assert!(!mods.contains(&g1));
/// assert!(mods.contains(&top));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn modules(tree: &FaultTree) -> Vec<NodeId> {
    let n = tree.len();
    // Children in the dependency sense: gate inputs plus triggered events.
    let children = |v: NodeId| -> Vec<NodeId> {
        let mut out: Vec<NodeId> = tree.gate_inputs(v).to_vec();
        out.extend_from_slice(tree.triggers_of(v));
        out
    };

    // One DFS from the top; every *touch* (arrival over any edge) ticks
    // the clock, recursion happens only on the first touch.
    let mut first = vec![0u64; n];
    let mut last = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut clock: u64 = 0;
    // Iterative DFS: (node, child-iterator-position, touched-before).
    let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
    clock += 1;
    first[tree.top().index()] = clock;
    last[tree.top().index()] = clock;
    stack.push((tree.top(), children(tree.top()), 0));
    while let Some((node, kids, pos)) = stack.last_mut() {
        if *pos < kids.len() {
            let child = kids[*pos];
            *pos += 1;
            clock += 1;
            last[child.index()] = clock;
            if first[child.index()] == 0 {
                first[child.index()] = clock;
                let grandkids = children(child);
                stack.push((child, grandkids, 0));
            }
        } else {
            finish[node.index()] = clock;
            stack.pop();
        }
    }

    // Bottom-up aggregation of descendant date ranges (ids are
    // topological for gate inputs; trigger targets are basic events, so
    // they are also created before any gate).
    let mut desc_min = vec![u64::MAX; n];
    let mut desc_max = vec![0u64; n];
    for id in tree.node_ids() {
        if first[id.index()] == 0 {
            continue; // unreachable from the top
        }
        let mut lo = first[id.index()];
        let mut hi = last[id.index()];
        for child in children(id) {
            lo = lo.min(desc_min[child.index()]);
            hi = hi.max(desc_max[child.index()]);
        }
        desc_min[id.index()] = lo;
        desc_max[id.index()] = hi;
    }

    tree.gates()
        .filter(|&g| {
            let i = g.index();
            if first[i] == 0 {
                return false; // unreachable
            }
            children(g)
                .iter()
                .all(|c| desc_min[c.index()] > first[i] && desc_max[c.index()] <= finish[i])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;
    use sdft_ctmc::erlang;

    #[test]
    fn tree_shaped_models_are_fully_modular() {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 0.1).unwrap();
        let bb = b.static_event("b", 0.1).unwrap();
        let c = b.static_event("c", 0.1).unwrap();
        let d = b.static_event("d", 0.1).unwrap();
        let p1 = b.or("p1", [a, bb]).unwrap();
        let p2 = b.or("p2", [c, d]).unwrap();
        let top = b.and("top", [p1, p2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert_eq!(mods, vec![p1, p2, top]);
    }

    #[test]
    fn sharing_breaks_modularity_of_the_sharers() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let w = b.static_event("w", 0.1).unwrap();
        let shared = b.or("shared", [x, y]).unwrap();
        let g1 = b.and("g1", [shared, z]).unwrap();
        let g2 = b.and("g2", [shared, w]).unwrap();
        let top = b.or("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert!(mods.contains(&shared), "shared subtree is self-contained");
        assert!(!mods.contains(&g1), "shared is also referenced by g2");
        assert!(!mods.contains(&g2), "shared is also referenced by g1");
        assert!(mods.contains(&top));

        // Sharing a *leaf* into a gate breaks that gate's inner module:
        // here y is both under `shared` and a direct input of g3.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let shared = b.or("shared", [x, y]).unwrap();
        let g3 = b.and("g3", [shared, y]).unwrap();
        b.top(g3);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert!(
            !mods.contains(&shared),
            "y is referenced from outside shared"
        );
        assert!(mods.contains(&g3));
    }

    #[test]
    fn triggers_bind_gates_together() {
        // Example 3: the trigger pump1 ⇢ d ties pump1 and pump2 together;
        // only their common ancestor (and the top) are modules.
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert!(
            !mods.contains(&p1),
            "pump1 triggers an event outside its subtree"
        );
        assert!(
            !mods.contains(&p2),
            "pump2 contains an externally triggered event"
        );
        assert!(
            mods.contains(&pumps),
            "the trigger relationship is internal to pumps"
        );
        assert!(mods.contains(&top));
    }

    #[test]
    fn static_version_is_fully_modular() {
        // The same structure without the trigger: everything is a module.
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(modules(&t), vec![p1, p2, pumps, top]);
    }

    #[test]
    fn unreachable_gates_are_not_reported() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let orphan = b.or("orphan", [y]).unwrap();
        let top = b.or("top", [x]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert!(!mods.contains(&orphan));
        assert_eq!(mods, vec![top]);
    }

    #[test]
    fn repeated_event_under_one_gate_is_still_modular() {
        // A gate may reference the same child twice; that is internal
        // sharing and does not break modularity.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let inner = b.or("inner", [x, y]).unwrap();
        let g = b.and("g", [inner, x]).unwrap();
        let z = b.static_event("z", 0.1).unwrap();
        let top = b.or("top", [g, z]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mods = modules(&t);
        assert!(mods.contains(&g), "x is shared only inside g's subtree");
        assert!(!mods.contains(&inner), "x is also a direct input of g");
        assert!(mods.contains(&top));
    }
}
