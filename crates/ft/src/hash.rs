//! Fast rotate-multiply hashing (the FxHash recipe) shared by the hot
//! hash maps of the analysis pipeline.
//!
//! Both the subsumption indexes of [`crate::CutsetList`] and the BDD
//! unique table / apply cache key on short sequences of small integers
//! (`NodeId`s, node triples) looked up hundreds of millions of times in
//! deep sweeps, where SipHash becomes the dominant cost. FxHash is not
//! DoS-resistant, which is irrelevant here — the keys come from the tree
//! under analysis, not an adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-multiply hasher: `h = rotl5(h) ^ word) * SEED` per word, the
/// recipe popularized by the `rustc` FxHash family.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use as the `S` parameter of
/// `HashMap`/`HashSet`.
pub type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hasher_is_deterministic_and_usable() {
        let mut m: HashMap<(u32, u32), u64, FxBuild> = HashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(42, 294)), Some(&42));

        let one = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(one(99), one(99));
        assert_ne!(one(99), one(100));
    }
}
