//! Structural signatures of fault tree parts.
//!
//! A *signature* is a canonical byte encoding that is independent of node
//! names and of the identity of the tree that produced it: two fault
//! trees (or events, or trigger cones) that are isomorphic as labelled
//! structures — same shapes, same behaviours with bit-identical
//! parameters, same trigger wiring — have equal signatures, and only
//! those do. Signatures are the foundation of the cross-cutset
//! quantification cache in `sdft-core`: equal signatures guarantee
//! bitwise-identical quantification results, so signatures are exact
//! encodings, never lossy digests.

use crate::cutset::Cutset;
use crate::node::{Behavior, GateKind, NodeId};
use crate::tree::FaultTree;
use std::collections::HashMap;

/// Canonical encoding of one basic event's failure behaviour — and, via
/// [`FaultTree::cutset_event_signatures`], of its triggering logic.
///
/// Equal signatures mean bit-identical behaviour: the same static
/// probability, or a structurally identical (triggered) chain (see
/// [`sdft_ctmc::ChainSignature`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventSignature(Vec<u8>);

impl EventSignature {
    /// The canonical byte encoding backing this signature.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Canonical encoding of an entire fault tree in node-creation order:
/// per-node behaviour or gate shape (inputs as raw indices), trigger
/// wiring, and the top gate — names excluded.
///
/// Two trees share a signature iff a creation-order-preserving
/// renaming maps one onto the other. Everything the product-chain
/// semantics depends on is captured, so equal signatures imply
/// bitwise-identical quantification results.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeSignature(Vec<u8>);

impl TreeSignature {
    /// The canonical byte encoding backing this signature.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-encoding helper: fixed-width little-endian integers, floats as
/// IEEE-754 bit patterns.
#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn tag(&mut self, tag: u8) {
        self.bytes.push(tag);
    }

    fn usize(&mut self, value: usize) {
        self.bytes.extend_from_slice(&(value as u64).to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    fn blob(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.bytes.extend_from_slice(bytes);
    }
}

impl Behavior {
    /// The structural signature of this behaviour (name-independent).
    #[must_use]
    pub fn structural_signature(&self) -> EventSignature {
        let mut w = Writer::default();
        write_behavior(self, &mut w);
        EventSignature(w.bytes)
    }
}

fn write_behavior(behavior: &Behavior, w: &mut Writer) {
    match behavior {
        Behavior::Static { probability } => {
            w.tag(b'S');
            w.f64(*probability);
        }
        Behavior::Dynamic(chain) => {
            w.tag(b'D');
            w.blob(chain.structural_signature().as_bytes());
        }
        Behavior::Triggered(chain) => {
            w.tag(b'R');
            w.blob(chain.structural_signature().as_bytes());
        }
    }
}

fn write_gate_kind(kind: GateKind, w: &mut Writer) {
    match kind {
        GateKind::And => w.tag(0),
        GateKind::Or => w.tag(1),
        GateKind::AtLeast(k) => {
            w.tag(2);
            w.usize(k as usize);
        }
    }
}

impl FaultTree {
    /// The structural signature of the basic event `id`, or `None` if
    /// `id` is a gate.
    #[must_use]
    pub fn event_signature(&self, id: NodeId) -> Option<EventSignature> {
        self.behavior(id).map(Behavior::structural_signature)
    }

    /// The signatures of the cutset's basic events *including their
    /// triggering logic*, in canonical (sorted) order.
    ///
    /// Each entry encodes the event's behaviour; for a triggered event it
    /// additionally embeds the [`FaultTree::cone_signature`] of its
    /// triggering gate, so two cutsets get equal signature lists exactly
    /// when their events are pairwise name-isomorphic *and* wired to
    /// isomorphic trigger cones. Returns `None` if the cutset references
    /// a gate.
    #[must_use]
    pub fn cutset_event_signatures(&self, cutset: &Cutset) -> Option<Vec<EventSignature>> {
        let mut out = Vec::with_capacity(cutset.order());
        for &event in cutset.events() {
            let behavior = self.behavior(event)?;
            let mut w = Writer::default();
            write_behavior(behavior, &mut w);
            match self.trigger_source(event) {
                None => w.tag(0),
                Some(gate) => {
                    w.tag(1);
                    w.blob(self.cone_signature(gate).as_bytes());
                }
            }
            out.push(EventSignature(w.bytes));
        }
        out.sort();
        Some(out)
    }

    /// The structural signature of the cone (reachable sub-DAG) rooted at
    /// `root`: a depth-first serialization where nodes are numbered by
    /// discovery order, so shared nodes serialize once and later
    /// occurrences become back-references. Names are excluded; sharing
    /// structure is preserved exactly.
    #[must_use]
    pub fn cone_signature(&self, root: NodeId) -> TreeSignature {
        let mut w = Writer::default();
        let mut discovered: HashMap<NodeId, usize> = HashMap::new();
        self.write_cone(root, &mut discovered, &mut w);
        TreeSignature(w.bytes)
    }

    fn write_cone(&self, node: NodeId, discovered: &mut HashMap<NodeId, usize>, w: &mut Writer) {
        if let Some(&index) = discovered.get(&node) {
            w.tag(b'B'); // back-reference to an already serialized node
            w.usize(index);
            return;
        }
        discovered.insert(node, discovered.len());
        if let Some(behavior) = self.behavior(node) {
            w.tag(b'E');
            write_behavior(behavior, w);
        } else {
            w.tag(b'G');
            write_gate_kind(self.gate_kind(node).expect("node is a gate"), w);
            let inputs = self.gate_inputs(node);
            w.usize(inputs.len());
            for &input in inputs {
                self.write_cone(input, discovered, w);
            }
        }
    }

    /// The structural signature of the whole tree (see [`TreeSignature`]).
    #[must_use]
    pub fn structural_signature(&self) -> TreeSignature {
        let mut w = Writer::default();
        w.usize(self.len());
        for id in self.node_ids() {
            if let Some(behavior) = self.behavior(id) {
                w.tag(b'E');
                write_behavior(behavior, &mut w);
            } else {
                w.tag(b'G');
                write_gate_kind(self.gate_kind(id).expect("node is a gate"), &mut w);
                let inputs = self.gate_inputs(id);
                w.usize(inputs.len());
                for &input in inputs {
                    w.usize(input.index());
                }
            }
            match self.trigger_source(id) {
                None => w.tag(0),
                Some(gate) => {
                    w.tag(1);
                    w.usize(gate.index());
                }
            }
        }
        w.usize(self.top().index());
        TreeSignature(w.bytes)
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{FaultTree, FaultTreeBuilder};
    use crate::Cutset;
    use sdft_ctmc::erlang;

    /// Example-3-shaped tree with configurable names and rates.
    fn pumps(names: [&str; 8], lambda: f64) -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event(names[0], 3e-3).unwrap();
        let bb = b
            .dynamic_event(names[1], erlang::repairable(1, lambda, 0.05).unwrap())
            .unwrap();
        let c = b.static_event(names[2], 3e-3).unwrap();
        let d = b
            .triggered_event(names[3], erlang::spare(lambda, 0.05).unwrap())
            .unwrap();
        let p1 = b.or(names[4], [a, bb]).unwrap();
        let p2 = b.or(names[5], [c, d]).unwrap();
        let pumps = b.and(names[6], [p1, p2]).unwrap();
        let top = b.or(names[7], [pumps]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    const PLAIN: [&str; 8] = ["a", "b", "c", "d", "p1", "p2", "pumps", "top"];
    const RENAMED: [&str; 8] = ["x1", "x2", "x3", "x4", "g1", "g2", "g3", "g4"];

    #[test]
    fn renaming_preserves_every_signature() {
        let t1 = pumps(PLAIN, 1e-3);
        let t2 = pumps(RENAMED, 1e-3);
        assert_eq!(t1.structural_signature(), t2.structural_signature());
        for (i1, i2) in t1.node_ids().zip(t2.node_ids()) {
            assert_eq!(t1.event_signature(i1), t2.event_signature(i2));
            assert_eq!(t1.cone_signature(i1), t2.cone_signature(i2));
        }
    }

    #[test]
    fn rates_and_probabilities_change_signatures() {
        let t1 = pumps(PLAIN, 1e-3);
        let t2 = pumps(PLAIN, 2e-3);
        assert_ne!(t1.structural_signature(), t2.structural_signature());
        let b1 = t1.node_by_name("b").unwrap();
        let b2 = t2.node_by_name("b").unwrap();
        assert_ne!(t1.event_signature(b1), t2.event_signature(b2));
    }

    #[test]
    fn gate_shapes_distinguish_trees() {
        let build = |second_or: bool| {
            let mut b = FaultTreeBuilder::new();
            let x = b.static_event("x", 0.1).unwrap();
            let y = b.static_event("y", 0.2).unwrap();
            let g = if second_or {
                b.or("g", [x, y]).unwrap()
            } else {
                b.and("g", [x, y]).unwrap()
            };
            b.top(g);
            b.build().unwrap()
        };
        assert_ne!(
            build(true).structural_signature(),
            build(false).structural_signature()
        );
    }

    #[test]
    fn cone_signatures_preserve_sharing() {
        // AND(e, e) over one shared event vs AND(e1, e2) over two
        // identically parameterized events: different as DAGs, and the
        // discovery-order back-references keep them apart.
        let mut b = FaultTreeBuilder::new();
        let e = b.static_event("e", 0.1).unwrap();
        let g = b.and("g", [e]).unwrap();
        let h = b.and("h", [g, g]).unwrap();
        b.top(h);
        let shared = b.build().unwrap();

        let mut b = FaultTreeBuilder::new();
        let e1 = b.static_event("e1", 0.1).unwrap();
        let e2 = b.static_event("e2", 0.1).unwrap();
        let g1 = b.and("g1", [e1]).unwrap();
        let g2 = b.and("g2", [e2]).unwrap();
        let h = b.and("h", [g1, g2]).unwrap();
        b.top(h);
        let split = b.build().unwrap();

        assert_ne!(
            shared.cone_signature(shared.top()),
            split.cone_signature(split.top())
        );
    }

    #[test]
    fn cutset_signatures_are_sorted_and_name_independent() {
        let t1 = pumps(PLAIN, 1e-3);
        let t2 = pumps(RENAMED, 1e-3);
        let c1 = Cutset::new([t1.node_by_name("b").unwrap(), t1.node_by_name("d").unwrap()]);
        let c2 = Cutset::new([
            t2.node_by_name("x2").unwrap(),
            t2.node_by_name("x4").unwrap(),
        ]);
        let s1 = t1.cutset_event_signatures(&c1).unwrap();
        let s2 = t2.cutset_event_signatures(&c2).unwrap();
        assert_eq!(s1, s2);
        let mut sorted = s1.clone();
        sorted.sort();
        assert_eq!(s1, sorted);
    }

    #[test]
    fn cutset_signatures_see_the_trigger_cone() {
        // Same events, but the second tree triggers d from a different
        // gate shape — the cutset signatures must differ.
        let t1 = pumps(PLAIN, 1e-3);
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let p1 = b.and("p1", [a, bb]).unwrap(); // AND instead of OR
        let p2 = b.or("p2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("top", [pumps]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        let t2 = b.build().unwrap();

        let cutset = |t: &FaultTree| {
            Cutset::new([t.node_by_name("b").unwrap(), t.node_by_name("d").unwrap()])
        };
        assert_ne!(
            t1.cutset_event_signatures(&cutset(&t1)).unwrap(),
            t2.cutset_event_signatures(&cutset(&t2)).unwrap()
        );
    }

    #[test]
    fn gates_have_no_event_signature() {
        let t = pumps(PLAIN, 1e-3);
        let top = t.top();
        assert!(t.event_signature(top).is_none());
        assert!(t.cutset_event_signatures(&Cutset::new([top])).is_none());
    }
}
