//! Graphviz (DOT) export of fault trees.
//!
//! Gates are drawn as boxes labelled with their logical type, static basic
//! events as circles, dynamic basic events as double circles (matching the
//! paper's figures), and trigger edges as dashed arrows from the triggering
//! gate to the triggered event.

use crate::node::Behavior;
use crate::tree::FaultTree;
use std::fmt::Write as _;

/// Escape a node name for use inside a double-quoted DOT id.
fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render `tree` as a DOT graph.
///
/// # Example
///
/// ```
/// # use sdft_ft::{FaultTreeBuilder, dot};
/// # fn main() -> Result<(), sdft_ft::FtError> {
/// let mut b = FaultTreeBuilder::new();
/// let x = b.static_event("x", 0.1)?;
/// let g = b.or("g", [x])?;
/// b.top(g);
/// let tree = b.build()?;
/// let rendered = dot::to_dot(&tree);
/// assert!(rendered.contains("digraph"));
/// assert!(rendered.contains("\"g\" -> \"x\""));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(tree: &FaultTree) -> String {
    let mut out = String::from("digraph fault_tree {\n  rankdir=TB;\n");
    for id in tree.node_ids() {
        let name = escape(tree.name(id));
        match tree.behavior(id) {
            Some(Behavior::Static { probability }) => {
                let _ = writeln!(
                    out,
                    "  \"{name}\" [shape=circle, label=\"{name}\\np={probability}\"];"
                );
            }
            Some(Behavior::Dynamic(_)) | Some(Behavior::Triggered(_)) => {
                let _ = writeln!(out, "  \"{name}\" [shape=doublecircle, label=\"{name}\"];");
            }
            None => {
                let kind = tree.gate_kind(id).expect("gate");
                let peripheries = if id == tree.top() { 2 } else { 1 };
                let _ = writeln!(
                    out,
                    "  \"{name}\" [shape=box, label=\"{name}\\n{kind}\", peripheries={peripheries}];"
                );
            }
        }
    }
    for gate in tree.gates() {
        for &input in tree.gate_inputs(gate) {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                escape(tree.name(gate)),
                escape(tree.name(input))
            );
        }
        for &event in tree.triggers_of(gate) {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [style=dashed, constraint=false];",
                escape(tree.name(gate)),
                escape(tree.name(event))
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;
    use sdft_ctmc::erlang;

    #[test]
    fn renders_nodes_edges_and_triggers() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        let top = b.and("top", [g, d]).unwrap();
        b.trigger(g, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains("\"x\" [shape=circle"));
        assert!(dot.contains("\"d\" [shape=doublecircle"));
        assert!(dot.contains("\"top\" [shape=box"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("\"g\" -> \"d\" [style=dashed"));
        assert!(dot.contains("\"top\" -> \"g\";"));
    }
}

#[cfg(test)]
mod escaping_tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;

    /// Found in review: names may contain quotes and backslashes, which
    /// must be escaped inside DOT's double-quoted identifiers.
    #[test]
    fn quotes_and_backslashes_are_escaped() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("tank\"A\\B", 0.1).unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let rendered = to_dot(&t);
        assert!(rendered.contains("\"tank\\\"A\\\\B\""), "{rendered}");
        // No raw unescaped quote sequence survives.
        assert!(!rendered.contains("\"tank\"A"));
    }
}
