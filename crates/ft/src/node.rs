use sdft_ctmc::{Ctmc, TriggeredCtmc};
use std::fmt;

/// Identifier of a node (gate or basic event) within one [`FaultTree`].
///
/// Node ids are dense indices assigned in creation order; they are only
/// meaningful relative to the tree (or builder) that created them.
///
/// [`FaultTree`]: crate::FaultTree
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a node id from a raw index.
    ///
    /// The id is only valid for trees that actually contain a node at that
    /// index; all [`FaultTree`](crate::FaultTree) accessors check ranges.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logical type of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Fails iff all inputs fail.
    And,
    /// Fails iff at least one input fails.
    Or,
    /// Fails iff at least `k` inputs fail (voting gate; an extension over
    /// the paper's AND/OR, common in PSA practice). `AtLeast(1)` behaves
    /// like [`GateKind::Or`] and `AtLeast(n)` over `n` inputs like
    /// [`GateKind::And`].
    AtLeast(u32),
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::And => write!(f, "and"),
            GateKind::Or => write!(f, "or"),
            GateKind::AtLeast(k) => write!(f, "atleast {k}"),
        }
    }
}

/// Failure behaviour of a basic event.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// A static basic event: fails with a fixed probability, no timing.
    Static {
        /// Probability of failure, in `[0, 1]`.
        probability: f64,
    },
    /// An always-on dynamic basic event modelled by a CTMC.
    Dynamic(Ctmc),
    /// A triggered dynamic basic event modelled by a triggered CTMC; it
    /// must be assigned exactly one triggering gate before the tree is
    /// built.
    Triggered(TriggeredCtmc),
}

impl Behavior {
    /// Whether the behaviour is dynamic (plain or triggered).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, Behavior::Static { .. })
    }
}

/// A node of a fault tree: either a basic event or a gate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeKind {
    Basic(Behavior),
    Gate {
        kind: GateKind,
        inputs: Vec<NodeId>,
        /// Dynamic basic events triggered by the failure of this gate.
        triggers: Vec<NodeId>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub name: String,
    pub kind: NodeKind,
}
