//! Tree transformations: constant restriction, structural simplification
//! and voting-gate expansion.
//!
//! These utilities operate on the static structure; trees with dynamic
//! events are supported as long as the transformation does not touch
//! them (assignments are restricted to static events, and gates that
//! trigger dynamic events are never removed).

use crate::error::FtError;
use crate::node::{Behavior, GateKind, NodeId};
use crate::tree::{FaultTree, FaultTreeBuilder};
use std::collections::HashMap;

/// The result of [`restrict`]: either the whole tree collapsed to a
/// constant, or a rebuilt tree plus the map from old to new ids.
#[derive(Debug, Clone)]
pub enum Restriction {
    /// The top gate became constant under the assignment.
    Constant(bool),
    /// The restricted tree.
    Tree {
        /// The rebuilt tree.
        tree: FaultTree,
        /// Map from original ids to nodes computing their function (nodes
        /// collapsed to constants are absent; collapsed gates map to
        /// their surviving replacement).
        from_original: HashMap<NodeId, NodeId>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    Const(bool),
    Node(NodeId),
}

/// Substitute constants for static basic events and propagate them
/// through the gates: an AND with a false input dies, true inputs are
/// dropped, single-input gates collapse, at-least thresholds adjust.
///
/// Gates that trigger dynamic events are preserved as (possibly
/// single-input) gates so the triggering structure survives; the events
/// they trigger must not be assigned.
///
/// # Errors
///
/// Returns an error if an assignment targets a gate or a dynamic event.
pub fn restrict(
    tree: &FaultTree,
    assignments: &HashMap<NodeId, bool>,
) -> Result<Restriction, FtError> {
    for &id in assignments.keys() {
        match tree.behavior(id) {
            Some(Behavior::Static { .. }) => {}
            Some(_) => {
                return Err(FtError::KindMismatch {
                    name: tree.name(id).to_owned(),
                    expected: "a static basic event",
                })
            }
            None => {
                return Err(FtError::KindMismatch {
                    name: tree.name(id).to_owned(),
                    expected: "a basic event",
                })
            }
        }
    }

    let mut builder = FaultTreeBuilder::new();
    let mut val: Vec<Val> = Vec::with_capacity(tree.len());
    let mut from_original = HashMap::new();
    let mut trigger_pairs: Vec<(NodeId, NodeId)> = Vec::new();

    for id in tree.node_ids() {
        let v = if tree.is_basic(id) {
            match assignments.get(&id) {
                Some(&value) => Val::Const(value),
                None => {
                    let new = match tree.behavior(id).expect("basic") {
                        Behavior::Static { probability } => {
                            builder.static_event(tree.name(id), *probability)?
                        }
                        Behavior::Dynamic(chain) => {
                            builder.dynamic_event(tree.name(id), chain.clone())?
                        }
                        Behavior::Triggered(chain) => {
                            builder.triggered_event(tree.name(id), chain.clone())?
                        }
                    };
                    from_original.insert(id, new);
                    Val::Node(new)
                }
            }
        } else {
            let kind = tree.gate_kind(id).expect("gate");
            let mut live: Vec<NodeId> = Vec::new();
            let mut true_count = 0usize;
            let mut false_count = 0usize;
            for &input in tree.gate_inputs(id) {
                match val[input.index()] {
                    Val::Const(true) => true_count += 1,
                    Val::Const(false) => false_count += 1,
                    Val::Node(n) => live.push(n),
                }
            }
            // Never collapse the top gate or a triggering gate away.
            let keep_gate = !tree.triggers_of(id).is_empty() || id == tree.top();
            let outcome = match kind {
                GateKind::And => {
                    if false_count > 0 {
                        Val::Const(false)
                    } else if live.is_empty() {
                        Val::Const(true)
                    } else if live.len() == 1 && !keep_gate {
                        Val::Node(live[0])
                    } else {
                        Val::Node(builder.gate(tree.name(id), GateKind::And, live)?)
                    }
                }
                GateKind::Or => {
                    if true_count > 0 {
                        Val::Const(true)
                    } else if live.is_empty() {
                        Val::Const(false)
                    } else if live.len() == 1 && !keep_gate {
                        Val::Node(live[0])
                    } else {
                        Val::Node(builder.gate(tree.name(id), GateKind::Or, live)?)
                    }
                }
                GateKind::AtLeast(k) => {
                    let k = (k as usize).saturating_sub(true_count);
                    if k == 0 {
                        Val::Const(true)
                    } else if k > live.len() {
                        Val::Const(false)
                    } else if k == live.len() {
                        if live.len() == 1 && !keep_gate {
                            Val::Node(live[0])
                        } else {
                            Val::Node(builder.gate(tree.name(id), GateKind::And, live)?)
                        }
                    } else if k == 1 {
                        Val::Node(builder.gate(tree.name(id), GateKind::Or, live)?)
                    } else {
                        Val::Node(builder.gate(tree.name(id), GateKind::AtLeast(k as u32), live)?)
                    }
                }
            };
            if let Val::Node(new) = outcome {
                // A collapsed gate maps to the node now computing its
                // function (possibly a former input with another name).
                from_original.insert(id, new);
            }
            outcome
        };
        val.push(v);
        // Collect trigger edges to re-add once both ends exist.
        if tree.is_basic(id) {
            if let Some(gate) = tree.trigger_source(id) {
                trigger_pairs.push((gate, id));
            }
        }
    }

    match val[tree.top().index()] {
        Val::Const(c) => Ok(Restriction::Constant(c)),
        Val::Node(new_top) => {
            for (gate, event) in trigger_pairs {
                let (Val::Node(g), Val::Node(e)) = (val[gate.index()], val[event.index()]) else {
                    return Err(FtError::KindMismatch {
                        name: tree.name(event).to_owned(),
                        expected: "a triggered event with a live triggering gate",
                    });
                };
                builder.trigger(g, e)?;
            }
            builder.top(new_top);
            let restricted = builder.build()?;
            Ok(Restriction::Tree {
                tree: restricted,
                from_original,
            })
        }
    }
}

/// Structurally simplify a tree: collapse single-input pass-through
/// gates (unless they trigger something or are the top), and merge gates
/// with identical kind and input sets. The function computed by every
/// surviving node is unchanged.
///
/// Real PSA models carry long transfer-gate chains; simplification can
/// shrink the gate count by an order of magnitude without changing any
/// cutset.
///
/// # Errors
///
/// Returns an error only if rebuilding fails (cannot happen for valid
/// inputs).
pub fn simplify(tree: &FaultTree) -> Result<FaultTree, FtError> {
    let mut builder = FaultTreeBuilder::new();
    let mut new_id: Vec<NodeId> = Vec::with_capacity(tree.len());
    // Structural hash-consing of gates: (kind, sorted inputs) -> node.
    let mut canon: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();

    for id in tree.node_ids() {
        let mapped = if tree.is_basic(id) {
            match tree.behavior(id).expect("basic") {
                Behavior::Static { probability } => {
                    builder.static_event(tree.name(id), *probability)?
                }
                Behavior::Dynamic(chain) => builder.dynamic_event(tree.name(id), chain.clone())?,
                Behavior::Triggered(chain) => {
                    builder.triggered_event(tree.name(id), chain.clone())?
                }
            }
        } else {
            let kind = tree.gate_kind(id).expect("gate");
            let mut inputs: Vec<NodeId> = tree
                .gate_inputs(id)
                .iter()
                .map(|i| new_id[i.index()])
                .collect();
            inputs.sort();
            // Voting gates count input *positions*: "2-of-(x, x)" fails
            // with x alone, so duplicates must survive there.
            if !matches!(kind, GateKind::AtLeast(_)) {
                inputs.dedup();
            }
            let is_protected = !tree.triggers_of(id).is_empty() || id == tree.top();
            // A single-input AND/OR (or 1-of-1) is the identity.
            let pass_through = inputs.len() == 1
                && matches!(kind, GateKind::And | GateKind::Or | GateKind::AtLeast(1));
            if pass_through && !is_protected {
                inputs[0]
            } else {
                let key = (kind, inputs.clone());
                match canon.get(&key) {
                    Some(&existing) if !is_protected => existing,
                    _ => {
                        let g = builder.gate(tree.name(id), kind, inputs)?;
                        canon.entry(key).or_insert(g);
                        g
                    }
                }
            }
        };
        new_id.push(mapped);
    }
    for event in tree.basic_events() {
        if let Some(gate) = tree.trigger_source(event) {
            builder.trigger(new_id[gate.index()], new_id[event.index()])?;
        }
    }
    builder.top(new_id[tree.top().index()]);
    builder.build()
}

/// Expand every at-least gate into pure AND/OR structure (an OR over the
/// ANDs of all `k`-subsets of its inputs), producing a tree in the
/// paper's original formalism.
///
/// # Errors
///
/// Returns an error if a voting gate would expand into more than
/// `max_combinations` subsets.
pub fn expand_atleast(tree: &FaultTree, max_combinations: usize) -> Result<FaultTree, FtError> {
    let mut builder = FaultTreeBuilder::new();
    let mut new_id: Vec<NodeId> = Vec::with_capacity(tree.len());
    for id in tree.node_ids() {
        let mapped = if tree.is_basic(id) {
            match tree.behavior(id).expect("basic") {
                Behavior::Static { probability } => {
                    builder.static_event(tree.name(id), *probability)?
                }
                Behavior::Dynamic(chain) => builder.dynamic_event(tree.name(id), chain.clone())?,
                Behavior::Triggered(chain) => {
                    builder.triggered_event(tree.name(id), chain.clone())?
                }
            }
        } else {
            let inputs: Vec<NodeId> = tree
                .gate_inputs(id)
                .iter()
                .map(|i| new_id[i.index()])
                .collect();
            match tree.gate_kind(id).expect("gate") {
                GateKind::And => builder.and(tree.name(id), inputs)?,
                GateKind::Or => builder.or(tree.name(id), inputs)?,
                GateKind::AtLeast(k) => {
                    let k = k as usize;
                    if k == 1 {
                        builder.or(tree.name(id), inputs)?
                    } else if k == inputs.len() {
                        builder.and(tree.name(id), inputs)?
                    } else {
                        let combos = combinations(&inputs, k);
                        if combos.len() > max_combinations {
                            return Err(FtError::InvalidThreshold {
                                name: tree.name(id).to_owned(),
                                threshold: k as u32,
                                inputs: inputs.len(),
                            });
                        }
                        let ands: Vec<NodeId> = combos
                            .iter()
                            .enumerate()
                            .map(|(i, combo)| {
                                builder
                                    .and(&format!("{}__c{i}", tree.name(id)), combo.iter().copied())
                            })
                            .collect::<Result<_, _>>()?;
                        builder.or(tree.name(id), ands)?
                    }
                }
            }
        };
        new_id.push(mapped);
    }
    for event in tree.basic_events() {
        if let Some(gate) = tree.trigger_source(event) {
            builder.trigger(new_id[gate.index()], new_id[event.index()])?;
        }
    }
    builder.top(new_id[tree.top().index()]);
    builder.build()
}

fn combinations(items: &[NodeId], k: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..k).collect();
    if k == 0 || k > items.len() {
        return out;
    }
    loop {
        out.push(indices.iter().map(|&i| items[i]).collect());
        let mut pos = k;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if indices[pos] != pos + items.len() - k {
                indices[pos] += 1;
                for j in pos + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probs::EventProbabilities;
    use crate::scenario::Scenario;
    use sdft_ctmc::erlang;

    fn sample_tree() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let z = b.static_event("z", 0.3).unwrap();
        let g1 = b.or("g1", [x, y]).unwrap();
        let g2 = b.atleast("g2", 2, [x, y, z]).unwrap();
        let top = b.and("top", [g1, g2]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn agree_on_all_scenarios(a: &FaultTree, b: &FaultTree) {
        let events_a: Vec<NodeId> = a.basic_events().collect();
        assert!(events_a.len() <= 12);
        for mask in 0u32..(1 << events_a.len()) {
            let failed: Vec<&str> = events_a
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| a.name(e))
                .collect();
            let sa = Scenario::from_events(a, failed.iter().map(|n| a.node_by_name(n).unwrap()));
            let sb = Scenario::from_events(b, failed.iter().filter_map(|n| b.node_by_name(n)));
            assert_eq!(
                a.fails(a.top(), &sa),
                b.fails(b.top(), &sb),
                "scenario {failed:?}"
            );
        }
    }

    #[test]
    fn restrict_substitutes_and_simplifies() {
        let t = sample_tree();
        let x = t.node_by_name("x").unwrap();
        let mut assignments = HashMap::new();
        assignments.insert(x, true);
        let Restriction::Tree {
            tree: r,
            from_original,
        } = restrict(&t, &assignments).unwrap()
        else {
            panic!("should not be constant");
        };
        // With x true: g1 is true (dropped), g2 becomes 1-of-{y,z} = OR,
        // top collapses to g2.
        assert!(r.node_by_name("x").is_none());
        assert_eq!(r.num_basic_events(), 2);
        let exact = r.exact_static_probability().unwrap();
        // p(y ∨ z) = 1 - 0.8·0.7
        assert!((exact - (1.0 - 0.8 * 0.7)).abs() < 1e-12);
        assert!(from_original.contains_key(&t.node_by_name("y").unwrap()));
    }

    #[test]
    fn restrict_to_constant() {
        let t = sample_tree();
        let x = t.node_by_name("x").unwrap();
        let y = t.node_by_name("y").unwrap();
        let mut assignments = HashMap::new();
        assignments.insert(x, false);
        assignments.insert(y, false);
        // g1 = OR(false, false) = false, top = AND(false, ..) = false.
        match restrict(&t, &assignments).unwrap() {
            Restriction::Constant(false) => {}
            other => panic!("expected constant false, got {other:?}"),
        }
        let mut assignments = HashMap::new();
        assignments.insert(x, true);
        assignments.insert(y, true);
        match restrict(&t, &assignments).unwrap() {
            Restriction::Constant(true) => {}
            other => panic!("expected constant true, got {other:?}"),
        }
    }

    #[test]
    fn restrict_rejects_gates_and_dynamics() {
        let mut b = FaultTreeBuilder::new();
        let d = b
            .dynamic_event("d", erlang::plain(1, 1e-3).unwrap())
            .unwrap();
        let g = b.or("g", [d]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let mut assignments = HashMap::new();
        assignments.insert(d, true);
        assert!(matches!(
            restrict(&t, &assignments),
            Err(FtError::KindMismatch { .. })
        ));
        let mut assignments = HashMap::new();
        assignments.insert(g, true);
        assert!(matches!(
            restrict(&t, &assignments),
            Err(FtError::KindMismatch { .. })
        ));
    }

    #[test]
    fn simplify_collapses_pass_through_chains() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let mut chain = b.or("c0", [x]).unwrap();
        for i in 1..6 {
            chain = b.or(&format!("c{i}"), [chain]).unwrap();
        }
        let top = b.and("top", [chain, y]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let s = simplify(&t).unwrap();
        assert_eq!(s.num_gates(), 1, "only the top gate survives");
        agree_on_all_scenarios(&t, &s);
    }

    #[test]
    fn simplify_merges_identical_gates() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let g1 = b.or("g1", [x, y]).unwrap();
        let g2 = b.or("g2", [y, x]).unwrap(); // same function
        let top = b.and("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let s = simplify(&t).unwrap();
        assert_eq!(s.num_gates(), 2); // merged OR + top
        agree_on_all_scenarios(&t, &s);
    }

    #[test]
    fn simplify_preserves_triggering_gates() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let w = b.or("w", [x]).unwrap(); // pass-through, but triggers d
        let top = b.and("top", [w, d]).unwrap();
        b.trigger(w, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let s = simplify(&t).unwrap();
        let w_new = s.node_by_name("w").expect("trigger gate preserved");
        assert_eq!(s.trigger_source(s.node_by_name("d").unwrap()), Some(w_new));
    }

    #[test]
    fn expand_atleast_preserves_semantics_and_probability() {
        let t = sample_tree();
        let e = expand_atleast(&t, 1000).unwrap();
        assert!(e
            .gates()
            .all(|g| !matches!(e.gate_kind(g), Some(GateKind::AtLeast(_)))));
        agree_on_all_scenarios(&t, &e);
        let pt = t.exact_static_probability().unwrap();
        let pe = e.exact_static_probability().unwrap();
        assert!((pt - pe).abs() < 1e-12);
        let _ = EventProbabilities::from_static(&e).unwrap();
    }

    #[test]
    fn expand_atleast_honours_the_budget() {
        let mut b = FaultTreeBuilder::new();
        let events: Vec<_> = (0..12)
            .map(|i| b.static_event(&format!("e{i}"), 0.1).unwrap())
            .collect();
        let g = b.atleast("g", 6, events).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(matches!(
            expand_atleast(&t, 100),
            Err(FtError::InvalidThreshold { .. })
        ));
        assert!(expand_atleast(&t, 10_000).is_ok());
    }

    #[test]
    fn simplify_industrial_style_chain_keeps_cutsets() {
        // A miniature of the transfer-chain pattern: simplification must
        // not change the evaluated function.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let z = b.static_event("z", 0.3).unwrap();
        let sys = b.and("sys", [x, y]).unwrap();
        let x1 = b.or("x1", [sys]).unwrap();
        let x2 = b.or("x2", [x1]).unwrap();
        let x3 = b.or("x3", [sys]).unwrap();
        let s1 = b.and("s1", [x2, z]).unwrap();
        let s2 = b.and("s2", [x3, z]).unwrap();
        let top = b.or("top", [s1, s2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let s = simplify(&t).unwrap();
        assert!(s.num_gates() < t.num_gates());
        agree_on_all_scenarios(&t, &s);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;

    /// Found by the workspace property tests: restricting a tree whose
    /// top gate ends up with a single live input must keep the top a
    /// gate rather than collapsing it into the basic event.
    #[test]
    fn restrict_keeps_a_single_input_top_gate() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.2).unwrap();
        let y = b.static_event("y", 0.3).unwrap();
        let top = b.and("top", [x, y]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let mut assignment = HashMap::new();
        assignment.insert(y, true);
        let Restriction::Tree { tree: r, .. } = restrict(&t, &assignment).unwrap() else {
            panic!("not constant");
        };
        assert!(r.is_gate(r.top()));
        assert_eq!(r.num_basic_events(), 1);
        let p = r.exact_static_probability().unwrap();
        assert!((p - 0.2).abs() < 1e-15);
    }
}

#[cfg(test)]
mod voting_duplicate_tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::tree::FaultTreeBuilder;

    /// Found by the workspace property tests: collapsing a pass-through
    /// gate can make two inputs of a voting gate identical; they still
    /// count as two positions.
    #[test]
    fn simplify_keeps_duplicate_voting_inputs() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.5).unwrap();
        let wrapped = b.or("wrapped", [x]).unwrap();
        let g = b.atleast("g", 2, [x, wrapped]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        // Original: x fails -> both positions fail -> top fails.
        let s = Scenario::from_events(&t, [x]);
        assert!(t.fails(t.top(), &s));
        let simplified = simplify(&t).unwrap();
        let x2 = simplified.node_by_name("x").unwrap();
        let s = Scenario::from_events(&simplified, [x2]);
        assert!(simplified.fails(simplified.top(), &s));
    }
}

/// Rebuild `tree` with every dynamic event's transition rates multiplied
/// by `factor_for(event)` and every static event's probability replaced
/// by `1 - (1-p)^f` (the probability a rate-scaled exponential would
/// produce over the same horizon). Factors must be non-negative and
/// finite; node ids are preserved.
///
/// This is the workhorse of parameter-uncertainty and sensitivity studies
/// on SD trees: scale the rates, re-analyze, repeat.
///
/// # Errors
///
/// Returns an error if a factor is invalid or rebuilding fails.
pub fn scale_event_rates<F>(tree: &FaultTree, mut factor_for: F) -> Result<FaultTree, FtError>
where
    F: FnMut(NodeId) -> f64,
{
    let mut builder = FaultTreeBuilder::new();
    for id in tree.node_ids() {
        let name = tree.name(id);
        if tree.is_gate(id) {
            builder.gate(
                name,
                tree.gate_kind(id).expect("gate"),
                tree.gate_inputs(id).to_vec(),
            )?;
            continue;
        }
        let factor = factor_for(id);
        if !factor.is_finite() || factor < 0.0 {
            return Err(FtError::InvalidProbability {
                name: name.to_owned(),
                probability: factor,
            });
        }
        match tree.behavior(id).expect("basic") {
            Behavior::Static { probability } => {
                let scaled = 1.0 - (1.0 - probability).powf(factor);
                builder.static_event(name, scaled.clamp(0.0, 1.0))?;
            }
            Behavior::Dynamic(chain) => {
                builder.dynamic_event(name, chain.with_scaled_rates(factor)?)?;
            }
            Behavior::Triggered(chain) => {
                builder.triggered_event(name, chain.with_scaled_rates(factor)?)?;
            }
        }
    }
    for event in tree.basic_events() {
        if let Some(gate) = tree.trigger_source(event) {
            builder.trigger(gate, event)?;
        }
    }
    builder.top(tree.top());
    builder.build()
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use sdft_ctmc::erlang;

    #[test]
    fn scaling_preserves_ids_and_scales_rates() {
        let mut b = FaultTreeBuilder::new();
        let s = b.static_event("s", 0.1).unwrap();
        let d = b
            .dynamic_event("d", erlang::repairable(2, 1e-3, 0.05).unwrap())
            .unwrap();
        let tr = b
            .triggered_event("tr", erlang::spare(2e-3, 0.04).unwrap())
            .unwrap();
        let g = b.or("g", [s, d]).unwrap();
        let top = b.and("top", [g, tr]).unwrap();
        b.trigger(g, tr).unwrap();
        b.top(top);
        let t = b.build().unwrap();

        let scaled = scale_event_rates(&t, |_| 2.0).unwrap();
        assert_eq!(scaled.len(), t.len());
        for id in t.node_ids() {
            assert_eq!(t.name(id), scaled.name(id), "ids preserved");
        }
        // Static: 1 - 0.9^2 = 0.19.
        assert!((scaled.static_probability(s).unwrap() - 0.19).abs() < 1e-12);
        // Dynamic rates doubled.
        let old_rate = t.plain_chain(d).unwrap().transitions_from(0)[0].1;
        let new_rate = scaled.plain_chain(d).unwrap().transitions_from(0)[0].1;
        assert!((new_rate - 2.0 * old_rate).abs() < 1e-15);
        // Trigger structure preserved.
        assert_eq!(scaled.trigger_source(tr), Some(g));
    }

    #[test]
    fn zero_factor_freezes_a_chain() {
        let mut b = FaultTreeBuilder::new();
        let d = b
            .dynamic_event("d", erlang::repairable(1, 1e-2, 0.1).unwrap())
            .unwrap();
        let g = b.or("g", [d]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let frozen = scale_event_rates(&t, |_| 0.0).unwrap();
        assert_eq!(frozen.plain_chain(d).unwrap().transition_count(), 0);
    }

    #[test]
    fn invalid_factors_are_rejected() {
        let mut b = FaultTreeBuilder::new();
        let s = b.static_event("s", 0.1).unwrap();
        let g = b.or("g", [s]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(scale_event_rates(&t, |_| f64::NAN).is_err());
        assert!(scale_event_rates(&t, |_| -1.0).is_err());
    }
}
