use crate::error::FtError;
use crate::node::{GateKind, NodeId};
use crate::tree::FaultTree;

/// A scenario: the set of basic events that fail (§II of the paper).
///
/// Scenarios are tied to a tree's node-id space; constructing one from a
/// tree sizes it accordingly.
///
/// # Example
///
/// ```
/// # use sdft_ft::{FaultTreeBuilder, Scenario};
/// # fn main() -> Result<(), sdft_ft::FtError> {
/// let mut b = FaultTreeBuilder::new();
/// let x = b.static_event("x", 0.5)?;
/// let y = b.static_event("y", 0.5)?;
/// let g = b.and("g", [x, y])?;
/// b.top(g);
/// let tree = b.build()?;
/// let mut s = Scenario::new(&tree);
/// s.set(x, true);
/// assert!(!tree.fails(tree.top(), &s));
/// s.set(y, true);
/// assert!(tree.fails(tree.top(), &s));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    failed: Vec<bool>,
}

impl Scenario {
    /// An empty scenario (no event failed) for `tree`.
    #[must_use]
    pub fn new(tree: &FaultTree) -> Self {
        Scenario {
            failed: vec![false; tree.len()],
        }
    }

    /// A scenario with exactly the given basic events failed.
    #[must_use]
    pub fn from_events<I>(tree: &FaultTree, events: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut s = Scenario::new(tree);
        for e in events {
            s.set(e, true);
        }
        s
    }

    /// Mark basic event `event` as failed (`true`) or functional (`false`).
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    pub fn set(&mut self, event: NodeId, failed: bool) {
        self.failed[event.index()] = failed;
    }

    /// Reset every event to functional, keeping the allocation. Lets hot
    /// loops (such as product-chain exploration) reuse one scenario
    /// instead of constructing one per query.
    pub fn clear(&mut self) {
        self.failed.fill(false);
    }

    /// Whether `event` is failed in this scenario.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the originating tree.
    #[must_use]
    pub fn contains(&self, event: NodeId) -> bool {
        self.failed[event.index()]
    }

    /// The failed events, in id order.
    pub fn events(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId::from_index(i))
    }
}

impl FaultTree {
    /// Evaluate every node under `scenario`, bottom-up; returns a vector
    /// indexed by node id with `true` for failed nodes.
    ///
    /// Basic events fail iff they are in the scenario; gates fail by their
    /// logical type (triggers and dynamic behaviours are disregarded —
    /// this is the static evaluation used to define both SFT semantics and
    /// the failure of gates in product states, §III-C1).
    #[must_use]
    pub fn evaluate_scenario(&self, scenario: &Scenario) -> Vec<bool> {
        let mut failed = Vec::new();
        self.evaluate_scenario_into(scenario, &mut failed);
        failed
    }

    /// [`FaultTree::evaluate_scenario`] into a caller-owned buffer, so
    /// repeated evaluations (millions, during product-chain exploration)
    /// reuse one allocation. The buffer is cleared and resized to the
    /// node count.
    pub fn evaluate_scenario_into(&self, scenario: &Scenario, failed: &mut Vec<bool>) {
        failed.clear();
        failed.resize(self.len(), false);
        for id in self.node_ids() {
            failed[id.index()] = if self.is_basic(id) {
                scenario.contains(id)
            } else {
                let inputs = self.gate_inputs(id);
                match self.gate_kind(id).expect("gate") {
                    GateKind::And => inputs.iter().all(|i| failed[i.index()]),
                    GateKind::Or => inputs.iter().any(|i| failed[i.index()]),
                    GateKind::AtLeast(k) => {
                        inputs.iter().filter(|i| failed[i.index()]).count() >= k as usize
                    }
                }
            };
        }
    }

    /// Whether `node` is failed by `scenario`.
    ///
    /// For repeated queries on the same scenario, prefer
    /// [`FaultTree::evaluate_scenario`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn fails(&self, node: NodeId, scenario: &Scenario) -> bool {
        self.evaluate_scenario(scenario)[node.index()]
    }

    /// The probability of `scenario`: all its events fail and all other
    /// basic events stay functional (§II).
    ///
    /// # Errors
    ///
    /// Returns an error if the tree contains dynamic basic events (scenario
    /// probabilities are a static-tree notion).
    pub fn scenario_probability(&self, scenario: &Scenario) -> Result<f64, FtError> {
        let mut p = 1.0;
        for event in self.basic_events() {
            let prob = self
                .static_probability(event)
                .ok_or_else(|| FtError::KindMismatch {
                    name: self.name(event).to_owned(),
                    expected: "a static basic event",
                })?;
            p *= if scenario.contains(event) {
                prob
            } else {
                1.0 - prob
            };
        }
        Ok(p)
    }

    /// The exact failure probability of a static fault tree by explicit
    /// enumeration of all scenarios (`p(FT)` of §II).
    ///
    /// This is exponential in the number of basic events and intended for
    /// validating the scalable algorithms on small models.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree has dynamic basic events or more than
    /// 25 basic events.
    pub fn exact_static_probability(&self) -> Result<f64, FtError> {
        let events: Vec<NodeId> = self.basic_events().collect();
        if events.len() > 25 {
            return Err(FtError::ExactAnalysisTooLarge {
                events: events.len(),
            });
        }
        let probs: Result<Vec<f64>, FtError> = events
            .iter()
            .map(|&e| {
                self.static_probability(e)
                    .ok_or_else(|| FtError::KindMismatch {
                        name: self.name(e).to_owned(),
                        expected: "a static basic event",
                    })
            })
            .collect();
        let probs = probs?;
        let mut total = 0.0;
        for mask in 0u32..(1u32 << events.len()) {
            let mut scenario = Scenario::new(self);
            let mut p = 1.0;
            for (bit, (&event, &prob)) in events.iter().zip(&probs).enumerate() {
                if mask >> bit & 1 == 1 {
                    scenario.set(event, true);
                    p *= prob;
                } else {
                    p *= 1.0 - prob;
                }
            }
            if p > 0.0 && self.fails(self.top(), &scenario) {
                total += p;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn gate_evaluation_follows_logic() {
        let t = example1();
        let a = t.node_by_name("a").unwrap();
        let c = t.node_by_name("c").unwrap();
        let e = t.node_by_name("e").unwrap();
        let top = t.top();
        // Only pump 1 side fails: top not failed.
        let s = Scenario::from_events(&t, [a]);
        assert!(!t.fails(top, &s));
        // Both pumps fail to start: top failed.
        let s = Scenario::from_events(&t, [a, c]);
        assert!(t.fails(top, &s));
        // Tank alone fails the top.
        let s = Scenario::from_events(&t, [e]);
        assert!(t.fails(top, &s));
    }

    #[test]
    fn atleast_gate_counts_failed_inputs() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.5).unwrap();
        let y = b.static_event("y", 0.5).unwrap();
        let z = b.static_event("z", 0.5).unwrap();
        let g = b.atleast("g", 2, [x, y, z]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(!t.fails(t.top(), &Scenario::from_events(&t, [x])));
        assert!(t.fails(t.top(), &Scenario::from_events(&t, [x, z])));
        assert!(t.fails(t.top(), &Scenario::from_events(&t, [x, y, z])));
    }

    #[test]
    fn example1_scenario_probability() {
        // Example 1: p({a, d}) ≈ 2.988e-6.
        let t = example1();
        let a = t.node_by_name("a").unwrap();
        let d = t.node_by_name("d").unwrap();
        let s = Scenario::from_events(&t, [a, d]);
        let p = t.scenario_probability(&s).unwrap();
        let exact = 3e-3 * 1e-3 * (1.0 - 1e-3) * (1.0 - 3e-3) * (1.0 - 3e-6);
        assert!((p - exact).abs() < 1e-18);
        assert!((p - 2.988e-6).abs() < 1e-8);
    }

    #[test]
    fn exact_probability_small_identities() {
        // Single OR over two events: 1 - (1-p)(1-q).
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.3).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let g = b.or("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let p = t.exact_static_probability().unwrap();
        assert!((p - (1.0 - 0.7 * 0.8)).abs() < 1e-12);

        // AND: p*q.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.3).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let p = t.exact_static_probability().unwrap();
        assert!((p - 0.06).abs() < 1e-12);
    }

    #[test]
    fn exact_probability_example1() {
        let t = example1();
        let p = t.exact_static_probability().unwrap();
        // p(top) = p(e) + (1-p(e)) * p(pump1) * p(pump2)
        let p1 = 1.0 - (1.0 - 3e-3) * (1.0 - 1e-3);
        let pe = 3e-6;
        let exact = pe + (1.0 - pe) * p1 * p1;
        assert!((p - exact).abs() < 1e-15, "{p} vs {exact}");
    }

    #[test]
    fn exact_probability_rejects_large_or_dynamic_trees() {
        let mut b = FaultTreeBuilder::new();
        let events: Vec<_> = (0..26)
            .map(|i| b.static_event(&format!("e{i}"), 0.1).unwrap())
            .collect();
        let g = b.or("g", events).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert!(matches!(
            t.exact_static_probability(),
            Err(FtError::ExactAnalysisTooLarge { events: 26 })
        ));
    }

    #[test]
    fn scenario_events_iterates_failed_set() {
        let t = example1();
        let a = t.node_by_name("a").unwrap();
        let e = t.node_by_name("e").unwrap();
        let s = Scenario::from_events(&t, [e, a]);
        let got: Vec<NodeId> = s.events().collect();
        assert_eq!(got, vec![a, e]);
        assert!(s.contains(a) && s.contains(e));
        assert!(!s.contains(t.node_by_name("b").unwrap()));
    }
}
