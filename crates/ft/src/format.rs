//! A plain-text serialization of SD fault trees.
//!
//! The format is line-oriented; `#` starts a comment and blank lines are
//! ignored. Declarations may appear in any order:
//!
//! ```text
//! # the running example of the paper (Example 3)
//! top cooling
//! basic a 0.003
//! basic c 0.003
//! basic e 0.000003
//! dynamic b erlang k=1 lambda=0.001 mu=0.05
//! dynamic d spare lambda=0.001 mu=0.05
//! gate pump1 or a b
//! gate pump2 or c d
//! gate pumps and pump1 pump2
//! gate cooling or pumps e
//! trigger pump1 d
//! ```
//!
//! Dynamic events can also be written with explicit chains:
//!
//! ```text
//! chain b plain
//!   state s0 init=1
//!   state s1 failed
//!   rate s0 s1 0.001
//!   rate s1 s0 0.05
//! end
//! ```
//!
//! `chain NAME triggered` blocks additionally carry `off`/`on` modes on
//! states and `map OFF ON` lines for the (un)triggering functions.
//! [`to_string`] always emits explicit chain blocks, so
//! `parse(to_string(t))` reproduces `t` exactly.
//!
//! # Grammar
//!
//! Tokens are whitespace-separated; `#` comments to end of line;
//! declarations may appear in any order (gates may reference names
//! defined later).
//!
//! ```text
//! file      := line*
//! line      := top | basic | dynamic | gate | trigger | chain-block
//! top       := "top" NAME
//! basic     := "basic" NAME PROB
//! dynamic   := "dynamic" NAME model
//! model     := "erlang" params | "erlang-triggered" params | "spare" params
//! params    := ("k=" INT)? "lambda=" RATE ("mu=" RATE)?
//!              ("passive=" FACTOR)? ("repair-while-off")?
//! gate      := "gate" NAME ("and" | "or" | "atleast" INT) NAME+
//! trigger   := "trigger" GATE EVENT
//! chain-block := "chain" NAME ("plain" | "triggered") chain-line* "end"
//! chain-line  := "state" NAME ("on" | "off")? ("failed")? ("init=" PROB)?
//!              | "rate" STATE STATE RATE
//!              | "map" OFF-STATE ON-STATE
//! ```
//!
//! `FaultTree` also implements [`std::str::FromStr`], so
//! `text.parse::<FaultTree>()` is equivalent to [`parse_str`].

use crate::error::FtError;
use crate::node::{Behavior, GateKind, NodeId};
use crate::tree::{FaultTree, FaultTreeBuilder};
use sdft_ctmc::{Ctmc, CtmcBuilder, Mode, TriggeredCtmc, TriggeredCtmcBuilder};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse a fault tree from its text representation.
///
/// # Errors
///
/// Returns [`FtError::Parse`] with a line number for malformed input, and
/// any builder/validation error for structurally invalid trees.
pub fn parse_str(input: &str) -> Result<FaultTree, FtError> {
    Parser::new(input).parse()
}

/// Serialize a fault tree to its text representation.
///
/// The output parses back to a structurally identical tree (same names,
/// gates, chains and triggers, with node ids possibly renumbered).
#[must_use]
pub fn to_string(tree: &FaultTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "top {}", tree.name(tree.top()));
    for event in tree.basic_events() {
        let name = tree.name(event);
        match tree.behavior(event).expect("basic event") {
            Behavior::Static { probability } => {
                let _ = writeln!(out, "basic {name} {probability}");
            }
            Behavior::Dynamic(chain) => {
                let _ = writeln!(out, "chain {name} plain");
                write_plain_chain(&mut out, chain);
                let _ = writeln!(out, "end");
            }
            Behavior::Triggered(chain) => {
                let _ = writeln!(out, "chain {name} triggered");
                write_triggered_chain(&mut out, chain);
                let _ = writeln!(out, "end");
            }
        }
    }
    for gate in tree.gates() {
        let name = tree.name(gate);
        let kind = match tree.gate_kind(gate).expect("gate") {
            GateKind::And => "and".to_owned(),
            GateKind::Or => "or".to_owned(),
            GateKind::AtLeast(k) => format!("atleast {k}"),
        };
        let inputs: Vec<&str> = tree
            .gate_inputs(gate)
            .iter()
            .map(|&i| tree.name(i))
            .collect();
        let _ = writeln!(out, "gate {name} {kind} {}", inputs.join(" "));
    }
    for event in tree.basic_events() {
        if let Some(gate) = tree.trigger_source(event) {
            let _ = writeln!(out, "trigger {} {}", tree.name(gate), tree.name(event));
        }
    }
    out
}

fn write_plain_chain(out: &mut String, chain: &Ctmc) {
    for s in 0..chain.len() {
        let _ = write!(out, "  state s{s}");
        if chain.is_failed(s) {
            let _ = write!(out, " failed");
        }
        let init = chain.initial_probability(s);
        if init > 0.0 {
            let _ = write!(out, " init={init}");
        }
        let _ = writeln!(out);
    }
    for s in 0..chain.len() {
        for &(to, rate) in chain.transitions_from(s) {
            let _ = writeln!(out, "  rate s{s} s{to} {rate}");
        }
    }
}

fn write_triggered_chain(out: &mut String, chain: &TriggeredCtmc) {
    let inner = chain.chain();
    for s in 0..chain.len() {
        let mode = match chain.mode(s) {
            Mode::Off => "off",
            Mode::On => "on",
        };
        let _ = write!(out, "  state s{s} {mode}");
        if inner.is_failed(s) {
            let _ = write!(out, " failed");
        }
        let init = inner.initial_probability(s);
        if init > 0.0 {
            let _ = write!(out, " init={init}");
        }
        let _ = writeln!(out);
    }
    for s in 0..chain.len() {
        if chain.mode(s) == Mode::Off {
            let _ = writeln!(out, "  map s{s} s{}", chain.on_of(s));
        }
    }
    for s in 0..chain.len() {
        for &(to, rate) in inner.transitions_from(s) {
            let _ = writeln!(out, "  rate s{s} s{to} {rate}");
        }
    }
}

enum EventDecl {
    Static(f64),
    Plain(Ctmc),
    Triggered(TriggeredCtmc),
}

struct GateDecl {
    kind: GateKind,
    inputs: Vec<String>,
    line: usize,
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    events: Vec<(String, EventDecl)>,
    gates: Vec<(String, GateDecl)>,
    triggers: Vec<(String, String, usize)>,
    top: Option<(String, usize)>,
}

fn err(line: usize, message: impl Into<String>) -> FtError {
    FtError::Parse {
        line: line + 1,
        message: message.into(),
    }
}

fn parse_f64(line: usize, s: &str, what: &str) -> Result<f64, FtError> {
    s.parse::<f64>()
        .map_err(|_| err(line, format!("invalid {what} {s:?}")))
}

fn parse_usize(line: usize, s: &str, what: &str) -> Result<usize, FtError> {
    s.parse::<usize>()
        .map_err(|_| err(line, format!("invalid {what} {s:?}")))
}

/// Parse `key=value` pairs into a map, erroring on unknown keys.
fn parse_kv<'a>(
    line: usize,
    tokens: &[&'a str],
    allowed: &[&str],
) -> Result<HashMap<&'a str, &'a str>, FtError> {
    let mut map = HashMap::new();
    for tok in tokens {
        if let Some((k, v)) = tok.split_once('=') {
            if !allowed.contains(&k) {
                return Err(err(line, format!("unknown parameter {k:?}")));
            }
            map.insert(k, v);
        } else if allowed.contains(tok) {
            map.insert(*tok, "");
        } else {
            return Err(err(line, format!("unexpected token {tok:?}")));
        }
    }
    Ok(map)
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            lines: input.lines().enumerate(),
            events: Vec::new(),
            gates: Vec::new(),
            triggers: Vec::new(),
            top: None,
        }
    }

    fn parse(mut self) -> Result<FaultTree, FtError> {
        while let Some((lineno, raw)) = self.lines.next() {
            let line = strip_comment(raw);
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.is_empty() {
                continue;
            }
            match tokens[0] {
                "top" => {
                    if tokens.len() != 2 {
                        return Err(err(lineno, "expected: top NAME"));
                    }
                    if self.top.is_some() {
                        return Err(err(lineno, "duplicate top declaration"));
                    }
                    self.top = Some((tokens[1].to_owned(), lineno));
                }
                "basic" => {
                    if tokens.len() != 3 {
                        return Err(err(lineno, "expected: basic NAME PROBABILITY"));
                    }
                    let p = parse_f64(lineno, tokens[2], "probability")?;
                    self.events
                        .push((tokens[1].to_owned(), EventDecl::Static(p)));
                }
                "dynamic" => self.parse_dynamic(lineno, &tokens)?,
                "chain" => self.parse_chain(lineno, &tokens)?,
                "gate" => self.parse_gate(lineno, &tokens)?,
                "trigger" => {
                    if tokens.len() != 3 {
                        return Err(err(lineno, "expected: trigger GATE EVENT"));
                    }
                    self.triggers
                        .push((tokens[1].to_owned(), tokens[2].to_owned(), lineno));
                }
                other => return Err(err(lineno, format!("unknown directive {other:?}"))),
            }
        }
        self.build()
    }

    fn parse_dynamic(&mut self, lineno: usize, tokens: &[&str]) -> Result<(), FtError> {
        if tokens.len() < 3 {
            return Err(err(lineno, "expected: dynamic NAME MODEL PARAMS..."));
        }
        let name = tokens[1].to_owned();
        match tokens[2] {
            "erlang" => {
                let kv = parse_kv(lineno, &tokens[3..], &["k", "lambda", "mu"])?;
                let k = kv.get("k").map_or(Ok(1), |v| parse_usize(lineno, v, "k"))?;
                let lambda = kv
                    .get("lambda")
                    .ok_or_else(|| err(lineno, "erlang requires lambda="))
                    .and_then(|v| parse_f64(lineno, v, "lambda"))?;
                let mu = kv
                    .get("mu")
                    .map_or(Ok(0.0), |v| parse_f64(lineno, v, "mu"))?;
                let chain = sdft_ctmc::erlang::repairable(k, lambda, mu)?;
                self.events.push((name, EventDecl::Plain(chain)));
            }
            "erlang-triggered" => {
                let kv = parse_kv(
                    lineno,
                    &tokens[3..],
                    &["k", "lambda", "mu", "passive", "repair-while-off"],
                )?;
                let k = kv.get("k").map_or(Ok(1), |v| parse_usize(lineno, v, "k"))?;
                let lambda = kv
                    .get("lambda")
                    .ok_or_else(|| err(lineno, "erlang-triggered requires lambda="))
                    .and_then(|v| parse_f64(lineno, v, "lambda"))?;
                let mu = kv
                    .get("mu")
                    .map_or(Ok(0.0), |v| parse_f64(lineno, v, "mu"))?;
                let passive = kv
                    .get("passive")
                    .map_or(Ok(0.01), |v| parse_f64(lineno, v, "passive"))?;
                let opts = sdft_ctmc::erlang::ErlangOptions {
                    phases: k,
                    failure_rate: lambda,
                    repair_rate: mu,
                    passive_factor: passive,
                    // Absence of the flag means the paper's §VI-A default:
                    // no repair before the equipment is triggered.
                    repair_while_off: kv.contains_key("repair-while-off"),
                };
                let chain = sdft_ctmc::erlang::triggered_with(opts)?;
                self.events.push((name, EventDecl::Triggered(chain)));
            }
            "spare" => {
                let kv = parse_kv(lineno, &tokens[3..], &["lambda", "mu"])?;
                let lambda = kv
                    .get("lambda")
                    .ok_or_else(|| err(lineno, "spare requires lambda="))
                    .and_then(|v| parse_f64(lineno, v, "lambda"))?;
                let mu = kv
                    .get("mu")
                    .map_or(Ok(0.0), |v| parse_f64(lineno, v, "mu"))?;
                let chain = sdft_ctmc::erlang::spare(lambda, mu)?;
                self.events.push((name, EventDecl::Triggered(chain)));
            }
            other => return Err(err(lineno, format!("unknown dynamic model {other:?}"))),
        }
        Ok(())
    }

    fn parse_chain(&mut self, lineno: usize, tokens: &[&str]) -> Result<(), FtError> {
        if tokens.len() != 3 {
            return Err(err(lineno, "expected: chain NAME plain|triggered"));
        }
        let name = tokens[1].to_owned();
        let triggered = match tokens[2] {
            "plain" => false,
            "triggered" => true,
            other => return Err(err(lineno, format!("unknown chain kind {other:?}"))),
        };
        let mut states: Vec<(String, Option<Mode>, bool, f64)> = Vec::new();
        let mut rates: Vec<(String, String, f64, usize)> = Vec::new();
        let mut maps: Vec<(String, String, usize)> = Vec::new();
        let mut closed = false;
        let mut end_line = lineno;
        for (inner_no, raw) in self.lines.by_ref() {
            end_line = inner_no;
            let line = strip_comment(raw);
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.is_empty() {
                continue;
            }
            match toks[0] {
                "end" => {
                    closed = true;
                    break;
                }
                "state" => {
                    if toks.len() < 2 {
                        return Err(err(
                            inner_no,
                            "expected: state NAME [on|off] [failed] [init=P]",
                        ));
                    }
                    let mut mode = None;
                    let mut failed = false;
                    let mut init = 0.0;
                    for tok in &toks[2..] {
                        match *tok {
                            "on" => mode = Some(Mode::On),
                            "off" => mode = Some(Mode::Off),
                            "failed" => failed = true,
                            other => {
                                if let Some(v) = other.strip_prefix("init=") {
                                    init = parse_f64(inner_no, v, "initial probability")?;
                                } else {
                                    return Err(err(
                                        inner_no,
                                        format!("unexpected state attribute {other:?}"),
                                    ));
                                }
                            }
                        }
                    }
                    if triggered && mode.is_none() {
                        return Err(err(inner_no, "triggered chain states need on|off"));
                    }
                    if !triggered && mode.is_some() {
                        return Err(err(inner_no, "plain chain states must not carry on|off"));
                    }
                    states.push((toks[1].to_owned(), mode, failed, init));
                }
                "rate" => {
                    if toks.len() != 4 {
                        return Err(err(inner_no, "expected: rate FROM TO RATE"));
                    }
                    let rate = parse_f64(inner_no, toks[3], "rate")?;
                    rates.push((toks[1].to_owned(), toks[2].to_owned(), rate, inner_no));
                }
                "map" => {
                    if toks.len() != 3 {
                        return Err(err(inner_no, "expected: map OFF ON"));
                    }
                    maps.push((toks[1].to_owned(), toks[2].to_owned(), inner_no));
                }
                other => return Err(err(inner_no, format!("unknown chain directive {other:?}"))),
            }
        }
        if !closed {
            return Err(err(end_line, format!("chain {name:?} not closed by 'end'")));
        }
        let index: HashMap<&str, usize> = states
            .iter()
            .enumerate()
            .map(|(i, (n, ..))| (n.as_str(), i))
            .collect();
        if index.len() != states.len() {
            return Err(err(
                lineno,
                format!("duplicate state name in chain {name:?}"),
            ));
        }
        let lookup = |l: usize, n: &str| -> Result<usize, FtError> {
            index
                .get(n)
                .copied()
                .ok_or_else(|| err(l, format!("unknown state {n:?}")))
        };
        if triggered {
            let mut b = TriggeredCtmcBuilder::new();
            for (_, mode, _, _) in &states {
                match mode.expect("checked above") {
                    Mode::On => b.on_state(),
                    Mode::Off => b.off_state(),
                };
            }
            for (i, (_, _, failed, init)) in states.iter().enumerate() {
                if *failed {
                    b.failed(i);
                }
                if *init > 0.0 {
                    b.initial(i, *init);
                }
            }
            for (from, to, rate, l) in &rates {
                b.rate(lookup(*l, from)?, lookup(*l, to)?, *rate);
            }
            for (off, on, l) in &maps {
                b.map(lookup(*l, off)?, lookup(*l, on)?);
            }
            let chain = b.build()?;
            self.events.push((name, EventDecl::Triggered(chain)));
        } else {
            if !maps.is_empty() {
                return Err(err(lineno, "plain chains cannot have map lines"));
            }
            let mut b = CtmcBuilder::new(states.len());
            for (i, (_, _, failed, init)) in states.iter().enumerate() {
                if *failed {
                    b.failed(i);
                }
                if *init > 0.0 {
                    b.initial(i, *init);
                }
            }
            for (from, to, rate, l) in &rates {
                b.rate(lookup(*l, from)?, lookup(*l, to)?, *rate);
            }
            let chain = b.build()?;
            self.events.push((name, EventDecl::Plain(chain)));
        }
        Ok(())
    }

    fn parse_gate(&mut self, lineno: usize, tokens: &[&str]) -> Result<(), FtError> {
        if tokens.len() < 3 {
            return Err(err(
                lineno,
                "expected: gate NAME and|or|atleast [K] INPUTS...",
            ));
        }
        let name = tokens[1].to_owned();
        let (kind, first_input) = match tokens[2] {
            "and" => (GateKind::And, 3),
            "or" => (GateKind::Or, 3),
            "atleast" => {
                if tokens.len() < 4 {
                    return Err(err(lineno, "expected: gate NAME atleast K INPUTS..."));
                }
                let k = parse_usize(lineno, tokens[3], "threshold")?;
                let k = u32::try_from(k)
                    .map_err(|_| err(lineno, format!("threshold {k} too large")))?;
                (GateKind::AtLeast(k), 4)
            }
            other => return Err(err(lineno, format!("unknown gate kind {other:?}"))),
        };
        let inputs: Vec<String> = tokens[first_input..]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        self.gates.push((
            name,
            GateDecl {
                kind,
                inputs,
                line: lineno,
            },
        ));
        Ok(())
    }

    fn build(self) -> Result<FaultTree, FtError> {
        let (top_name, top_line) = self.top.ok_or(FtError::MissingTop)?;
        let mut builder = FaultTreeBuilder::new();
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        for (name, decl) in self.events {
            let id = match decl {
                EventDecl::Static(p) => builder.static_event(&name, p)?,
                EventDecl::Plain(c) => builder.dynamic_event(&name, c)?,
                EventDecl::Triggered(c) => builder.triggered_event(&name, c)?,
            };
            ids.insert(name, id);
        }
        // Create gates in dependency order (inputs before gates).
        let mut pending: Vec<(String, GateDecl)> = self.gates;
        while !pending.is_empty() {
            let before = pending.len();
            let mut still_pending = Vec::new();
            for (name, decl) in pending {
                if decl.inputs.iter().all(|i| ids.contains_key(i)) {
                    let inputs: Vec<NodeId> = decl.inputs.iter().map(|i| ids[i]).collect();
                    let id = builder.gate(&name, decl.kind, inputs)?;
                    ids.insert(name, id);
                } else {
                    still_pending.push((name, decl));
                }
            }
            if still_pending.len() == before {
                // No progress: an unknown name or a cycle among gates.
                let (name, decl) = &still_pending[0];
                let missing = decl
                    .inputs
                    .iter()
                    .find(|i| !ids.contains_key(i.as_str()))
                    .expect("some input is unresolved");
                let is_declared = still_pending.iter().any(|(n, _)| n == missing);
                let message = if is_declared {
                    format!("cyclic gate definitions involving {name:?} and {missing:?}")
                } else {
                    format!("gate {name:?} references unknown node {missing:?}")
                };
                return Err(err(decl.line, message));
            }
            pending = still_pending;
        }
        for (gate, event, line) in self.triggers {
            let g = *ids
                .get(&gate)
                .ok_or_else(|| err(line, format!("unknown trigger gate {gate:?}")))?;
            let e = *ids
                .get(&event)
                .ok_or_else(|| err(line, format!("unknown trigger event {event:?}")))?;
            builder.trigger(g, e)?;
        }
        let top = *ids
            .get(&top_name)
            .ok_or_else(|| err(top_line, format!("unknown top node {top_name:?}")))?;
        builder.top(top);
        builder.build()
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

impl std::str::FromStr for FaultTree {
    type Err = FtError;

    /// Parse a fault tree from its text representation (see the module
    /// documentation for the grammar).
    ///
    /// ```
    /// use sdft_ft::FaultTree;
    ///
    /// # fn main() -> Result<(), sdft_ft::FtError> {
    /// let tree: FaultTree = "top g\nbasic x 0.1\ngate g or x\n".parse()?;
    /// assert_eq!(tree.num_basic_events(), 1);
    /// # Ok(())
    /// # }
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;

    const EXAMPLE3: &str = r"
        # the running example of the paper
        top cooling
        basic a 0.003
        basic c 0.003
        basic e 0.000003
        dynamic b erlang k=1 lambda=0.001 mu=0.05
        dynamic d spare lambda=0.001 mu=0.05
        gate cooling or pumps e      # forward references are fine
        gate pumps and pump1 pump2
        gate pump1 or a b
        gate pump2 or c d
        trigger pump1 d
    ";

    fn example3_tree() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn parses_the_running_example() {
        let t = parse_str(EXAMPLE3).unwrap();
        assert_eq!(t.num_basic_events(), 5);
        assert_eq!(t.num_gates(), 4);
        assert_eq!(t.name(t.top()), "cooling");
        let d = t.node_by_name("d").unwrap();
        let p1 = t.node_by_name("pump1").unwrap();
        assert_eq!(t.trigger_source(d), Some(p1));
        assert_eq!(t.dynamic_basic_events().count(), 2);
    }

    #[test]
    fn parsed_chains_match_builders() {
        let t = parse_str(EXAMPLE3).unwrap();
        let b = t.node_by_name("b").unwrap();
        assert_eq!(
            t.plain_chain(b).unwrap(),
            &erlang::repairable(1, 1e-3, 0.05).unwrap()
        );
        let d = t.node_by_name("d").unwrap();
        assert_eq!(
            t.triggered_chain(d).unwrap(),
            &erlang::spare(1e-3, 0.05).unwrap()
        );
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let t = example3_tree();
        let text = to_string(&t);
        let back = parse_str(&text).unwrap();
        assert_eq!(back.num_basic_events(), t.num_basic_events());
        assert_eq!(back.num_gates(), t.num_gates());
        for id in t.node_ids() {
            let name = t.name(id);
            let bid = back.node_by_name(name).unwrap();
            assert_eq!(t.gate_kind(id), back.gate_kind(bid), "{name}");
            assert_eq!(t.behavior(id), back.behavior(bid), "{name}");
            let t_inputs: Vec<&str> = t.gate_inputs(id).iter().map(|&i| t.name(i)).collect();
            let b_inputs: Vec<&str> = back
                .gate_inputs(bid)
                .iter()
                .map(|&i| back.name(i))
                .collect();
            assert_eq!(t_inputs, b_inputs, "{name}");
            assert_eq!(
                t.trigger_source(id).map(|g| t.name(g)),
                back.trigger_source(bid).map(|g| back.name(g)),
                "{name}"
            );
        }
        assert_eq!(t.name(t.top()), back.name(back.top()));
    }

    #[test]
    fn explicit_chain_blocks_parse() {
        let input = r"
            top top
            chain b plain
              state s0 init=1
              state s1 failed
              rate s0 s1 0.001
              rate s1 s0 0.05
            end
            chain d triggered
              state o0 off init=1
              state a0 on
              state a1 on failed
              state o1 off
              map o0 a0
              map o1 a1
              rate a0 a1 0.001
              rate a1 a0 0.05
            end
            gate g or b
            gate top and g d
            trigger g d
        ";
        let t = parse_str(input).unwrap();
        let b = t.node_by_name("b").unwrap();
        let chain = t.plain_chain(b).unwrap();
        assert_eq!(chain.len(), 2);
        assert!(chain.is_failed(1));
        let d = t.node_by_name("d").unwrap();
        let chain = t.triggered_chain(d).unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.mode(0), Mode::Off);
        assert_eq!(chain.on_of(0), 1);
    }

    #[test]
    fn atleast_gates_roundtrip() {
        let input = "top g\nbasic x 0.1\nbasic y 0.1\nbasic z 0.1\ngate g atleast 2 x y z\n";
        let t = parse_str(input).unwrap();
        assert_eq!(t.gate_kind(t.top()), Some(GateKind::AtLeast(2)));
        let back = parse_str(&to_string(&t)).unwrap();
        assert_eq!(back.gate_kind(back.top()), Some(GateKind::AtLeast(2)));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let input = "top g\nbasic x notanumber\n";
        match parse_str(input) {
            Err(FtError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_directive_and_unknown_names() {
        assert!(matches!(
            parse_str("frobnicate x\n"),
            Err(FtError::Parse { .. })
        ));
        let input = "top g\ngate g or missing\n";
        match parse_str(input) {
            Err(FtError::Parse { message, .. }) => {
                assert!(message.contains("missing"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_cyclic_gates() {
        let input = "top g1\nbasic x 0.1\ngate g1 or g2 x\ngate g2 or g1 x\n";
        match parse_str(input) {
            Err(FtError::Parse { message, .. }) => {
                assert!(message.contains("cyclic"), "{message}");
            }
            other => panic!("expected cyclic error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_top_and_missing_top() {
        assert!(matches!(
            parse_str("top a\ntop b\n"),
            Err(FtError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_str("basic x 0.1\n"),
            Err(FtError::MissingTop)
        ));
    }

    #[test]
    fn rejects_unclosed_chain() {
        let input = "top g\nchain b plain\n  state s0 init=1\n";
        assert!(matches!(parse_str(input), Err(FtError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_chain_modes() {
        // Plain chain with a mode.
        let input = "top g\nchain b plain\n  state s0 on init=1\nend\ngate g or b\n";
        assert!(matches!(parse_str(input), Err(FtError::Parse { .. })));
        // Triggered chain without a mode.
        let input = "top g\nchain b triggered\n  state s0 init=1\nend\ngate g or b\n";
        assert!(matches!(parse_str(input), Err(FtError::Parse { .. })));
    }

    #[test]
    fn erlang_triggered_sugar_matches_builder() {
        // Without any flag the sugar matches the paper default
        // (erlang::triggered: no repair while off).
        let input = "top top\nbasic x 0.1\ndynamic d erlang-triggered k=2 lambda=0.001 \
                     mu=0.05 passive=0.01\ngate g or x\ngate top and g d\n\
                     trigger g d\n";
        let t = parse_str(input).unwrap();
        let d = t.node_by_name("d").unwrap();
        let expected = erlang::triggered(2, 1e-3, 0.05).unwrap();
        assert_eq!(t.triggered_chain(d).unwrap(), &expected);

        // The opt-in flag enables latent repair while off.
        let input = "top top\nbasic x 0.1\ndynamic d erlang-triggered k=2 lambda=0.001 \
                     mu=0.05 passive=0.01 repair-while-off\ngate g or x\n\
                     gate top and g d\ntrigger g d\n";
        let t = parse_str(input).unwrap();
        let d = t.node_by_name("d").unwrap();
        let expected = erlang::triggered_with(sdft_ctmc::erlang::ErlangOptions {
            phases: 2,
            failure_rate: 1e-3,
            repair_rate: 0.05,
            passive_factor: 0.01,
            repair_while_off: true,
        })
        .unwrap();
        assert_eq!(t.triggered_chain(d).unwrap(), &expected);
    }
}
