use crate::error::FtError;
use crate::node::{Behavior, GateKind, Node, NodeId, NodeKind};
use sdft_ctmc::{Ctmc, TriggeredCtmc};
use std::collections::HashMap;

/// A static-and-dynamic (SD) fault tree (§III-B of the paper).
///
/// A fault tree is a finite DAG whose leaves are *basic events* — either
/// static (a failure probability) or dynamic (a CTMC, possibly triggered) —
/// and whose inner nodes are AND/OR (and, as an extension, at-least) gates.
/// A gate may *trigger* dynamic basic events: when the gate fails, the
/// triggered chains switch on; when it is repaired, they switch off.
///
/// A purely static fault tree is simply an SD fault tree without dynamic
/// events ([`FaultTree::is_static`]).
///
/// Trees are immutable once built; construct them with
/// [`FaultTreeBuilder`], which validates all structural invariants:
/// acyclicity (by construction: gate inputs must already exist), at most
/// one triggering gate per event, and acyclicity of the triggering
/// structure.
///
/// # Example
///
/// Example 1 of the paper — a water tank and two redundant pumps:
///
/// ```
/// use sdft_ft::{FaultTreeBuilder, GateKind};
///
/// # fn main() -> Result<(), sdft_ft::FtError> {
/// let mut b = FaultTreeBuilder::new();
/// let a = b.static_event("a", 3e-3)?; // pump 1 fails to start
/// let bb = b.static_event("b", 1e-3)?; // pump 1 fails in operation
/// let c = b.static_event("c", 3e-3)?; // pump 2 fails to start
/// let d = b.static_event("d", 1e-3)?; // pump 2 fails in operation
/// let e = b.static_event("e", 3e-6)?; // water tank fails
/// let p1 = b.or("pump1", [a, bb])?;
/// let p2 = b.or("pump2", [c, d])?;
/// let pumps = b.and("pumps", [p1, p2])?;
/// let top = b.or("cooling", [pumps, e])?;
/// b.top(top);
/// let tree = b.build()?;
/// assert_eq!(tree.num_basic_events(), 5);
/// assert_eq!(tree.num_gates(), 4);
/// assert!(tree.is_static());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTree {
    nodes: Vec<Node>,
    name_index: HashMap<String, NodeId>,
    top: NodeId,
    /// For each node: the gate triggering it (events only).
    trigger_source: Vec<Option<NodeId>>,
    /// For each node: whether its subtree contains a dynamic basic event.
    dynamic_subtree: Vec<bool>,
}

impl FaultTree {
    /// Total number of nodes (basic events plus gates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes; always `false` for built trees.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The top gate.
    #[must_use]
    pub fn top(&self) -> NodeId {
        self.top
    }

    /// All node ids, in creation order (inputs always precede the gates
    /// that use them, so this order is topological bottom-up).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Look a node up by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Whether `id` is a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_gate(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Gate { .. })
    }

    /// Whether `id` is a basic event.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_basic(&self, id: NodeId) -> bool {
        !self.is_gate(id)
    }

    /// The kind of gate `id`, or `None` for basic events.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn gate_kind(&self, id: NodeId) -> Option<GateKind> {
        match &self.nodes[id.index()].kind {
            NodeKind::Gate { kind, .. } => Some(*kind),
            NodeKind::Basic(_) => None,
        }
    }

    /// Inputs of gate `id`; empty for basic events.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn gate_inputs(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kind {
            NodeKind::Gate { inputs, .. } => inputs,
            NodeKind::Basic(_) => &[],
        }
    }

    /// The behaviour of basic event `id`, or `None` for gates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn behavior(&self, id: NodeId) -> Option<&Behavior> {
        match &self.nodes[id.index()].kind {
            NodeKind::Basic(b) => Some(b),
            NodeKind::Gate { .. } => None,
        }
    }

    /// The failure probability of a static basic event, or `None` for
    /// gates and dynamic events.
    #[must_use]
    pub fn static_probability(&self, id: NodeId) -> Option<f64> {
        match self.behavior(id) {
            Some(Behavior::Static { probability }) => Some(*probability),
            _ => None,
        }
    }

    /// The gate triggering basic event `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn trigger_source(&self, id: NodeId) -> Option<NodeId> {
        self.trigger_source[id.index()]
    }

    /// The dynamic basic events triggered by gate `id` (the set `trig(g)`);
    /// empty for basic events and non-triggering gates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn triggers_of(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kind {
            NodeKind::Gate { triggers, .. } => triggers,
            NodeKind::Basic(_) => &[],
        }
    }

    /// Whether the subtree rooted at `id` contains a dynamic basic event.
    /// For basic events: whether the event itself is dynamic. This is the
    /// paper's notion of a *dynamic gate* (§V-A).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_dynamic_subtree(&self, id: NodeId) -> bool {
        self.dynamic_subtree[id.index()]
    }

    /// All basic events, in creation order.
    pub fn basic_events(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.is_basic(id))
    }

    /// All gates, in creation order.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.is_gate(id))
    }

    /// All dynamic basic events, in creation order.
    pub fn dynamic_basic_events(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.basic_events()
            .filter(|&id| self.behavior(id).is_some_and(Behavior::is_dynamic))
    }

    /// Number of basic events.
    #[must_use]
    pub fn num_basic_events(&self) -> usize {
        self.basic_events().count()
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates().count()
    }

    /// Whether the tree is purely static (no dynamic basic events).
    #[must_use]
    pub fn is_static(&self) -> bool {
        !self.dynamic_subtree[self.top.index()] && self.dynamic_basic_events().next().is_none()
    }

    /// The basic events in the subtree rooted at `id` (each event once,
    /// in creation order).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn subtree_basic_events(&self, id: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut visited[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(self.gate_inputs(n));
        }
        self.node_ids()
            .filter(|&n| visited[n.index()] && self.is_basic(n))
            .collect()
    }

    /// All gates in the subtree rooted at `id`, including `id` itself if it
    /// is a gate (each gate once, in creation order).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn subtree_gates(&self, id: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut visited[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(self.gate_inputs(n));
        }
        self.node_ids()
            .filter(|&n| visited[n.index()] && self.is_gate(n))
            .collect()
    }

    /// The plain CTMC of an always-on dynamic event, if `id` is one.
    #[must_use]
    pub fn plain_chain(&self, id: NodeId) -> Option<&Ctmc> {
        match self.behavior(id) {
            Some(Behavior::Dynamic(c)) => Some(c),
            _ => None,
        }
    }

    /// The triggered CTMC of a triggered dynamic event, if `id` is one.
    #[must_use]
    pub fn triggered_chain(&self, id: NodeId) -> Option<&TriggeredCtmc> {
        match self.behavior(id) {
            Some(Behavior::Triggered(c)) => Some(c),
            _ => None,
        }
    }
}

/// Builder for [`FaultTree`] values.
///
/// Nodes are created bottom-up: gate inputs must already exist, which makes
/// the node DAG acyclic by construction. Node ids returned by the creation
/// methods are valid for this builder and the tree it eventually builds.
#[derive(Debug, Clone, Default)]
pub struct FaultTreeBuilder {
    nodes: Vec<Node>,
    name_index: HashMap<String, NodeId>,
    top: Option<NodeId>,
    trigger_source: Vec<Option<NodeId>>,
}

impl FaultTreeBuilder {
    /// Start building an empty fault tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes created so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes were created yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a node with this name was already created.
    #[must_use]
    pub fn contains_name(&self, name: &str) -> bool {
        self.name_index.contains_key(name)
    }

    /// The behaviour of an already-created basic event (`None` for gates
    /// and unknown ids). Mirrors [`FaultTree::behavior`] so tooling can
    /// introspect a tree while it is still under construction.
    #[must_use]
    pub fn behavior(&self, id: NodeId) -> Option<&Behavior> {
        match self.nodes.get(id.index()).map(|n| &n.kind) {
            Some(NodeKind::Basic(b)) => Some(b),
            _ => None,
        }
    }

    /// Inputs of an already-created gate (empty for basic events and
    /// unknown ids). Mirrors [`FaultTree::gate_inputs`].
    #[must_use]
    pub fn gate_inputs(&self, id: NodeId) -> &[NodeId] {
        match self.nodes.get(id.index()).map(|n| &n.kind) {
            Some(NodeKind::Gate { inputs, .. }) => inputs,
            _ => &[],
        }
    }

    /// The gate already declared to trigger `id`, if any. Mirrors
    /// [`FaultTree::trigger_source`].
    #[must_use]
    pub fn trigger_source(&self, id: NodeId) -> Option<NodeId> {
        self.trigger_source.get(id.index()).copied().flatten()
    }

    fn insert(&mut self, name: &str, kind: NodeKind) -> Result<NodeId, FtError> {
        if name.is_empty() || name.contains(char::is_whitespace) || name.contains('#') {
            return Err(FtError::InvalidName {
                name: name.to_owned(),
            });
        }
        if self.name_index.contains_key(name) {
            return Err(FtError::DuplicateName {
                name: name.to_owned(),
            });
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
        });
        self.name_index.insert(name.to_owned(), id);
        self.trigger_source.push(None);
        Ok(id)
    }

    fn check(&self, id: NodeId) -> Result<(), FtError> {
        if id.index() >= self.nodes.len() {
            Err(FtError::UnknownNode { index: id.index() })
        } else {
            Ok(())
        }
    }

    /// Add a static basic event with the given failure probability.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or the probability is not in
    /// `[0, 1]`.
    pub fn static_event(&mut self, name: &str, probability: f64) -> Result<NodeId, FtError> {
        if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
            return Err(FtError::InvalidProbability {
                name: name.to_owned(),
                probability,
            });
        }
        self.insert(name, NodeKind::Basic(Behavior::Static { probability }))
    }

    /// Add an always-on dynamic basic event modelled by `chain`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken.
    pub fn dynamic_event(&mut self, name: &str, chain: Ctmc) -> Result<NodeId, FtError> {
        self.insert(name, NodeKind::Basic(Behavior::Dynamic(chain)))
    }

    /// Add a triggered dynamic basic event modelled by `chain`. The event
    /// must be given a triggering gate with [`FaultTreeBuilder::trigger`]
    /// before the tree can be built.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken.
    pub fn triggered_event(&mut self, name: &str, chain: TriggeredCtmc) -> Result<NodeId, FtError> {
        self.insert(name, NodeKind::Basic(Behavior::Triggered(chain)))
    }

    /// Add a gate of the given kind over already-created inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken, any input id is unknown, the
    /// input list is empty, or an at-least threshold is out of range.
    pub fn gate<I>(&mut self, name: &str, kind: GateKind, inputs: I) -> Result<NodeId, FtError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        if inputs.is_empty() {
            return Err(FtError::EmptyGate {
                name: name.to_owned(),
            });
        }
        for &input in &inputs {
            self.check(input)?;
        }
        if let GateKind::AtLeast(k) = kind {
            if k == 0 || k as usize > inputs.len() {
                return Err(FtError::InvalidThreshold {
                    name: name.to_owned(),
                    threshold: k,
                    inputs: inputs.len(),
                });
            }
        }
        self.insert(
            name,
            NodeKind::Gate {
                kind,
                inputs,
                triggers: Vec::new(),
            },
        )
    }

    /// Add an AND gate. See [`FaultTreeBuilder::gate`] for errors.
    ///
    /// # Errors
    ///
    /// Same as [`FaultTreeBuilder::gate`].
    pub fn and<I>(&mut self, name: &str, inputs: I) -> Result<NodeId, FtError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.gate(name, GateKind::And, inputs)
    }

    /// Add an OR gate. See [`FaultTreeBuilder::gate`] for errors.
    ///
    /// # Errors
    ///
    /// Same as [`FaultTreeBuilder::gate`].
    pub fn or<I>(&mut self, name: &str, inputs: I) -> Result<NodeId, FtError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.gate(name, GateKind::Or, inputs)
    }

    /// Add an at-least-`k` (voting) gate. See [`FaultTreeBuilder::gate`]
    /// for errors.
    ///
    /// # Errors
    ///
    /// Same as [`FaultTreeBuilder::gate`].
    pub fn atleast<I>(&mut self, name: &str, k: u32, inputs: I) -> Result<NodeId, FtError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.gate(name, GateKind::AtLeast(k), inputs)
    }

    /// Declare that the failure of `gate` triggers the dynamic event
    /// `event`.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is unknown, `gate` is not a gate,
    /// `event` is not a triggered dynamic event, or `event` already has a
    /// triggering gate.
    pub fn trigger(&mut self, gate: NodeId, event: NodeId) -> Result<&mut Self, FtError> {
        self.check(gate)?;
        self.check(event)?;
        let gate_name = self.nodes[gate.index()].name.clone();
        if !matches!(self.nodes[gate.index()].kind, NodeKind::Gate { .. }) {
            return Err(FtError::KindMismatch {
                name: gate_name,
                expected: "a gate",
            });
        }
        let event_node = &self.nodes[event.index()];
        if !matches!(event_node.kind, NodeKind::Basic(Behavior::Triggered(_))) {
            return Err(FtError::NotTriggerable {
                name: event_node.name.clone(),
            });
        }
        if self.trigger_source[event.index()].is_some() {
            return Err(FtError::AlreadyTriggered {
                name: event_node.name.clone(),
            });
        }
        self.trigger_source[event.index()] = Some(gate);
        if let NodeKind::Gate { triggers, .. } = &mut self.nodes[gate.index()].kind {
            triggers.push(event);
        }
        Ok(self)
    }

    /// Designate the top gate.
    pub fn top(&mut self, gate: NodeId) -> &mut Self {
        self.top = Some(gate);
        self
    }

    /// Validate and build the tree.
    ///
    /// # Errors
    ///
    /// Returns an error if no top gate was set, the top node is not a gate,
    /// a triggered-chain event has no triggering gate, or the triggering
    /// structure is cyclic (§III-B: the DAG enriched by reversed trigger
    /// edges must be acyclic).
    pub fn build(self) -> Result<FaultTree, FtError> {
        let top = self.top.ok_or(FtError::MissingTop)?;
        self.check(top)?;
        if !matches!(self.nodes[top.index()].kind, NodeKind::Gate { .. }) {
            return Err(FtError::TopNotGate);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Basic(Behavior::Triggered(_)))
                && self.trigger_source[i].is_none()
            {
                return Err(FtError::UntriggeredTriggeredChain {
                    name: node.name.clone(),
                });
            }
        }
        self.check_trigger_acyclic()?;

        let mut dynamic_subtree = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            dynamic_subtree[i] = match &node.kind {
                NodeKind::Basic(b) => b.is_dynamic(),
                NodeKind::Gate { inputs, .. } => {
                    inputs.iter().any(|inp| dynamic_subtree[inp.index()])
                }
            };
        }

        Ok(FaultTree {
            nodes: self.nodes,
            name_index: self.name_index,
            top,
            trigger_source: self.trigger_source,
            dynamic_subtree,
        })
    }

    /// Detect cycles in the graph of downward tree edges plus reversed
    /// trigger edges (event → its triggering gate).
    fn check_trigger_acyclic(&self) -> Result<(), FtError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let successors = |id: usize| -> Vec<usize> {
            let mut out: Vec<usize> = match &self.nodes[id].kind {
                NodeKind::Gate { inputs, .. } => inputs.iter().map(|i| i.index()).collect(),
                NodeKind::Basic(_) => Vec::new(),
            };
            if let Some(g) = self.trigger_source[id] {
                out.push(g.index());
            }
            out
        };
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next-child).
            let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(start, successors(start), 0)];
            color[start] = Color::Gray;
            while let Some((node, succs, idx)) = stack.last_mut() {
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            let s = successors(next);
                            stack.push((next, s, 0));
                        }
                        Color::Gray => {
                            return Err(FtError::CyclicTriggering {
                                name: self.nodes[next].name.clone(),
                            });
                        }
                        Color::Black => {}
                    }
                } else {
                    color[*node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Structural statistics of a fault tree (see [`FaultTree::statistics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeStatistics {
    /// Basic events (static).
    pub static_events: usize,
    /// Basic events (dynamic, plain or triggered).
    pub dynamic_events: usize,
    /// Triggered dynamic events.
    pub triggered_events: usize,
    /// AND gates.
    pub and_gates: usize,
    /// OR gates.
    pub or_gates: usize,
    /// At-least (voting) gates.
    pub atleast_gates: usize,
    /// Longest path from the top gate to a basic event (a lone basic
    /// event under the top gives depth 1).
    pub depth: usize,
    /// Largest gate fan-in.
    pub max_fan_in: usize,
}

impl FaultTree {
    /// Structural statistics: event/gate mix, depth and fan-in.
    ///
    /// # Example
    ///
    /// ```
    /// # use sdft_ft::FaultTreeBuilder;
    /// # fn main() -> Result<(), sdft_ft::FtError> {
    /// let mut b = FaultTreeBuilder::new();
    /// let x = b.static_event("x", 0.1)?;
    /// let y = b.static_event("y", 0.2)?;
    /// let inner = b.or("inner", [x, y])?;
    /// let top = b.and("top", [inner, x])?;
    /// b.top(top);
    /// let stats = b.build()?.statistics();
    /// assert_eq!(stats.static_events, 2);
    /// assert_eq!(stats.depth, 2);
    /// assert_eq!(stats.max_fan_in, 2);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn statistics(&self) -> TreeStatistics {
        let mut stats = TreeStatistics::default();
        // Depth per node (ids are topological): events 0, gates
        // 1 + max(child depth).
        let mut depth = vec![0usize; self.len()];
        for id in self.node_ids() {
            match &self.nodes[id.index()].kind {
                NodeKind::Basic(behavior) => match behavior {
                    Behavior::Static { .. } => stats.static_events += 1,
                    Behavior::Dynamic(_) => stats.dynamic_events += 1,
                    Behavior::Triggered(_) => {
                        stats.dynamic_events += 1;
                        stats.triggered_events += 1;
                    }
                },
                NodeKind::Gate { kind, inputs, .. } => {
                    match kind {
                        GateKind::And => stats.and_gates += 1,
                        GateKind::Or => stats.or_gates += 1,
                        GateKind::AtLeast(_) => stats.atleast_gates += 1,
                    }
                    stats.max_fan_in = stats.max_fan_in.max(inputs.len());
                    depth[id.index()] =
                        1 + inputs.iter().map(|i| depth[i.index()]).max().unwrap_or(0);
                }
            }
        }
        stats.depth = depth[self.top.index()];
        stats
    }
}

#[cfg(test)]
mod statistics_tests {
    use super::*;
    use sdft_ctmc::erlang;

    #[test]
    fn statistics_count_the_example() {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        let stats = b.build().unwrap().statistics();
        assert_eq!(stats.static_events, 3);
        assert_eq!(stats.dynamic_events, 2);
        assert_eq!(stats.triggered_events, 1);
        assert_eq!(stats.and_gates, 1);
        assert_eq!(stats.or_gates, 3);
        assert_eq!(stats.atleast_gates, 0);
        assert_eq!(stats.depth, 3); // cooling -> pumps -> pump1 -> a
        assert_eq!(stats.max_fan_in, 2);
    }

    #[test]
    fn statistics_depth_on_shared_dags() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [g1]).unwrap();
        let top = b.and("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let stats = t.statistics();
        assert_eq!(stats.depth, 3); // top -> g2 -> g1 -> x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;

    fn example1() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.static_event("b", 1e-3).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.static_event("d", 1e-3).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    /// Example 3 of the paper: pumps' failures in operation are dynamic,
    /// pump 2 is triggered by the failure of pump 1.
    pub(crate) fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn example1_structure() {
        let t = example1();
        assert_eq!(t.len(), 9);
        assert_eq!(t.num_basic_events(), 5);
        assert_eq!(t.num_gates(), 4);
        assert!(t.is_static());
        assert_eq!(t.name(t.top()), "cooling");
        let pumps = t.node_by_name("pumps").unwrap();
        assert_eq!(t.gate_kind(pumps), Some(GateKind::And));
        assert_eq!(t.gate_inputs(pumps).len(), 2);
        let a = t.node_by_name("a").unwrap();
        assert_eq!(t.static_probability(a), Some(3e-3));
        assert!(t.gate_kind(a).is_none());
        assert!(t.behavior(pumps).is_none());
    }

    #[test]
    fn example3_triggers_and_dynamics() {
        let t = example3();
        assert!(!t.is_static());
        let d = t.node_by_name("d").unwrap();
        let p1 = t.node_by_name("pump1").unwrap();
        assert_eq!(t.trigger_source(d), Some(p1));
        assert_eq!(t.triggers_of(p1), &[d]);
        assert_eq!(t.dynamic_basic_events().count(), 2);
        assert!(t.is_dynamic_subtree(t.top()));
        assert!(t.is_dynamic_subtree(p1));
        let e = t.node_by_name("e").unwrap();
        assert!(!t.is_dynamic_subtree(e));
        assert!(t.triggered_chain(d).is_some());
        assert!(t.plain_chain(t.node_by_name("b").unwrap()).is_some());
    }

    #[test]
    fn subtree_queries() {
        let t = example1();
        let pumps = t.node_by_name("pumps").unwrap();
        let events: Vec<&str> = t
            .subtree_basic_events(pumps)
            .iter()
            .map(|&n| t.name(n))
            .collect();
        assert_eq!(events, vec!["a", "b", "c", "d"]);
        let gates: Vec<&str> = t.subtree_gates(pumps).iter().map(|&n| t.name(n)).collect();
        assert_eq!(gates, vec!["pump1", "pump2", "pumps"]);
        let all: Vec<&str> = t
            .subtree_basic_events(t.top())
            .iter()
            .map(|&n| t.name(n))
            .collect();
        assert_eq!(all, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn shared_subtrees_are_allowed() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.2).unwrap();
        let shared = b.or("shared", [x, y]).unwrap();
        let g1 = b.and("g1", [shared, x]).unwrap();
        let g2 = b.and("g2", [shared, y]).unwrap();
        let top = b.or("top", [g1, g2]).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(t.subtree_basic_events(t.top()).len(), 2);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = FaultTreeBuilder::new();
        b.static_event("x", 0.1).unwrap();
        let err = b.static_event("x", 0.2);
        assert_eq!(err, Err(FtError::DuplicateName { name: "x".into() }));
    }

    #[test]
    fn rejects_invalid_probability() {
        let mut b = FaultTreeBuilder::new();
        assert!(matches!(
            b.static_event("x", 1.5),
            Err(FtError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.static_event("x", f64::NAN),
            Err(FtError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.static_event("x", -0.1),
            Err(FtError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_empty_gate_and_foreign_ids() {
        let mut b = FaultTreeBuilder::new();
        assert!(matches!(
            b.and("g", std::iter::empty()),
            Err(FtError::EmptyGate { .. })
        ));
        let phantom = NodeId::from_index(40);
        assert!(matches!(
            b.and("g", [phantom]),
            Err(FtError::UnknownNode { index: 40 })
        ));
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        assert!(matches!(
            b.atleast("g", 3, [x, y]),
            Err(FtError::InvalidThreshold {
                threshold: 3,
                inputs: 2,
                ..
            })
        ));
        assert!(matches!(
            b.atleast("g", 0, [x, y]),
            Err(FtError::InvalidThreshold { threshold: 0, .. })
        ));
    }

    #[test]
    fn rejects_missing_or_invalid_top() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let b2 = b.clone();
        assert_eq!(b2.build().unwrap_err(), FtError::MissingTop);
        b.top(x);
        assert_eq!(b.build().unwrap_err(), FtError::TopNotGate);
    }

    #[test]
    fn rejects_double_trigger() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [x]).unwrap();
        b.trigger(g1, d).unwrap();
        assert!(matches!(
            b.trigger(g2, d),
            Err(FtError::AlreadyTriggered { .. })
        ));
    }

    #[test]
    fn rejects_triggering_static_or_plain_dynamic_events() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b
            .dynamic_event("y", erlang::repairable(1, 1e-3, 0.0).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        assert!(matches!(
            b.trigger(g, x),
            Err(FtError::NotTriggerable { .. })
        ));
        assert!(matches!(
            b.trigger(g, y),
            Err(FtError::NotTriggerable { .. })
        ));
        assert!(matches!(b.trigger(x, y), Err(FtError::KindMismatch { .. })));
    }

    #[test]
    fn rejects_triggered_chain_without_trigger() {
        let mut b = FaultTreeBuilder::new();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [d]).unwrap();
        b.top(g);
        assert!(matches!(
            b.build(),
            Err(FtError::UntriggeredTriggeredChain { .. })
        ));
    }

    #[test]
    fn rejects_cyclic_triggering() {
        // d1 under g1, d2 under g2; g1 triggers d2 and g2 triggers d1:
        // g1 -> d1 -> (trigger source) g2 -> d2 -> g1 is a cycle.
        let mut b = FaultTreeBuilder::new();
        let d1 = b
            .triggered_event("d1", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let d2 = b
            .triggered_event("d2", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g1 = b.or("g1", [d1]).unwrap();
        let g2 = b.or("g2", [d2]).unwrap();
        let top = b.and("top", [g1, g2]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.trigger(g2, d1).unwrap();
        b.top(top);
        assert!(matches!(b.build(), Err(FtError::CyclicTriggering { .. })));
    }

    #[test]
    fn accepts_acyclic_trigger_chains() {
        // g1 triggers d2 which is under g2; g2 triggers d3 under g3.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d2 = b
            .triggered_event("d2", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let d3 = b
            .triggered_event("d3", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [d2]).unwrap();
        let g3 = b.or("g3", [d3]).unwrap();
        let top = b.and("top", [g1, g2, g3]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.trigger(g2, d3).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(
            t.trigger_source(d3),
            Some(g3).filter(|_| false).or(Some(g2))
        );
    }

    #[test]
    fn node_ids_are_topological() {
        let t = example1();
        for g in t.gates() {
            for &input in t.gate_inputs(g) {
                assert!(input < g, "input {input} not before gate {g}");
            }
        }
    }
}
