#![warn(missing_docs)]

//! Static and SD (static + dynamic) fault trees.
//!
//! This crate implements the fault tree formalism of Krčál & Krčál
//! (DSN 2015): coherent fault trees over AND/OR (and, as an extension,
//! at-least) gates whose basic events are either *static* — a plain
//! failure probability — or *dynamic* — a continuous-time Markov chain,
//! possibly *triggered* by the failure of a gate.
//!
//! The main types are:
//!
//! * [`FaultTree`] / [`FaultTreeBuilder`] — the validated, immutable tree,
//! * [`Scenario`] — a set of failed basic events and the static gate
//!   evaluation (§II),
//! * [`Cutset`] / [`CutsetList`] — (minimal) cutsets and the rare-event
//!   approximation (§IV),
//! * [`format`](mod@format) — a plain-text serialization of SD fault trees,
//! * [`transform`] — restriction, simplification and voting-gate
//!   expansion,
//! * [`modules`](fn@modules) — independent-subtree (module) detection,
//! * [`dot`] — Graphviz export.
//!
//! # Example
//!
//! Example 3 of the paper — an emergency cooling system whose
//! failures-in-operation are dynamic and where the failure of pump 1
//! triggers the spare pump 2:
//!
//! ```
//! use sdft_ft::FaultTreeBuilder;
//! use sdft_ctmc::erlang;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FaultTreeBuilder::new();
//! let a = b.static_event("a", 3e-3)?;
//! let bb = b.dynamic_event("b", erlang::repairable(1, 1e-3, 0.05)?)?;
//! let c = b.static_event("c", 3e-3)?;
//! let d = b.triggered_event("d", erlang::spare(1e-3, 0.05)?)?;
//! let e = b.static_event("e", 3e-6)?;
//! let p1 = b.or("pump1", [a, bb])?;
//! let p2 = b.or("pump2", [c, d])?;
//! let pumps = b.and("pumps", [p1, p2])?;
//! let top = b.or("cooling", [pumps, e])?;
//! b.trigger(p1, d)?;
//! b.top(top);
//! let tree = b.build()?;
//! assert_eq!(tree.dynamic_basic_events().count(), 2);
//! # Ok(())
//! # }
//! ```

mod cutset;
pub mod dot;
mod error;
pub mod format;
pub mod hash;
pub mod modules;
mod node;
mod probs;
mod scenario;
mod signature;
pub mod transform;
mod tree;

pub use cutset::{Cutset, CutsetList, FallbackMode, FilterStats, IncrementalMinimizer};
pub use error::FtError;
pub use hash::{FxBuild, FxHasher};
pub use modules::modules;
pub use node::{Behavior, GateKind, NodeId};
pub use probs::EventProbabilities;
pub use scenario::Scenario;
pub use signature::{EventSignature, TreeSignature};
pub use tree::{FaultTree, FaultTreeBuilder, TreeStatistics};
