use std::fmt;

/// Errors produced when constructing, validating or parsing fault trees.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// A node name is already in use.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A node name is empty or contains whitespace or `#` (reserved by the
    /// text format).
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// A referenced node does not exist in this builder/tree.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// A referenced name does not exist.
    UnknownName {
        /// The offending name.
        name: String,
    },
    /// A gate was declared with no inputs.
    EmptyGate {
        /// Name of the offending gate.
        name: String,
    },
    /// An at-least gate has a threshold outside `1..=inputs`.
    InvalidThreshold {
        /// Name of the offending gate.
        name: String,
        /// The declared threshold.
        threshold: u32,
        /// Number of inputs of the gate.
        inputs: usize,
    },
    /// A static failure probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the offending basic event.
        name: String,
        /// The offending probability.
        probability: f64,
    },
    /// The top gate was never set.
    MissingTop,
    /// The designated top node is not a gate.
    TopNotGate,
    /// A gate operation was attempted on a basic event or vice versa.
    KindMismatch {
        /// Name of the offending node.
        name: String,
        /// What was expected of the node.
        expected: &'static str,
    },
    /// A trigger was declared for an event that already has one
    /// (the paper requires each dynamic event be triggered by at most one
    /// gate).
    AlreadyTriggered {
        /// Name of the offending event.
        name: String,
    },
    /// A trigger target is not a dynamic basic event with a triggered
    /// chain.
    NotTriggerable {
        /// Name of the offending node.
        name: String,
    },
    /// A dynamic event has a triggered chain but no triggering gate.
    UntriggeredTriggeredChain {
        /// Name of the offending event.
        name: String,
    },
    /// The triggering structure is cyclic: the DAG enriched by reversed
    /// trigger edges has a cycle (§III-B).
    CyclicTriggering {
        /// Name of a node on the cycle.
        name: String,
    },
    /// Exact enumeration was requested for a tree with too many basic
    /// events (the cost is exponential).
    ExactAnalysisTooLarge {
        /// Number of basic events in the tree.
        events: usize,
    },
    /// An error from the underlying Markov chain machinery.
    Ctmc(sdft_ctmc::CtmcError),
    /// A parse error in the text format.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::DuplicateName { name } => write!(f, "duplicate node name {name:?}"),
            FtError::InvalidName { name } => write!(
                f,
                "invalid node name {name:?}: names must be non-empty and free of whitespace and '#'"
            ),
            FtError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            FtError::UnknownName { name } => write!(f, "unknown node name {name:?}"),
            FtError::EmptyGate { name } => write!(f, "gate {name:?} has no inputs"),
            FtError::InvalidThreshold { name, threshold, inputs } => write!(
                f,
                "gate {name:?} has threshold {threshold} outside 1..={inputs}"
            ),
            FtError::InvalidProbability { name, probability } => {
                write!(f, "basic event {name:?} has invalid probability {probability}")
            }
            FtError::MissingTop => write!(f, "no top gate was set"),
            FtError::TopNotGate => write!(f, "the top node must be a gate"),
            FtError::KindMismatch { name, expected } => {
                write!(f, "node {name:?} is not {expected}")
            }
            FtError::AlreadyTriggered { name } => {
                write!(f, "event {name:?} is already triggered by another gate")
            }
            FtError::NotTriggerable { name } => write!(
                f,
                "node {name:?} cannot be triggered (it is not a dynamic event with a triggered chain)"
            ),
            FtError::UntriggeredTriggeredChain { name } => write!(
                f,
                "dynamic event {name:?} has a triggered chain but no triggering gate"
            ),
            FtError::CyclicTriggering { name } => {
                write!(f, "cyclic triggering structure through node {name:?}")
            }
            FtError::ExactAnalysisTooLarge { events } => write!(
                f,
                "exact enumeration over {events} basic events is infeasible (limit 25)"
            ),
            FtError::Ctmc(e) => write!(f, "markov chain error: {e}"),
            FtError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for FtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtError::Ctmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sdft_ctmc::CtmcError> for FtError {
    fn from(e: sdft_ctmc::CtmcError) -> Self {
        FtError::Ctmc(e)
    }
}
