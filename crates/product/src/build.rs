use crate::error::ProductError;
use sdft_ctmc::{Ctmc, CtmcBuilder, Mode};
use sdft_ft::{Behavior, FaultTree, NodeId, Scenario};
use std::collections::{BTreeMap, HashMap};

/// Options for product chain construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductOptions {
    /// Abort once the explored product state space exceeds this size.
    pub max_states: usize,
}

impl Default for ProductOptions {
    fn default() -> Self {
        ProductOptions {
            max_states: 2_000_000,
        }
    }
}

/// One basic event's contribution to the product state.
#[derive(Debug, Clone)]
struct Component {
    event: NodeId,
    chain: Ctmc,
    /// Mode and (un)triggering maps for triggered chains.
    modes: Option<ComponentModes>,
    trigger_gate: Option<NodeId>,
}

#[derive(Debug, Clone)]
struct ComponentModes {
    mode: Vec<Mode>,
    on_map: Vec<usize>,
    off_map: Vec<usize>,
}

/// The product Markov chain `C_FT` of an SD fault tree (§III-C).
#[derive(Debug, Clone)]
pub struct ProductChain {
    chain: Ctmc,
    /// Per product state: the component state of every tracked event.
    states: Vec<Vec<u16>>,
    /// Slot order: the basic events of the tree, in id order.
    events: Vec<NodeId>,
    /// Per slot: which component states count as failed.
    comp_failed: Vec<Vec<bool>>,
    /// Every transition with the component slot that drives it:
    /// `(from, to, slot, rate)`.
    tagged_transitions: Vec<(usize, usize, usize, f64)>,
}

impl ProductChain {
    /// Build the product chain of `tree`.
    ///
    /// # Errors
    ///
    /// Returns an error if the explored state space exceeds
    /// `options.max_states`.
    pub fn build(tree: &FaultTree, options: &ProductOptions) -> Result<Self, ProductError> {
        // Component states are packed into u16 slots; a single chain
        // larger than that would overflow the packing (and would exceed
        // any practical product budget anyway).
        for event in tree.dynamic_basic_events() {
            let len = match tree.behavior(event) {
                Some(sdft_ft::Behavior::Dynamic(c)) => c.len(),
                Some(sdft_ft::Behavior::Triggered(c)) => c.len(),
                _ => 0,
            };
            if len > usize::from(u16::MAX) {
                return Err(ProductError::TooManyStates {
                    limit: usize::from(u16::MAX),
                });
            }
        }
        Builder::new(tree).run(options)
    }

    /// The underlying CTMC (initial distribution, rates, failed states).
    #[must_use]
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Number of (consistent, reachable) product states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The basic events tracked per state, in slot order.
    #[must_use]
    pub fn events(&self) -> &[NodeId] {
        &self.events
    }

    /// The component states of product state `i`, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn component_states(&self, i: usize) -> &[u16] {
        &self.states[i]
    }

    /// Find a product state by its component states.
    #[must_use]
    pub fn find_state(&self, components: &[u16]) -> Option<usize> {
        self.states.iter().position(|s| s == components)
    }

    /// `Pr[Reach≤t(F)]` — the failure probability of the tree within the
    /// horizon `t` (§III-C2).
    ///
    /// # Errors
    ///
    /// Returns an error if `t` or `epsilon` is invalid.
    pub fn failure_probability(&self, t: f64, epsilon: f64) -> Result<f64, ProductError> {
        Ok(self.chain.reach_failed_probability(t, epsilon)?)
    }

    /// `Pr[Reach≤t(F)]` at several horizons from one uniformization pass
    /// (see [`sdft_ctmc::reach_probability_many`]); results follow the
    /// order of `horizons`.
    ///
    /// # Errors
    ///
    /// Returns an error if `horizons` is empty or contains an invalid
    /// value.
    pub fn failure_probability_many(
        &self,
        horizons: &[f64],
        epsilon: f64,
    ) -> Result<Vec<f64>, ProductError> {
        Ok(sdft_ctmc::reach_probability_many(
            &self.chain,
            horizons,
            epsilon,
        )?)
    }

    /// [`failure_probability_many`](Self::failure_probability_many) with
    /// explicit solver options and a reusable kernel workspace; also
    /// returns the solve's kernel statistics. This is the hot path used
    /// by `sdft-core`'s quantification: one workspace per worker thread
    /// amortizes all solver allocations across equivalence classes.
    ///
    /// # Errors
    ///
    /// Returns an error if `horizons` is empty or contains an invalid
    /// value.
    pub fn failure_probability_many_with(
        &self,
        horizons: &[f64],
        epsilon: f64,
        options: &sdft_ctmc::SolverOptions,
        workspace: &mut sdft_ctmc::SolverWorkspace,
    ) -> Result<(Vec<f64>, sdft_ctmc::SolveStats), ProductError> {
        Ok(sdft_ctmc::reach_probability_many_with(
            &self.chain,
            horizons,
            epsilon,
            options,
            workspace,
        )?)
    }

    /// The steady-state unavailability of the tree: the long-run
    /// probability that the top gate is failed. Only meaningful for
    /// repairable models (without repairs every failure is absorbing and
    /// the value tends to 1 whenever failure is reachable).
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying power iteration does not
    /// converge.
    pub fn steady_state_unavailability(
        &self,
        options: &sdft_ctmc::StationaryOptions,
    ) -> Result<f64, ProductError> {
        Ok(self.chain.steady_state_unavailability(options)?)
    }

    /// `Pr[Reach≤t(Failed(C))]` — the probability that all of `events`
    /// are failed *simultaneously* at some time within `t` (§V,
    /// property i of the SD cutset characterization). This is the exact
    /// reference value for the per-cutset quantification `p̃(C)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` or `epsilon` is invalid.
    ///
    /// # Panics
    ///
    /// Panics if an id in `events` is not a basic event of the tree.
    pub fn reach_events_failed_probability(
        &self,
        events: &[NodeId],
        t: f64,
        epsilon: f64,
    ) -> Result<f64, ProductError> {
        let slots: Vec<usize> = events
            .iter()
            .map(|e| {
                self.events
                    .iter()
                    .position(|x| x == e)
                    .expect("event is a basic event of the tree")
            })
            .collect();
        let mut builder = CtmcBuilder::new(self.states.len());
        for (s, p) in self.chain.initial_distribution().iter().enumerate() {
            if *p > 0.0 {
                builder.initial(s, *p);
            }
        }
        for s in 0..self.states.len() {
            for &(to, rate) in self.chain.transitions_from(s) {
                builder.rate(s, to, rate);
            }
        }
        for (s, comp) in self.states.iter().enumerate() {
            if slots.iter().all(|&i| self.comp_failed[i][comp[i] as usize]) {
                builder.failed(s);
            }
        }
        Ok(builder.build()?.reach_failed_probability(t, epsilon)?)
    }

    /// Split `Pr[Reach≤t(Failed(C))]` by the event whose transition
    /// *completes* the simultaneous failure — a quantitative take on the
    /// *minimal cut sequences* of the related literature (cutsets plus
    /// temporal order information).
    ///
    /// The completing event is the basic event whose stochastic
    /// transition enters `Failed(C)`; note it can lie *outside* the
    /// cutset, when its failure fires a trigger that switches a
    /// latent-failed chain on. Mass already in `Failed(C)` at time zero
    /// is reported separately.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` or `epsilon` is invalid.
    ///
    /// # Panics
    ///
    /// Panics if an id in `events` is not a basic event of the tree.
    pub fn completion_by_event(
        &self,
        events: &[NodeId],
        t: f64,
        epsilon: f64,
    ) -> Result<CompletionSplit, ProductError> {
        let slots: Vec<usize> = events
            .iter()
            .map(|e| {
                self.events
                    .iter()
                    .position(|x| x == e)
                    .expect("event is a basic event of the tree")
            })
            .collect();
        let n = self.states.len();
        let m = self.events.len();
        let in_failed: Vec<bool> = self
            .states
            .iter()
            .map(|comp| slots.iter().all(|&i| self.comp_failed[i][comp[i] as usize]))
            .collect();

        // States 0..n as-is; n..n+m are per-slot completion sinks.
        let mut builder = CtmcBuilder::new(n + m);
        for (s, p) in self.chain.initial_distribution().iter().enumerate() {
            if *p > 0.0 {
                builder.initial(s, *p);
            }
        }
        for &(from, to, slot, rate) in &self.tagged_transitions {
            if in_failed[from] {
                continue; // absorbed
            }
            if in_failed[to] {
                builder.rate(from, n + slot, rate);
            } else {
                builder.rate(from, to, rate);
            }
        }
        let absorbed = builder.build()?;
        let pi = sdft_ctmc::transient_distribution(&absorbed, t, epsilon)?;

        let initial: f64 = (0..n).filter(|&s| in_failed[s]).map(|s| pi[s]).sum();
        let by_event: Vec<(NodeId, f64)> = self
            .events
            .iter()
            .enumerate()
            .map(|(slot, &event)| (event, pi[n + slot]))
            .filter(|&(_, p)| p > 0.0)
            .collect();
        let total = initial + by_event.iter().map(|&(_, p)| p).sum::<f64>();
        Ok(CompletionSplit {
            initial,
            by_event,
            total,
        })
    }
}

/// The result of [`ProductChain::completion_by_event`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionSplit {
    /// Probability that the cutset is already failed at time zero.
    pub initial: f64,
    /// Probability of completing via each event's transition (events with
    /// zero contribution are omitted).
    pub by_event: Vec<(NodeId, f64)>,
    /// `initial` plus all event contributions — equals
    /// `Pr[Reach≤t(Failed(C))]`.
    pub total: f64,
}

/// Convenience wrapper: build the product chain of `tree` and compute its
/// failure probability at horizon `t` with truncation error `1e-12`.
///
/// # Errors
///
/// Returns an error if the state space exceeds the budget or the horizon
/// is invalid.
pub fn failure_probability(
    tree: &FaultTree,
    t: f64,
    options: &ProductOptions,
) -> Result<f64, ProductError> {
    ProductChain::build(tree, options)?.failure_probability(t, sdft_ctmc::DEFAULT_EPSILON)
}

/// Reusable buffers for trigger-update evaluation: one scenario and one
/// node-evaluation vector serve every state of an exploration.
struct Scratch {
    scenario: Scenario,
    failed: Vec<bool>,
}

impl Scratch {
    fn new(tree: &FaultTree) -> Self {
        Scratch {
            scenario: Scenario::new(tree),
            failed: Vec::with_capacity(tree.len()),
        }
    }
}

struct Builder<'a> {
    tree: &'a FaultTree,
    components: Vec<Component>,
}

impl<'a> Builder<'a> {
    fn new(tree: &'a FaultTree) -> Self {
        let components = tree
            .basic_events()
            .map(|event| match tree.behavior(event).expect("basic event") {
                Behavior::Static { probability } => {
                    let mut b = CtmcBuilder::new(2);
                    b.initial(0, 1.0 - probability)
                        .initial(1, *probability)
                        .failed(1);
                    Component {
                        event,
                        chain: b.build().expect("static two-state chain is valid"),
                        modes: None,
                        trigger_gate: None,
                    }
                }
                Behavior::Dynamic(chain) => Component {
                    event,
                    chain: chain.clone(),
                    modes: None,
                    trigger_gate: None,
                },
                Behavior::Triggered(chain) => {
                    let n = chain.len();
                    let mode: Vec<Mode> = (0..n).map(|s| chain.mode(s)).collect();
                    let on_map = (0..n)
                        .map(|s| {
                            if mode[s] == Mode::Off {
                                chain.on_of(s)
                            } else {
                                s
                            }
                        })
                        .collect();
                    let off_map = (0..n)
                        .map(|s| {
                            if mode[s] == Mode::On {
                                chain.off_of(s)
                            } else {
                                s
                            }
                        })
                        .collect();
                    Component {
                        event,
                        chain: chain.chain().clone(),
                        modes: Some(ComponentModes {
                            mode,
                            on_map,
                            off_map,
                        }),
                        trigger_gate: tree.trigger_source(event),
                    }
                }
            })
            .collect();
        Builder { tree, components }
    }

    /// Whether component `i` is failed in component state `s`.
    fn comp_failed(&self, i: usize, s: u16) -> bool {
        self.components[i].chain.is_failed(s as usize)
    }

    /// Fill `scenario` with the events failed in `state`. Reuses the
    /// caller's scenario: exploration evaluates millions of states and
    /// must not allocate per query.
    fn scenario_into(&self, state: &[u16], scenario: &mut Scenario) {
        scenario.clear();
        for (i, &s) in state.iter().enumerate() {
            if self.comp_failed(i, s) {
                scenario.set(self.components[i].event, true);
            }
        }
    }

    /// Apply trigger updates until the state is consistent (§III-C1b),
    /// in place, reusing `scratch` across calls.
    fn update(&self, state: &mut [u16], scratch: &mut Scratch) -> Result<(), ProductError> {
        // Each pass applies every pending switch; acyclicity of the
        // triggering structure bounds the number of passes by the number
        // of triggered events (a switched component can enable at most a
        // strictly "later" trigger in the acyclic order).
        let limit = self.components.len() + 2;
        for _ in 0..limit {
            self.scenario_into(state, &mut scratch.scenario);
            self.tree
                .evaluate_scenario_into(&scratch.scenario, &mut scratch.failed);
            let mut changed = false;
            for (i, comp) in self.components.iter().enumerate() {
                let (Some(modes), Some(gate)) = (&comp.modes, comp.trigger_gate) else {
                    continue;
                };
                let s = state[i] as usize;
                if scratch.failed[gate.index()] {
                    if modes.mode[s] == Mode::Off {
                        state[i] = u16::try_from(modes.on_map[s]).expect("state fits u16");
                        changed = true;
                    }
                } else if modes.mode[s] == Mode::On {
                    state[i] = u16::try_from(modes.off_map[s]).expect("state fits u16");
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(ProductError::UpdateDiverged)
    }

    fn run(self, options: &ProductOptions) -> Result<ProductChain, ProductError> {
        // Enumerate the support of the initial product distribution.
        // Ordered map: its iteration order below seeds the state
        // indexing, so it must not depend on per-instance hash seeds —
        // state order decides float summation order throughout the
        // transient analysis, and bitwise reproducibility across runs
        // (and across the quantification cache's on/off paths) hangs on
        // it.
        let mut initial: BTreeMap<Vec<u16>, f64> = BTreeMap::new();
        let mut partial: Vec<(Vec<u16>, f64)> = vec![(Vec::new(), 1.0)];
        for comp in &self.components {
            let mut next = Vec::new();
            for (prefix, p) in &partial {
                for s in 0..comp.chain.len() {
                    let ps = comp.chain.initial_probability(s);
                    if ps > 0.0 {
                        let mut v = prefix.clone();
                        v.push(u16::try_from(s).expect("state fits u16"));
                        next.push((v, p * ps));
                    }
                }
            }
            partial = next;
            if partial.len() > options.max_states {
                return Err(ProductError::TooManyStates {
                    limit: options.max_states,
                });
            }
        }
        // Update each initial combination into its consistent state and
        // merge probabilities (the initial-distribution rule of §III-C1).
        let mut scratch = Scratch::new(self.tree);
        for (mut state, p) in partial {
            self.update(&mut state, &mut scratch)?;
            *initial.entry(state).or_insert(0.0) += p;
        }

        // Breadth-first exploration of consistent states.
        let mut index: HashMap<Vec<u16>, usize> = HashMap::new();
        let mut states: Vec<Vec<u16>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut add_state = |s: &[u16],
                             states: &mut Vec<Vec<u16>>,
                             queue: &mut Vec<usize>|
         -> Result<usize, ProductError> {
            if let Some(&i) = index.get(s) {
                return Ok(i);
            }
            if states.len() >= options.max_states {
                return Err(ProductError::TooManyStates {
                    limit: options.max_states,
                });
            }
            let i = states.len();
            index.insert(s.to_vec(), i);
            states.push(s.to_vec());
            queue.push(i);
            Ok(i)
        };

        let mut init_list: Vec<(usize, f64)> = Vec::new();
        for (state, p) in initial {
            let i = add_state(&state, &mut states, &mut queue)?;
            init_list.push((i, p));
        }

        // The explored frontier reuses two state buffers; `add_state`
        // copies only when it actually inserts a new product state.
        let mut transitions: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut current: Vec<u16> = Vec::new();
        let mut evolved: Vec<u16> = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let from = queue[head];
            head += 1;
            current.clear();
            current.extend_from_slice(&states[from]);
            for (i, comp) in self.components.iter().enumerate() {
                for &(to_comp, rate) in comp.chain.transitions_from(current[i] as usize) {
                    evolved.clear();
                    evolved.extend_from_slice(&current);
                    evolved[i] = u16::try_from(to_comp).expect("state fits u16");
                    self.update(&mut evolved, &mut scratch)?;
                    let to = add_state(&evolved, &mut states, &mut queue)?;
                    transitions.push((from, to, i, rate));
                }
            }
        }

        let mut b = CtmcBuilder::new(states.len());
        for (i, p) in init_list {
            b.initial(i, p);
        }
        for &(from, to, _, rate) in &transitions {
            b.rate(from, to, rate);
        }
        let top = self.tree.top().index();
        for (i, state) in states.iter().enumerate() {
            self.scenario_into(state, &mut scratch.scenario);
            self.tree
                .evaluate_scenario_into(&scratch.scenario, &mut scratch.failed);
            if scratch.failed[top] {
                b.failed(i);
            }
        }
        let chain = b.build()?;
        let events = self.components.iter().map(|c| c.event).collect();
        let comp_failed = self
            .components
            .iter()
            .map(|c| (0..c.chain.len()).map(|s| c.chain.is_failed(s)).collect())
            .collect();
        Ok(ProductChain {
            chain,
            states,
            events,
            comp_failed,
            tagged_transitions: transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    /// Example 3 of the paper.
    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn repeated_builds_are_bitwise_deterministic() {
        // Several static events give the initial product distribution a
        // multi-state support; its enumeration order seeds the state
        // indexing and thus every float summation downstream. A hash-map
        // ordering here once made two builds of the *same* tree disagree
        // in the last ulp across processes.
        let mut b = FaultTreeBuilder::new();
        let s1 = b.static_event("s1", 0.3).unwrap();
        let s2 = b.static_event("s2", 0.2).unwrap();
        let s3 = b.static_event("s3", 0.4).unwrap();
        let x = b
            .dynamic_event("x", erlang::repairable(1, 0.02, 0.1).unwrap())
            .unwrap();
        let d = b
            .triggered_event("d", erlang::spare(0.05, 0.0).unwrap())
            .unwrap();
        let trig = b.or("trig", [s1, s2, x]).unwrap();
        let g = b.and("g", [s3, x, d]).unwrap();
        b.trigger(trig, d).unwrap();
        b.top(g);
        let tree = b.build().unwrap();
        let p0 = failure_probability(&tree, 12.0, &ProductOptions::default()).unwrap();
        for _ in 0..8 {
            let p = failure_probability(&tree, 12.0, &ProductOptions::default()).unwrap();
            assert_eq!(p.to_bits(), p0.to_bits(), "{p} vs {p0}");
        }
    }

    #[test]
    fn static_only_tree_matches_enumeration() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.2).unwrap();
        let y = b.static_event("y", 0.3).unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let p = failure_probability(&t, 100.0, &ProductOptions::default()).unwrap();
        assert!((p - 0.06).abs() < 1e-12);
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        assert_eq!(pc.num_states(), 4);
        assert_eq!(pc.chain().transition_count(), 0);
    }

    #[test]
    fn single_dynamic_event_matches_chain_analysis() {
        let mut b = FaultTreeBuilder::new();
        let chain = erlang::repairable(2, 1e-2, 0.1).unwrap();
        let x = b.dynamic_event("x", chain.clone()).unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let p = failure_probability(&t, 24.0, &ProductOptions::default()).unwrap();
        let expected = chain.reach_failed_probability(24.0, 1e-12).unwrap();
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn example3_builds_and_behaves() {
        let t = example3();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        // Components: a(2) b(2) c(2) d(4) e(2) = 128 raw states, but only
        // consistent ones are kept (d is on iff pump1 is failed).
        assert!(pc.num_states() <= 64, "states: {}", pc.num_states());
        assert!(pc.num_states() >= 16);
        let p24 = pc.failure_probability(24.0, 1e-12).unwrap();
        let p48 = pc.failure_probability(48.0, 1e-12).unwrap();
        assert!(p24 > 0.0 && p24 < 1e-3);
        assert!(p48 > p24, "failure probability must grow with the horizon");
    }

    #[test]
    fn example5_update_chain() {
        // From Example 5: failing b in (ok,ok,ok,off,fail-e? ...) — here
        // we check the core mechanism: when b fails, pump1 fails and d is
        // switched on; when b is repaired, d is switched off again.
        let t = example3();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        // Slots are in id order: a=0, b=1, c=2, d=3, e=4.
        // Initial state: everything ok, d off (component state 0).
        let init = pc
            .find_state(&[0, 0, 0, 0, 0])
            .expect("initial state exists");
        // b fails (component state 1) => pump1 failed => d switched on:
        // spare layout: 0=off-ok, 1=off-latent? erlang::spare uses
        // triggered_with(phases=1): off states {0,1}, on states {2,3}.
        // on(0) = 2.
        let after = pc
            .find_state(&[0, 1, 0, 2, 0])
            .expect("b-failed state exists");
        let rate = pc
            .chain()
            .transitions_from(init)
            .iter()
            .find(|&&(to, _)| to == after)
            .map(|&(_, r)| r);
        assert_eq!(
            rate,
            Some(1e-3),
            "evolution b fails with rate 0.001 + update d on"
        );
        // And back: repairing b (rate 0.05) switches d off again.
        let back = pc
            .chain()
            .transitions_from(after)
            .iter()
            .find(|&&(to, _)| to == init)
            .map(|&(_, r)| r);
        assert_eq!(
            back,
            Some(0.05),
            "repair of b with rate 0.05 + update d off"
        );
    }

    #[test]
    fn initial_distribution_merges_updated_states() {
        // A static event failing at t=0 triggers d immediately: the
        // initial distribution must put d's mass on the on-state.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.25).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        let top = b.and("top", [g, d]).unwrap();
        b.trigger(g, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        // State (x failed, d on-ok): initial probability 0.25.
        let s = pc.find_state(&[1, 2]).expect("triggered initial state");
        assert!((pc.chain().initial_probability(s) - 0.25).abs() < 1e-15);
        // State (x ok, d off-ok): initial probability 0.75.
        let s = pc.find_state(&[0, 0]).expect("untouched initial state");
        assert!((pc.chain().initial_probability(s) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn failed_states_follow_the_top_gate() {
        let t = example3();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        // (ok, ok, ok, off, fail): water tank failure alone fails the top.
        let s = pc.find_state(&[0, 0, 0, 0, 1]).expect("tank-failed state");
        assert!(pc.chain().is_failed(s));
        let s0 = pc.find_state(&[0, 0, 0, 0, 0]).unwrap();
        assert!(!pc.chain().is_failed(s0));
    }

    #[test]
    fn state_budget_is_enforced() {
        let t = example3();
        let err = ProductChain::build(&t, &ProductOptions { max_states: 3 });
        assert!(matches!(err, Err(ProductError::TooManyStates { limit: 3 })));
    }

    #[test]
    fn triggered_event_cannot_fail_while_off() {
        // d alone under the top (via AND with a never-failing partner
        // wouldn't be expressible; instead check reachability): with no
        // other failures, pump1 never fails, d never turns on, and the
        // probability of the AND(top) staying safe is 1 minus tank-ish...
        // Simpler: tree whose top = AND(x, d) with x never failing: the
        // top probability must be 0 because d is never triggered.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.0).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [x]).unwrap();
        let top = b.and("top", [g, d]).unwrap();
        b.trigger(g, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let p = failure_probability(&t, 1000.0, &ProductOptions::default()).unwrap();
        assert_eq!(p, 0.0);
    }
}

#[cfg(test)]
mod stationary_tests {
    use super::*;
    use sdft_ctmc::StationaryOptions;
    use sdft_ft::FaultTreeBuilder;

    #[test]
    fn steady_state_of_two_repairable_components() {
        // AND of two independent repairable components: the long-run
        // unavailability is the product of the component unavailabilities.
        let mut b = FaultTreeBuilder::new();
        let c1 = sdft_ctmc::erlang::repairable(1, 2e-3, 0.1).unwrap();
        let c2 = sdft_ctmc::erlang::repairable(1, 3e-3, 0.2).unwrap();
        let x = b.dynamic_event("x", c1).unwrap();
        let y = b.dynamic_event("y", c2).unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        let u = pc
            .steady_state_unavailability(&StationaryOptions::default())
            .unwrap();
        let u1 = 2e-3 / (2e-3 + 0.1);
        let u2 = 3e-3 / (3e-3 + 0.2);
        assert!((u - u1 * u2).abs() < 1e-9, "{u} vs {}", u1 * u2);
    }

    #[test]
    fn triggered_spare_reduces_steady_state_unavailability() {
        // A spare that only runs while the primary is failed has a lower
        // long-run joint unavailability than an always-on redundant pair.
        let mut always = FaultTreeBuilder::new();
        let x = always
            .dynamic_event("x", sdft_ctmc::erlang::repairable(1, 5e-3, 0.05).unwrap())
            .unwrap();
        let y = always
            .dynamic_event("y", sdft_ctmc::erlang::repairable(1, 5e-3, 0.05).unwrap())
            .unwrap();
        let g = always.and("g", [x, y]).unwrap();
        always.top(g);
        let always_tree = always.build().unwrap();

        let mut spare = FaultTreeBuilder::new();
        let x = spare
            .dynamic_event("x", sdft_ctmc::erlang::repairable(1, 5e-3, 0.05).unwrap())
            .unwrap();
        let d = spare
            .triggered_event("d", sdft_ctmc::erlang::spare(5e-3, 0.05).unwrap())
            .unwrap();
        let w = spare.or("w", [x]).unwrap();
        let g = spare.and("g", [w, d]).unwrap();
        spare.trigger(w, d).unwrap();
        spare.top(g);
        let spare_tree = spare.build().unwrap();

        let opts = StationaryOptions::default();
        let u_always = ProductChain::build(&always_tree, &ProductOptions::default())
            .unwrap()
            .steady_state_unavailability(&opts)
            .unwrap();
        let u_spare = ProductChain::build(&spare_tree, &ProductOptions::default())
            .unwrap()
            .steady_state_unavailability(&opts)
            .unwrap();
        assert!(
            u_spare < u_always,
            "spare {u_spare} should beat always-on {u_always}"
        );
    }
}

#[cfg(test)]
mod completion_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    #[test]
    fn completion_split_sums_to_reach_probability() {
        // Example 3: cutset {b, d}.
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        let events = [t.node_by_name("b").unwrap(), t.node_by_name("d").unwrap()];
        let split = pc.completion_by_event(&events, 24.0, 1e-12).unwrap();
        let reach = pc
            .reach_events_failed_probability(&events, 24.0, 1e-12)
            .unwrap();
        assert!(
            (split.total - reach).abs() < 1e-12,
            "{} vs {reach}",
            split.total
        );
        assert_eq!(split.initial, 0.0, "nothing is failed at time zero");
        // Both completions happen: d fails last (after b triggered it)
        // and b fails last (d failed while on from an earlier b episode,
        // b repaired and failed again).
        let share = |name: &str| {
            let id = t.node_by_name(name).unwrap();
            split
                .by_event
                .iter()
                .find(|&&(e2, _)| e2 == id)
                .map_or(0.0, |&(_, p)| p)
        };
        assert!(share("d") > 0.0);
        assert!(share("b") > 0.0);
        // d completing dominates: d can only fail while b is failed.
        assert!(share("d") > share("b"));
    }

    #[test]
    fn static_cutsets_complete_at_time_zero() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.2).unwrap();
        let y = b.static_event("y", 0.5).unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        let split = pc.completion_by_event(&[x, y], 100.0, 1e-12).unwrap();
        assert!((split.initial - 0.1).abs() < 1e-12);
        assert!(split.by_event.is_empty());
        assert!((split.total - 0.1).abs() < 1e-12);
    }

    #[test]
    fn trigger_switch_attributes_to_the_firing_event() {
        // d degrades while off (passive factor) into a latent failure;
        // when x fails, the trigger switches d on *already failed* — the
        // completion is driven by x.
        let mut b = FaultTreeBuilder::new();
        let x = b
            .dynamic_event("x", erlang::repairable(1, 5e-3, 0.0).unwrap())
            .unwrap();
        // High passive factor so latent failures are common.
        let chain = erlang::triggered_with(sdft_ctmc::erlang::ErlangOptions {
            phases: 1,
            failure_rate: 5e-3,
            repair_rate: 0.0,
            passive_factor: 1.0,
            repair_while_off: false,
        })
        .unwrap();
        let d = b.triggered_event("d", chain).unwrap();
        let w = b.or("w", [x]).unwrap();
        let top = b.and("top", [w, d]).unwrap();
        b.trigger(w, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        let split = pc.completion_by_event(&[x, d], 200.0, 1e-12).unwrap();
        let share = |name: &str| {
            let id = t.node_by_name(name).unwrap();
            split
                .by_event
                .iter()
                .find(|&&(e2, _)| e2 == id)
                .map_or(0.0, |&(_, p)| p)
        };
        assert!(
            share("x") > 0.0,
            "x's failure completes via the trigger switch"
        );
        assert!(share("d") > 0.0, "d can also fail last while on");
        let reach = pc
            .reach_events_failed_probability(&[x, d], 200.0, 1e-12)
            .unwrap();
        assert!((split.total - reach).abs() < 1e-12);
    }
}

#[cfg(test)]
mod cascade_tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    /// One evolution step can require several update rounds: x failing
    /// fires g1 which switches d2 on; if d2 switches on *into a latent
    /// failure*, g2 fires in the same instant and switches d3 on too.
    #[test]
    fn cascading_trigger_updates_resolve_in_one_transition() {
        let mut b = FaultTreeBuilder::new();
        let x = b
            .dynamic_event("x", erlang::repairable(1, 1e-2, 0.0).unwrap())
            .unwrap();
        // d2 degrades at the full rate while off, so latent failures are
        // common; no repair.
        let latent = erlang::triggered_with(sdft_ctmc::erlang::ErlangOptions {
            phases: 1,
            failure_rate: 1e-2,
            repair_rate: 0.0,
            passive_factor: 1.0,
            repair_while_off: false,
        })
        .unwrap();
        let d2 = b.triggered_event("d2", latent.clone()).unwrap();
        let d3 = b.triggered_event("d3", latent).unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [d2]).unwrap();
        let g3 = b.or("g3", [d3]).unwrap();
        let top = b.and("top", [g1, g2, g3]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.trigger(g2, d3).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();

        // Layout per triggered event (k=1): off {0: ok, 1: latent},
        // on {2: ok, 3: failed}; x: {0 ok, 1 failed}.
        // State: x ok, d2 latent-off, d3 latent-off.
        let staged = pc.find_state(&[0, 1, 1]).expect("latent stage exists");
        // x fails: g1 fires -> d2 on (failed) -> g2 fires -> d3 on
        // (failed) — a two-round cascade merged into one transition.
        let done = pc.find_state(&[1, 3, 3]).expect("fully failed state");
        let rate = pc
            .chain()
            .transitions_from(staged)
            .iter()
            .find(|&&(to, _)| to == done)
            .map(|&(_, r)| r);
        assert_eq!(
            rate,
            Some(1e-2),
            "single transition covers the whole cascade"
        );
        assert!(pc.chain().is_failed(done));
    }

    /// The reverse cascade: repairing the root un-triggers the chain.
    #[test]
    fn repair_cascades_switch_chains_off() {
        let mut b = FaultTreeBuilder::new();
        let x = b
            .dynamic_event("x", erlang::repairable(1, 1e-2, 0.5).unwrap())
            .unwrap();
        let d2 = b
            .triggered_event("d2", erlang::spare(1e-2, 0.0).unwrap())
            .unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let top = b.and("top", [g1, d2]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
        // spare layout: off {0 ok, 1 latent}, on {2 ok, 3 failed}.
        // x failed, d2 on-ok --repair x (rate 0.5)--> x ok, d2 off-ok.
        let running = pc.find_state(&[1, 2]).expect("triggered state");
        let idle = pc.find_state(&[0, 0]).expect("idle state");
        let rate = pc
            .chain()
            .transitions_from(running)
            .iter()
            .find(|&&(to, _)| to == idle)
            .map(|&(_, r)| r);
        assert_eq!(rate, Some(0.5), "repair switches the spare off again");
    }
}

#[cfg(test)]
mod u16_guard_tests {
    use super::*;
    use sdft_ctmc::CtmcBuilder;
    use sdft_ft::FaultTreeBuilder;

    /// Found in review: a component chain wider than u16 must produce a
    /// clean error, not a packing panic.
    #[test]
    fn oversized_component_chains_error_cleanly() {
        let n = usize::from(u16::MAX) + 2;
        let mut cb = CtmcBuilder::new(n);
        cb.initial(0, 1.0);
        for s in 0..n - 1 {
            cb.rate(s, s + 1, 1e-6);
        }
        cb.failed(n - 1);
        let chain = cb.build().unwrap();
        let mut b = FaultTreeBuilder::new();
        let x = b.dynamic_event("x", chain).unwrap();
        let g = b.or("g", [x]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let err = ProductChain::build(&t, &ProductOptions::default());
        assert!(matches!(err, Err(ProductError::TooManyStates { .. })));
    }
}
