use std::fmt;

/// Errors produced when building or analysing a product chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ProductError {
    /// The product state space exceeded the configured budget.
    TooManyStates {
        /// The configured budget.
        limit: usize,
    },
    /// Trigger updates failed to reach a consistent state (impossible for
    /// trees accepted by the builder; indicates an internal invariant
    /// violation).
    UpdateDiverged,
    /// An error from the Markov chain layer.
    Ctmc(sdft_ctmc::CtmcError),
}

impl fmt::Display for ProductError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductError::TooManyStates { limit } => {
                write!(f, "product chain exceeded the state budget of {limit}")
            }
            ProductError::UpdateDiverged => {
                write!(f, "trigger updates did not reach a consistent state")
            }
            ProductError::Ctmc(e) => write!(f, "markov chain error: {e}"),
        }
    }
}

impl std::error::Error for ProductError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProductError::Ctmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sdft_ctmc::CtmcError> for ProductError {
    fn from(e: sdft_ctmc::CtmcError) -> Self {
        ProductError::Ctmc(e)
    }
}
