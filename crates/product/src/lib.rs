#![warn(missing_docs)]

//! The exact product-chain semantics of SD fault trees (§III-C of
//! Krčál & Krčál, DSN 2015).
//!
//! Each state of the product Markov chain `C_FT` records the state of
//! every basic event; static events contribute a frozen two-state chain
//! whose failure is decided by the initial random draw. An *evolution*
//! step of one component may leave the state inconsistent with the
//! triggering structure (a gate failed while a triggered chain is still
//! off, or vice versa); such states are *updated* — the (un)triggering
//! maps are applied until a consistent state is reached (guaranteed by the
//! acyclicity of the triggering structure) — and the evolution plus its
//! updates merge into a single transition.
//!
//! The failure probability of the tree within a horizon `t` is the
//! probability that the product chain reaches a state failing the top
//! gate.
//!
//! Building the product chain is exponential in the number of basic
//! events. It serves two purposes in this workspace:
//!
//! * ground truth for validating the scalable analysis on small models,
//! * the quantification engine for the small per-cutset trees `FT_C`
//!   constructed by `sdft-core` (§V-C), where the state space is small by
//!   construction.
//!
//! # Example
//!
//! ```
//! use sdft_ft::format;
//! use sdft_product::{failure_probability, ProductOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = format::parse_str(
//!     "top g\n\
//!      basic x 0.01\n\
//!      dynamic y erlang k=1 lambda=0.001 mu=0.05\n\
//!      gate g and x y\n",
//! )?;
//! let p = failure_probability(&tree, 24.0, &ProductOptions::default())?;
//! assert!(p > 0.0 && p < 0.01);
//! # Ok(())
//! # }
//! ```

mod build;
mod error;

pub use build::{failure_probability, CompletionSplit, ProductChain, ProductOptions};
pub use error::ProductError;
