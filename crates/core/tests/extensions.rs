//! Tests for the extensions over the paper: the fast under-approximation
//! (the conclusion's "disregarding interplays" sketch) and time-aware
//! importance measures.

use sdft_core::{
    analyze, quantify_cutset, AnalysisOptions, FtcContext, QuantifyOptions, TriggerTreatment,
};
use sdft_ctmc::erlang;
use sdft_ft::{Cutset, FaultTree, FaultTreeBuilder};
use sdft_product::{ProductChain, ProductOptions};

/// A static-joins model where the sibling dynamic event matters
/// (Example 11's point).
fn static_joins_model() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let e = b
        .dynamic_event("e", erlang::repairable(1, 8e-3, 0.2).unwrap())
        .unwrap();
    let f = b
        .dynamic_event("f", erlang::repairable(1, 9e-3, 0.25).unwrap())
        .unwrap();
    let joins = b.or("joins", [e, f]).unwrap();
    let g = b
        .triggered_event("g", erlang::spare(7e-3, 0.15).unwrap())
        .unwrap();
    let top = b.and("top", [joins, g]).unwrap();
    b.trigger(joins, g).unwrap();
    b.top(top);
    b.build().unwrap()
}

#[test]
fn cutset_only_under_approximates() {
    let t = static_joins_model();
    let ctx = FtcContext::new(&t).unwrap();
    let e = t.node_by_name("e").unwrap();
    let g = t.node_by_name("g").unwrap();
    let cutset = Cutset::new([e, g]);
    let horizon = 72.0;

    let classified = quantify_cutset(&t, &ctx, &cutset, &QuantifyOptions::new(horizon)).unwrap();
    let fast = quantify_cutset(
        &t,
        &ctx,
        &cutset,
        &QuantifyOptions {
            treatment: TriggerTreatment::CutsetOnly,
            ..QuantifyOptions::new(horizon)
        },
    )
    .unwrap();

    // The fast mode drops the sibling f: smaller chain, lower value.
    assert_eq!(fast.added_dynamic, 0);
    assert!(classified.added_dynamic > 0);
    assert!(fast.chain_states < classified.chain_states);
    assert!(
        fast.probability < classified.probability,
        "under-approximation {} !< {}",
        fast.probability,
        classified.probability
    );

    // And the classified value is the exact one.
    let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
    let exact = pc
        .reach_events_failed_probability(&[e, g], horizon, 1e-12)
        .unwrap();
    assert!((classified.probability - exact).abs() / exact < 1e-6);
    assert!(fast.probability <= exact * (1.0 + 1e-9));
}

#[test]
fn cutset_only_is_exact_under_static_branching() {
    // When the triggering gates already have static branching, both
    // treatments coincide.
    let mut b = FaultTreeBuilder::new();
    let x = b.static_event("x", 0.02).unwrap();
    let p = b
        .dynamic_event("p", erlang::repairable(1, 5e-3, 0.1).unwrap())
        .unwrap();
    let gate = b.or("gate", [x, p]).unwrap();
    let d = b
        .triggered_event("d", erlang::spare(4e-3, 0.1).unwrap())
        .unwrap();
    let top = b.and("top", [gate, d]).unwrap();
    b.trigger(gate, d).unwrap();
    b.top(top);
    let t = b.build().unwrap();
    let ctx = FtcContext::new(&t).unwrap();
    let p_id = t.node_by_name("p").unwrap();
    let d_id = t.node_by_name("d").unwrap();
    let cutset = Cutset::new([p_id, d_id]);
    let a = quantify_cutset(&t, &ctx, &cutset, &QuantifyOptions::new(48.0)).unwrap();
    let b_ = quantify_cutset(
        &t,
        &ctx,
        &cutset,
        &QuantifyOptions {
            treatment: TriggerTreatment::CutsetOnly,
            ..QuantifyOptions::new(48.0)
        },
    )
    .unwrap();
    assert!((a.probability - b_.probability).abs() < 1e-15);
}

#[test]
fn whole_analysis_under_approximation_brackets() {
    // Rare-event rates so the REA slack stays small.
    let mut b = FaultTreeBuilder::new();
    let e = b
        .dynamic_event("e", erlang::repairable(1, 8e-4, 0.2).unwrap())
        .unwrap();
    let f = b
        .dynamic_event("f", erlang::repairable(1, 9e-4, 0.25).unwrap())
        .unwrap();
    let joins = b.or("joins", [e, f]).unwrap();
    let g = b
        .triggered_event("g", erlang::spare(7e-4, 0.15).unwrap())
        .unwrap();
    let top = b.and("top", [joins, g]).unwrap();
    b.trigger(joins, g).unwrap();
    b.top(top);
    let t = b.build().unwrap();

    let exact = sdft_product::failure_probability(&t, 72.0, &ProductOptions::default()).unwrap();
    let mut opts = AnalysisOptions::new(72.0);
    opts.mocus = sdft_mocus::MocusOptions::exhaustive();
    let classified = analyze(&t, &opts).unwrap();
    opts.treatment = TriggerTreatment::CutsetOnly;
    let fast = analyze(&t, &opts).unwrap();
    // Per-cutset the fast mode under-approximates, so the summed
    // frequency can only drop; against the *exact* top probability no
    // relation is guaranteed (the rare-event summation still
    // over-counts overlaps).
    assert!(fast.frequency <= classified.frequency);
    assert!(
        classified.frequency >= exact * 0.999 && classified.frequency <= exact * 1.1,
        "classified {} vs exact {exact}",
        classified.frequency
    );
}

#[test]
fn dynamic_fussell_vesely_ranks_risk_drivers() {
    let t = sdft_models::toy::example3();
    let result = analyze(&t, &AnalysisOptions::new(24.0)).unwrap();
    let fv = result.fussell_vesely();
    assert!(!fv.is_empty());
    // Shares are in [0, 1] and sorted descending.
    for pair in fv.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
    for &(_, share) in &fv {
        assert!((0.0..=1.0).contains(&share));
    }
    // b and d dominate: their joint cutset carries most of the frequency
    // (see the quickstart output), so each share exceeds the tank's.
    let share = |name: &str| {
        let id = t.node_by_name(name).unwrap();
        fv.iter().find(|&&(e, _)| e == id).map_or(0.0, |&(_, s)| s)
    };
    assert!(share("b") > share("e"));
    assert!(share("d") > share("e"));
}

#[test]
fn chain_budget_errors_propagate_through_the_parallel_driver() {
    let t = sdft_models::toy::example3();
    let mut opts = AnalysisOptions::new(24.0);
    opts.max_chain_states = 1; // no dynamic cutset model fits
    opts.threads = 4;
    let err = analyze(&t, &opts);
    assert!(
        matches!(err, Err(sdft_core::CoreError::Product(_))),
        "expected a product-chain budget error, got {err:?}"
    );
    // Sequential path reports the same class of error.
    opts.threads = 1;
    assert!(matches!(
        analyze(&t, &opts),
        Err(sdft_core::CoreError::Product(_))
    ));
}

#[test]
fn mocus_budget_errors_propagate() {
    let t = sdft_models::toy::example3();
    let mut opts = AnalysisOptions::new(24.0);
    opts.mocus = sdft_mocus::MocusOptions {
        max_cutsets: 1,
        ..sdft_mocus::MocusOptions::default()
    };
    assert!(matches!(
        analyze(&t, &opts),
        Err(sdft_core::CoreError::Mocus(
            sdft_mocus::MocusError::TooManyCutsets { .. }
        ))
    ));
}
