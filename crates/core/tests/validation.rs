//! Cross-validation of the scalable analysis against the exact product
//! chain semantics (§III-C) and the Monte-Carlo simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdft_core::{analyze, quantify_cutset, AnalysisOptions, QuantifyOptions};
use sdft_ctmc::erlang;
use sdft_ft::{Cutset, FaultTree, FaultTreeBuilder, NodeId};
use sdft_mocus::MocusOptions;
use sdft_product::{ProductChain, ProductOptions};

fn example3() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    let a = b.static_event("a", 3e-3).unwrap();
    let bb = b
        .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
        .unwrap();
    let c = b.static_event("c", 3e-3).unwrap();
    let d = b
        .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
        .unwrap();
    let e = b.static_event("e", 3e-6).unwrap();
    let p1 = b.or("pump1", [a, bb]).unwrap();
    let p2 = b.or("pump2", [c, d]).unwrap();
    let pumps = b.and("pumps", [p1, p2]).unwrap();
    let top = b.or("cooling", [pumps, e]).unwrap();
    b.trigger(p1, d).unwrap();
    b.top(top);
    b.build().unwrap()
}

fn ids(tree: &FaultTree, names: &[&str]) -> Vec<NodeId> {
    names
        .iter()
        .map(|n| tree.node_by_name(n).unwrap())
        .collect()
}

#[test]
fn example3_frequency_brackets_the_exact_probability() {
    let t = example3();
    let exact = sdft_product::failure_probability(&t, 24.0, &ProductOptions::default()).unwrap();
    let mut opts = AnalysisOptions::new(24.0);
    opts.mocus = MocusOptions::exhaustive();
    let result = analyze(&t, &opts).unwrap();
    // Rare-event approximation over cutsets: close to and not far below
    // the exact value.
    assert!(
        result.frequency >= exact * 0.999,
        "frequency {} vs exact {exact}",
        result.frequency
    );
    assert!(
        result.frequency <= exact * 1.05,
        "frequency {} vs exact {exact}",
        result.frequency
    );
    // And strictly sharper than the static worst-case analysis.
    assert!(result.frequency < result.static_rea);
}

#[test]
fn per_cutset_quantification_matches_exact_reference() {
    // For cutsets whose triggering is decided inside the cutset, p̃(C)
    // equals Pr[Reach≤t(Failed(C))] on the full product chain.
    let t = example3();
    let ctx = sdft_core::FtcContext::new(&t).unwrap();
    let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
    let qopts = QuantifyOptions::new(24.0);

    // {a, d}: trigger fired at 0 by the static a ∈ C.
    let c = Cutset::new(ids(&t, &["a", "d"]));
    let ours = quantify_cutset(&t, &ctx, &c, &qopts).unwrap().probability;
    let reference = pc
        .reach_events_failed_probability(&ids(&t, &["a", "d"]), 24.0, 1e-12)
        .unwrap();
    assert!(
        (ours - reference).abs() / reference < 1e-6,
        "{{a,d}}: {ours} vs {reference}"
    );

    // {b, c}: no triggering involved at all.
    let c = Cutset::new(ids(&t, &["b", "c"]));
    let ours = quantify_cutset(&t, &ctx, &c, &qopts).unwrap().probability;
    let reference = pc
        .reach_events_failed_probability(&ids(&t, &["b", "c"]), 24.0, 1e-12)
        .unwrap();
    assert!(
        (ours - reference).abs() / reference < 1e-6,
        "{{b,c}}: {ours} vs {reference}"
    );

    // {e}: purely static.
    let c = Cutset::new(ids(&t, &["e"]));
    let ours = quantify_cutset(&t, &ctx, &c, &qopts).unwrap().probability;
    assert!((ours - 3e-6).abs() < 1e-15);

    // {b, d}: the static-branching rule conditions the guard static a
    // out (assumed functional); the result is a slight under-count of
    // the reference, bounded by p(a) (those worlds are covered by the
    // {a, d} cutset).
    let c = Cutset::new(ids(&t, &["b", "d"]));
    let ours = quantify_cutset(&t, &ctx, &c, &qopts).unwrap().probability;
    let reference = pc
        .reach_events_failed_probability(&ids(&t, &["b", "d"]), 24.0, 1e-12)
        .unwrap();
    assert!(
        ours <= reference * (1.0 + 1e-9),
        "{{b,d}}: {ours} vs {reference}"
    );
    assert!(
        (reference - ours) / reference < 3e-3 * 2.0,
        "under-count must be bounded by the guard probability"
    );
}

#[test]
fn general_case_quantification_is_exact() {
    // Trigger gate = OR(AND(b, dstat), b2): the general case keeps every
    // subtree event, so p̃({e}) must equal the exact reference.
    let mut b = FaultTreeBuilder::new();
    let bb = b
        .dynamic_event("b", erlang::repairable(1, 5e-3, 0.1).unwrap())
        .unwrap();
    let dstat = b.static_event("dstat", 0.2).unwrap();
    let b2 = b
        .dynamic_event("b2", erlang::repairable(1, 3e-3, 0.05).unwrap())
        .unwrap();
    let inner = b.and("inner", [bb, dstat]).unwrap();
    let g = b.or("g", [inner, b2]).unwrap();
    let e = b
        .triggered_event("e", erlang::spare(4e-3, 0.02).unwrap())
        .unwrap();
    let top = b.and("top", [g, e]).unwrap();
    b.trigger(g, e).unwrap();
    b.top(top);
    let t = b.build().unwrap();

    let ctx = sdft_core::FtcContext::new(&t).unwrap();
    let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
    let c = Cutset::new(ids(&t, &["e"]));
    let ours = quantify_cutset(&t, &ctx, &c, &QuantifyOptions::new(48.0)).unwrap();
    assert!(ours.used_general);
    let reference = pc
        .reach_events_failed_probability(&ids(&t, &["e"]), 48.0, 1e-12)
        .unwrap();
    assert!(
        (ours.probability - reference).abs() / reference < 1e-6,
        "{} vs {reference}",
        ours.probability
    );
}

#[test]
fn static_joins_chain_quantification_matches_reference() {
    // Figure 1 right (3): train1 = OR(p1, g1) (both dynamic, static
    // joins) triggers both events of train2 = OR(p2, g2) — uniform
    // triggering. Quantify the all-dynamic cutset and compare.
    let mut b = FaultTreeBuilder::new();
    let p1 = b
        .dynamic_event("p1", erlang::repairable(1, 4e-3, 0.1).unwrap())
        .unwrap();
    let g1 = b
        .dynamic_event("g1", erlang::repairable(1, 6e-3, 0.08).unwrap())
        .unwrap();
    let train1 = b.or("train1", [p1, g1]).unwrap();
    let p2 = b
        .triggered_event("p2", erlang::spare(5e-3, 0.09).unwrap())
        .unwrap();
    let g2 = b
        .triggered_event("g2", erlang::spare(7e-3, 0.07).unwrap())
        .unwrap();
    let train2 = b.or("train2", [p2, g2]).unwrap();
    let top = b.and("top", [train1, train2]).unwrap();
    b.trigger(train1, p2).unwrap();
    b.trigger(train1, g2).unwrap();
    b.top(top);
    let t = b.build().unwrap();

    let ctx = sdft_core::FtcContext::new(&t).unwrap();
    let pc = ProductChain::build(&t, &ProductOptions::default()).unwrap();
    for cutset_names in [["p1", "p2"], ["p1", "g2"], ["g1", "p2"], ["g1", "g2"]] {
        let events = ids(&t, &cutset_names);
        let c = Cutset::new(events.clone());
        let ours = quantify_cutset(&t, &ctx, &c, &QuantifyOptions::new(48.0)).unwrap();
        // Static joins: the sibling dynamic event must be in the model.
        assert_eq!(ours.cutset_dynamic, 2);
        assert_eq!(ours.added_dynamic, 1, "{cutset_names:?}");
        let reference = pc
            .reach_events_failed_probability(&events, 48.0, 1e-12)
            .unwrap();
        assert!(
            (ours.probability - reference).abs() / reference < 1e-6,
            "{cutset_names:?}: {} vs {reference}",
            ours.probability
        );
    }
}

/// Random small SD fault trees: the analysis must stay within a tight
/// band around the exact product-chain probability.
#[test]
fn randomized_trees_stay_close_to_exact() {
    let mut rng = StdRng::seed_from_u64(20150622);
    let mut checked = 0;
    for attempt in 0..60 {
        let Some(tree) = random_sd_tree(&mut rng, attempt) else {
            continue;
        };
        let exact = match sdft_product::failure_probability(
            &tree,
            24.0,
            &ProductOptions {
                max_states: 200_000,
            },
        ) {
            Ok(p) => p,
            Err(_) => continue, // state budget: skip oversized draws
        };
        if exact < 1e-10 {
            continue;
        }
        let mut opts = AnalysisOptions::new(24.0);
        opts.mocus = MocusOptions::exhaustive();
        opts.threads = 1;
        let result = analyze(&tree, &opts).unwrap();
        let ratio = result.frequency / exact;
        assert!(
            (0.95..=1.35).contains(&ratio),
            "attempt {attempt}: frequency {} vs exact {exact} (ratio {ratio})",
            result.frequency
        );
        checked += 1;
    }
    assert!(checked >= 20, "only {checked} random trees checked");
}

/// Build a random SD fault tree with 3-6 statics, 1-2 plain dynamics and
/// 0-2 triggered events, shaped like a two-layer system-of-trains model.
fn random_sd_tree(rng: &mut StdRng, salt: usize) -> Option<FaultTree> {
    let mut b = FaultTreeBuilder::new();
    let num_static = rng.gen_range(3..=6);
    let num_plain = rng.gen_range(1..=2);
    let num_triggered = rng.gen_range(0..=2);

    let mut leaves = Vec::new();
    for i in 0..num_static {
        let p = rng.gen_range(0.005..0.08);
        leaves.push(b.static_event(&format!("s{salt}_{i}"), p).unwrap());
    }
    for i in 0..num_plain {
        let lambda = rng.gen_range(1e-3..8e-3);
        let mu = if rng.gen_bool(0.5) {
            rng.gen_range(0.01..0.1)
        } else {
            0.0
        };
        let chain = erlang::repairable(rng.gen_range(1..=2), lambda, mu).unwrap();
        leaves.push(b.dynamic_event(&format!("p{salt}_{i}"), chain).unwrap());
    }
    let mut triggered = Vec::new();
    for i in 0..num_triggered {
        let lambda = rng.gen_range(1e-3..2e-2);
        let mu = rng.gen_range(0.01..0.1);
        let chain = erlang::spare(lambda, mu).unwrap();
        triggered.push(b.triggered_event(&format!("d{salt}_{i}"), chain).unwrap());
    }

    // Two trains over the untriggered leaves.
    let half = leaves.len() / 2;
    let (left, right) = leaves.split_at(half.max(1));
    let t1 = b.or(&format!("t1_{salt}"), left.iter().copied()).unwrap();
    let t2 = if right.is_empty() {
        t1
    } else {
        b.or(&format!("t2_{salt}"), right.iter().copied()).unwrap()
    };
    // Triggered events form a backup train, triggered by train 1.
    let top = if triggered.is_empty() {
        b.and(&format!("top_{salt}"), [t1, t2]).unwrap()
    } else {
        let backup = b
            .or(&format!("bk_{salt}"), triggered.iter().copied())
            .unwrap();
        for &d in &triggered {
            b.trigger(t1, d).unwrap();
        }
        b.and(&format!("top_{salt}"), [t1, t2, backup]).unwrap()
    };
    b.top(top);
    b.build().ok()
}

/// Chained triggering (the step-3 recursion of §V-C): a primary train
/// triggers the first backup, whose own demand gate triggers the second
/// backup. Every dynamic cutset must match the exact reference.
#[test]
fn chained_triggering_matches_reference() {
    let mut b = FaultTreeBuilder::new();
    let p0 = b
        .dynamic_event("p0", erlang::repairable(1, 6e-3, 0.1).unwrap())
        .unwrap();
    let t0 = b.or("t0", [p0]).unwrap();
    let p1 = b
        .triggered_event("p1", erlang::spare(5e-3, 0.08).unwrap())
        .unwrap();
    let t1 = b.or("t1", [p1]).unwrap();
    let p2 = b
        .triggered_event("p2", erlang::spare(4e-3, 0.06).unwrap())
        .unwrap();
    let t2 = b.or("t2", [p2]).unwrap();
    let top = b.and("top", [t0, t1, t2]).unwrap();
    b.trigger(t0, p1).unwrap();
    b.trigger(t1, p2).unwrap();
    b.top(top);
    let tree = b.build().unwrap();

    let horizon = 96.0;
    let pc = ProductChain::build(&tree, &ProductOptions::default()).unwrap();
    let ctx = sdft_core::FtcContext::new(&tree).unwrap();
    let events = ids(&tree, &["p0", "p1", "p2"]);
    let cutset = Cutset::new(events.clone());
    let ours = quantify_cutset(&tree, &ctx, &cutset, &QuantifyOptions::new(horizon)).unwrap();
    let reference = pc
        .reach_events_failed_probability(&events, horizon, 1e-12)
        .unwrap();
    assert!(
        (ours.probability - reference).abs() / reference < 1e-6,
        "{} vs {reference}",
        ours.probability
    );
    // The whole pipeline agrees with the exact top probability (single
    // cutset, so no REA slack at all).
    let mut opts = AnalysisOptions::new(horizon);
    opts.mocus = MocusOptions::exhaustive();
    let result = analyze(&tree, &opts).unwrap();
    assert_eq!(result.stats.num_cutsets, 1);
    let exact = pc
        .reach_events_failed_probability(&events, horizon, 1e-12)
        .unwrap();
    assert!((result.frequency - exact).abs() / exact < 1e-6);
}

/// Uniform triggering chains (Figure 1 right (3)): two trains of two
/// dynamic components each, the whole second train triggered by the
/// first; the third stage triggered by the second train. The per-cutset
/// models stay small (no general-case fallback) and exact.
#[test]
fn uniform_triggering_chain_is_exact_without_general_fallback() {
    let mut b = FaultTreeBuilder::new();
    let p1 = b
        .dynamic_event("p1", erlang::repairable(1, 5e-3, 0.1).unwrap())
        .unwrap();
    let g1 = b
        .dynamic_event("g1", erlang::repairable(1, 6e-3, 0.12).unwrap())
        .unwrap();
    let train1 = b.or("train1", [p1, g1]).unwrap();
    let p2 = b
        .triggered_event("p2", erlang::spare(5e-3, 0.09).unwrap())
        .unwrap();
    let g2 = b
        .triggered_event("g2", erlang::spare(6e-3, 0.11).unwrap())
        .unwrap();
    let train2 = b.or("train2", [p2, g2]).unwrap();
    let p3 = b
        .triggered_event("p3", erlang::spare(4e-3, 0.07).unwrap())
        .unwrap();
    let train3 = b.or("train3", [p3]).unwrap();
    let top = b.and("top", [train1, train2, train3]).unwrap();
    b.trigger(train1, p2).unwrap();
    b.trigger(train1, g2).unwrap();
    b.trigger(train2, p3).unwrap();
    b.top(top);
    let tree = b.build().unwrap();

    // train2 has static joins with uniform triggering: modeling p3's
    // trigger pulls in p2/g2, whose shared gate is then just referenced.
    let train2_id = tree.node_by_name("train2").unwrap();
    assert_eq!(
        sdft_core::classify_gate(&tree, train2_id),
        sdft_core::TriggerClass::StaticJoinsUniform
    );

    let horizon = 72.0;
    let pc = ProductChain::build(&tree, &ProductOptions::default()).unwrap();
    let ctx = sdft_core::FtcContext::new(&tree).unwrap();
    for names in [
        ["p1", "p2", "p3"],
        ["g1", "g2", "p3"],
        ["p1", "g2", "p3"],
        ["g1", "p2", "p3"],
    ] {
        let events = ids(&tree, &names);
        let cutset = Cutset::new(events.clone());
        let ours = quantify_cutset(&tree, &ctx, &cutset, &QuantifyOptions::new(horizon)).unwrap();
        assert!(!ours.used_general, "{names:?} must avoid the general case");
        let reference = pc
            .reach_events_failed_probability(&events, horizon, 1e-12)
            .unwrap();
        assert!(
            (ours.probability - reference).abs() / reference < 1e-6,
            "{names:?}: {} vs {reference}",
            ours.probability
        );
    }
}
