use crate::error::CoreError;
use sdft_ft::{Cutset, CutsetList, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId};
use std::collections::HashMap;

/// The static fault tree `FT̄` induced by an SD fault tree (§V-B1), with
/// node maps between the two trees.
///
/// `FT̄` has the same minimal cutsets as the SD tree: every dynamic basic
/// event becomes a static event carrying its worst-case probability, and
/// every trigger edge `g ⇢ b` becomes an AND gate over `b` and `g`
/// (a triggered event can only fail once its triggering gate has failed).
#[derive(Debug, Clone)]
pub struct Translated {
    /// The induced static fault tree.
    pub tree: FaultTree,
    /// Map from original node ids to ids in [`Translated::tree`]
    /// (basic events and original gates; the inserted AND gates have no
    /// preimage).
    pub from_original: HashMap<NodeId, NodeId>,
    /// Map from ids in [`Translated::tree`] back to original ids
    /// (`None` for the inserted AND gates).
    pub to_original: Vec<Option<NodeId>>,
}

impl Translated {
    /// Map a cutset over `FT̄` ids back to original ids.
    ///
    /// # Panics
    ///
    /// Panics if the cutset contains an inserted AND gate, which cannot
    /// happen for cutsets produced from [`Translated::tree`].
    #[must_use]
    pub fn cutset_to_original(&self, cutset: &Cutset) -> Cutset {
        Cutset::new(cutset.events().iter().map(|&e| {
            self.to_original[e.index()].expect("cutset events map back to original events")
        }))
    }

    /// Map an owned cutset back to original ids in place, reusing its
    /// allocation. Basic events are translated first in original order,
    /// so the id mapping is strictly monotone and the events stay
    /// sorted — this is the same property the streaming engine's final
    /// canonical sort relies on.
    ///
    /// # Panics
    ///
    /// Panics if the cutset contains an inserted AND gate, which cannot
    /// happen for cutsets produced from [`Translated::tree`].
    #[must_use]
    pub fn cutset_into_original(&self, cutset: Cutset) -> Cutset {
        cutset.map_events_monotone(|e| {
            self.to_original[e.index()].expect("cutset events map back to original events")
        })
    }

    /// Map a whole cutset list back to original ids.
    #[must_use]
    pub fn cutsets_to_original(&self, list: &CutsetList) -> CutsetList {
        list.iter().map(|c| self.cutset_to_original(c)).collect()
    }
}

/// Translate an SD fault tree into the static tree `FT̄` with identical
/// minimal cutsets (§V-B1), assigning every basic event the probability
/// from `probs` (typically [`crate::worst_case_probabilities`]).
///
/// # Errors
///
/// Returns an error if tree construction fails (e.g. a probability in
/// `probs` is invalid).
pub fn translate(tree: &FaultTree, probs: &EventProbabilities) -> Result<Translated, CoreError> {
    let mut builder = FaultTreeBuilder::new();
    let mut from_original: HashMap<NodeId, NodeId> = HashMap::new();
    let mut to_original: Vec<Option<NodeId>> = Vec::new();
    // For triggered events: the AND(b, g) replacement node, once created.
    let mut replacement: HashMap<NodeId, NodeId> = HashMap::new();

    // 1. All basic events become static events.
    for event in tree.basic_events() {
        let id = builder.static_event(tree.name(event), probs.get(event))?;
        from_original.insert(event, id);
        to_original.push(Some(event));
        debug_assert_eq!(id.index() + 1, to_original.len());
    }

    // 2. Gates and trigger-replacement AND gates, in dependency order.
    //    A gate depends on its inputs; a triggered input additionally
    //    depends on its triggering gate (via the AND replacement). The
    //    trigger structure is acyclic, so the loop below always makes
    //    progress.
    let mut pending: Vec<NodeId> = tree.gates().collect();
    while !pending.is_empty() {
        let before = pending.len();
        let mut still_pending = Vec::new();
        'gates: for gate in pending {
            // Resolve the translated id of every input, creating trigger
            // replacements on demand.
            let mut inputs = Vec::new();
            for &input in tree.gate_inputs(gate) {
                let resolved = if tree.is_basic(input) && tree.trigger_source(input).is_some() {
                    if let Some(&r) = replacement.get(&input) {
                        Some(r)
                    } else {
                        let trigger_gate = tree.trigger_source(input).expect("checked");
                        match from_original.get(&trigger_gate) {
                            Some(&tg) => {
                                let name = unique_name(&builder, tree.name(input), "__trig");
                                let b = from_original[&input];
                                let and = builder.and(&name, [b, tg])?;
                                to_original.push(None);
                                replacement.insert(input, and);
                                Some(and)
                            }
                            None => None, // triggering gate not translated yet
                        }
                    }
                } else {
                    from_original.get(&input).copied()
                };
                match resolved {
                    Some(r) => inputs.push(r),
                    None => {
                        still_pending.push(gate);
                        continue 'gates;
                    }
                }
            }
            let id = builder.gate(tree.name(gate), tree.gate_kind(gate).expect("gate"), inputs)?;
            from_original.insert(gate, id);
            to_original.push(Some(gate));
        }
        assert!(
            still_pending.len() < before,
            "no progress translating gates: trigger structure must be acyclic"
        );
        pending = still_pending;
    }

    builder.top(from_original[&tree.top()]);
    let translated = builder.build()?;
    Ok(Translated {
        tree: translated,
        from_original,
        to_original,
    })
}

pub(crate) fn unique_name(builder: &FaultTreeBuilder, base: &str, suffix: &str) -> String {
    let name = format!("{base}{suffix}");
    if !builder.contains_name(&name) {
        return name;
    }
    let mut counter = 2;
    loop {
        let candidate = format!("{name}{counter}");
        if !builder.contains_name(&candidate) {
            return candidate;
        }
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worstcase::worst_case_probabilities;
    use sdft_ctmc::erlang;
    use sdft_ft::{FaultTreeBuilder, GateKind};
    use sdft_mocus::{minimal_cutsets, MocusOptions};

    /// Example 3 of the paper.
    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    #[test]
    fn translation_is_static_and_preserves_structure() {
        let t = example3();
        let probs = worst_case_probabilities(&t, 24.0, 1e-12).unwrap();
        let tr = translate(&t, &probs).unwrap();
        assert!(tr.tree.is_static());
        // One AND gate added for the single trigger edge.
        assert_eq!(tr.tree.num_gates(), t.num_gates() + 1);
        assert_eq!(tr.tree.num_basic_events(), t.num_basic_events());
        // d now sits under AND(d, pump1).
        let d = tr.tree.node_by_name("d").unwrap();
        let and = tr
            .tree
            .gates()
            .find(|&g| tr.tree.gate_inputs(g).contains(&d) && tr.to_original[g.index()].is_none())
            .expect("replacement AND gate exists");
        assert_eq!(tr.tree.gate_kind(and), Some(GateKind::And));
        let p1_new = tr.from_original[&t.node_by_name("pump1").unwrap()];
        assert!(tr.tree.gate_inputs(and).contains(&p1_new));
        // pump2 now references the AND gate, not d directly.
        let p2_new = tr.from_original[&t.node_by_name("pump2").unwrap()];
        assert!(tr.tree.gate_inputs(p2_new).contains(&and));
        assert!(!tr.tree.gate_inputs(p2_new).contains(&d));
    }

    #[test]
    fn translated_mcs_match_the_paper() {
        // The SD tree of Example 3 has MCS {e}, {a,c}, {b,c}, and — due to
        // the trigger — {a,d} and {b,d} become {a,d(+pump1)} = {a,d},
        // {b,d}: pump1 must fail for d anyway, and pump1 fails iff a or b
        // fails, which the cutsets already contain.
        let t = example3();
        let probs = worst_case_probabilities(&t, 24.0, 1e-12).unwrap();
        let tr = translate(&t, &probs).unwrap();
        let static_probs = EventProbabilities::from_static(&tr.tree).unwrap();
        let mcs = minimal_cutsets(&tr.tree, &static_probs, &MocusOptions::exhaustive()).unwrap();
        let original = tr.cutsets_to_original(&mcs);
        let mut names: Vec<Vec<String>> = original
            .iter()
            .map(|c| c.events().iter().map(|&e| t.name(e).to_owned()).collect())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                vec!["a".to_owned(), "c".to_owned()],
                vec!["a".to_owned(), "d".to_owned()],
                vec!["b".to_owned(), "c".to_owned()],
                vec!["b".to_owned(), "d".to_owned()],
                vec!["e".to_owned()],
            ]
        );
    }

    #[test]
    fn chained_triggers_translate() {
        // g1 triggers d2 (under g2), g2 triggers d3 (under top).
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d2 = b
            .triggered_event("d2", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let d3 = b
            .triggered_event("d3", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [d2]).unwrap();
        let g3 = b.or("g3", [d3]).unwrap();
        let top = b.and("top", [g1, g2, g3]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.trigger(g2, d3).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let probs = worst_case_probabilities(&t, 24.0, 1e-12).unwrap();
        let tr = translate(&t, &probs).unwrap();
        assert!(tr.tree.is_static());
        assert_eq!(tr.tree.num_gates(), t.num_gates() + 2);
        // The only cutset is {x, d2, d3}: x fails g1, triggering d2 whose
        // failure fails g2, triggering d3.
        let static_probs = EventProbabilities::from_static(&tr.tree).unwrap();
        let mcs = minimal_cutsets(&tr.tree, &static_probs, &MocusOptions::exhaustive()).unwrap();
        assert_eq!(mcs.len(), 1);
        let orig = tr.cutset_to_original(mcs.get(0).unwrap());
        let names: Vec<&str> = orig.events().iter().map(|&e| t.name(e)).collect();
        assert_eq!(names, vec!["x", "d2", "d3"]);
    }

    #[test]
    fn untriggered_dynamic_events_translate_to_plain_statics() {
        let mut b = FaultTreeBuilder::new();
        let p = b
            .dynamic_event("p", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let g = b.or("g", [p]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let probs = worst_case_probabilities(&t, 24.0, 1e-12).unwrap();
        let tr = translate(&t, &probs).unwrap();
        assert_eq!(tr.tree.num_gates(), 1);
        let p_new = tr.from_original[&p];
        assert!((tr.tree.static_probability(p_new).unwrap() - probs.get(p)).abs() < 1e-18);
    }
}
