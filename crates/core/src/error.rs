use crate::classify::TriggerClass;
use std::fmt;

/// Errors produced by the SD fault tree analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A triggering gate's subtree falls into a §V-A class more
    /// expensive than the caller allows (see
    /// [`crate::validate_trigger_structure`]).
    TriggerStructure {
        /// Name of the offending triggering gate.
        gate: String,
        /// The class its subtree falls into.
        class: TriggerClass,
        /// The most expensive class the caller accepted.
        allowed: TriggerClass,
    },
    /// An error from the fault tree layer.
    Ft(sdft_ft::FtError),
    /// An error from the Markov chain layer.
    Ctmc(sdft_ctmc::CtmcError),
    /// An error from the cutset generator.
    Mocus(sdft_mocus::MocusError),
    /// An error from the BDD backend (node budget, invalid order).
    Bdd(sdft_bdd::BddError),
    /// An error from the product chain builder (per-cutset quantification).
    Product(sdft_product::ProductError),
    /// The analysis horizon is negative or not finite.
    InvalidHorizon {
        /// The offending horizon.
        horizon: f64,
    },
    /// A node expected to be a basic event / gate was not.
    UnexpectedNode {
        /// Name of the offending node.
        name: String,
        /// What was expected of the node.
        expected: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TriggerStructure {
                gate,
                class,
                allowed,
            } => write!(
                f,
                "triggering gate {gate:?} has {class} structure, \
                 worse than the allowed {allowed}"
            ),
            CoreError::Ft(e) => write!(f, "fault tree error: {e}"),
            CoreError::Ctmc(e) => write!(f, "markov chain error: {e}"),
            CoreError::Mocus(e) => write!(f, "cutset generation error: {e}"),
            CoreError::Bdd(e) => write!(f, "BDD backend error: {e}"),
            CoreError::Product(e) => write!(f, "cutset quantification error: {e}"),
            CoreError::InvalidHorizon { horizon } => {
                write!(f, "invalid analysis horizon {horizon}")
            }
            CoreError::UnexpectedNode { name, expected } => {
                write!(f, "node {name:?} is not {expected}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ft(e) => Some(e),
            CoreError::Ctmc(e) => Some(e),
            CoreError::Mocus(e) => Some(e),
            CoreError::Bdd(e) => Some(e),
            CoreError::Product(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sdft_ft::FtError> for CoreError {
    fn from(e: sdft_ft::FtError) -> Self {
        CoreError::Ft(e)
    }
}

impl From<sdft_ctmc::CtmcError> for CoreError {
    fn from(e: sdft_ctmc::CtmcError) -> Self {
        CoreError::Ctmc(e)
    }
}

impl From<sdft_mocus::MocusError> for CoreError {
    fn from(e: sdft_mocus::MocusError) -> Self {
        CoreError::Mocus(e)
    }
}

impl From<sdft_bdd::BddError> for CoreError {
    fn from(e: sdft_bdd::BddError) -> Self {
        CoreError::Bdd(e)
    }
}

impl From<sdft_product::ProductError> for CoreError {
    fn from(e: sdft_product::ProductError) -> Self {
        CoreError::Product(e)
    }
}
