use crate::canonical::CanonicalModelKey;
use crate::classify::{classify_gate, TriggerClass};
use crate::error::CoreError;
use crate::translate::unique_name;
use sdft_ft::{Behavior, Cutset, EventProbabilities, FaultTree, FaultTreeBuilder, NodeId};
use sdft_mocus::{minimal_cutsets_rooted, Assumptions, MocusOptions};
use std::collections::{HashMap, HashSet};

/// Precomputed, cutset-independent data for [`build_ftc`]: the
/// classification of every triggering gate and the dynamic/static events
/// of its subtree. Build it once per tree and reuse it for every cutset.
#[derive(Debug, Clone)]
pub struct FtcContext {
    classes: HashMap<NodeId, TriggerClass>,
    /// Triggering gate → (dynamic events, static events) of its subtree.
    subtree_events: HashMap<NodeId, (Vec<NodeId>, Vec<NodeId>)>,
    /// Static events appearing in the subtrees of two or more triggering
    /// gates. These may couple several trigger logics, so they must stay
    /// distinct frozen bits in the model; statics private to one gate can
    /// be merged into a single equivalent bit (see [`build_ftc_with`]).
    shared_statics: HashSet<NodeId>,
    /// Unit probabilities (statics keep their own values) — MOCUS runs on
    /// trigger subtrees without a cutoff, so values are irrelevant.
    probs: EventProbabilities,
}

impl FtcContext {
    /// Precompute the context for `tree`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree has an invalid probability (cannot
    /// happen for built trees).
    pub fn new(tree: &FaultTree) -> Result<Self, CoreError> {
        let mut classes = HashMap::new();
        let mut subtree_events = HashMap::new();
        for gate in tree.gates() {
            if tree.triggers_of(gate).is_empty() {
                continue;
            }
            classes.insert(gate, classify_gate(tree, gate));
            let events = tree.subtree_basic_events(gate);
            let (dynamic, stat): (Vec<NodeId>, Vec<NodeId>) = events
                .into_iter()
                .partition(|&e| tree.behavior(e).is_some_and(Behavior::is_dynamic));
            subtree_events.insert(gate, (dynamic, stat));
        }
        let mut static_uses: HashMap<NodeId, usize> = HashMap::new();
        for (_, stat) in subtree_events.values() {
            for &e in stat {
                *static_uses.entry(e).or_default() += 1;
            }
        }
        let shared_statics = static_uses
            .into_iter()
            .filter(|&(_, uses)| uses > 1)
            .map(|(e, _)| e)
            .collect();
        let probs = EventProbabilities::with_dynamic(tree, |_| Ok(1.0))?;
        Ok(FtcContext {
            classes,
            subtree_events,
            shared_statics,
            probs,
        })
    }

    /// The classification of a triggering gate, if `gate` is one.
    #[must_use]
    pub fn class_of(&self, gate: NodeId) -> Option<TriggerClass> {
        self.classes.get(&gate).copied()
    }
}

/// The per-cutset SD fault tree `FT_C` (§V-C) together with bookkeeping
/// for quantification and reporting.
#[derive(Debug, Clone)]
pub struct CutsetModel {
    /// The model tree whose top gate is the AND of the cutset's dynamic
    /// events; `None` when the cutset is purely static.
    pub tree: Option<FaultTree>,
    /// Original ids of the cutset's static events (conditioned out of the
    /// model; their probability product multiplies the chain result).
    pub static_events: Vec<NodeId>,
    /// Original ids of the cutset's dynamic events.
    pub dynamic_events: Vec<NodeId>,
    /// Dynamic events added beyond the cutset (triggering logic).
    pub added_dynamic: usize,
    /// Static events added by the triggering logic (random frozen bits in
    /// the product chain).
    pub added_static: usize,
    /// Whether any triggering gate was modeled with the general case.
    pub used_general: bool,
    /// The classification used per modeled triggering gate (original id).
    pub classes_used: Vec<(NodeId, TriggerClass)>,
    /// The canonical structural identity of this model — name-independent
    /// and shared by every cutset whose model is isomorphic to this one;
    /// `None` for purely static cutsets (nothing dynamic to cache). The
    /// quantification layer extends it with the numerical parameters to
    /// form the full cache key
    /// ([`CanonicalModelKey::with_quantification`]).
    pub canonical_key: Option<CanonicalModelKey>,
}

impl CutsetModel {
    /// Total number of dynamic events in the model (cutset + added).
    #[must_use]
    pub fn total_dynamic(&self) -> usize {
        self.dynamic_events.len() + self.added_dynamic
    }
}

/// How much triggering logic the per-cutset models carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriggerTreatment {
    /// Follow the paper's classification (§V-A): static branching keeps
    /// only the cutset's events, static joins adds the subtree dynamics,
    /// the general case adds everything relevant.
    #[default]
    Classified,
    /// Treat every triggering gate as if it had static branching: only
    /// dynamic events of the cutset itself are kept. This is the
    /// *under-approximation* sketched in the paper's conclusion
    /// ("disregarding interplays of several dynamic basic events") — it
    /// can only miss failure runs, never invent them, and keeps every
    /// per-cutset chain as small as possible.
    CutsetOnly,
}

/// Build the quantification model `FT_C` for `cutset` (§V-C).
///
/// The construction follows the paper's three steps:
///
/// 1. the top gate is an AND over the cutset's dynamic events;
/// 2. for each triggered event the logic of its triggering gate is
///    rebuilt from the *relevant* events `Rel_a` — chosen by the gate's
///    classification — as an OR over ANDs of the minimal failing subsets
///    `A_i` (computed by rooted MOCUS with the cutset's statics assumed
///    failed and irrelevant events assumed functional);
/// 3. newly introduced triggered events whose gates are not yet modeled
///    are processed with the general case.
///
/// # Errors
///
/// Returns an error if the cutset references gates or the construction
/// exceeds MOCUS budgets (possible for hostile general-case subtrees).
pub fn build_ftc(
    tree: &FaultTree,
    ctx: &FtcContext,
    cutset: &Cutset,
) -> Result<CutsetModel, CoreError> {
    build_ftc_with(tree, ctx, cutset, TriggerTreatment::Classified)
}

/// Like [`build_ftc`], with control over the triggering treatment
/// ([`TriggerTreatment::CutsetOnly`] gives the fast under-approximation).
///
/// # Errors
///
/// Same as [`build_ftc`].
pub fn build_ftc_with(
    tree: &FaultTree,
    ctx: &FtcContext,
    cutset: &Cutset,
    treatment: TriggerTreatment,
) -> Result<CutsetModel, CoreError> {
    let mut static_events = Vec::new();
    let mut dynamic_events = Vec::new();
    for &event in cutset.events() {
        match tree.behavior(event) {
            Some(Behavior::Static { .. }) => static_events.push(event),
            Some(_) => dynamic_events.push(event),
            None => {
                return Err(CoreError::UnexpectedNode {
                    name: tree.name(event).to_owned(),
                    expected: "a basic event",
                })
            }
        }
    }
    if dynamic_events.is_empty() {
        return Ok(CutsetModel {
            tree: None,
            static_events,
            dynamic_events,
            added_dynamic: 0,
            added_static: 0,
            used_general: false,
            classes_used: Vec::new(),
            canonical_key: None,
        });
    }

    let statics_in_c: HashSet<NodeId> = static_events.iter().copied().collect();
    let mut builder = FaultTreeBuilder::new();
    let mut event_map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut gate_map: HashMap<NodeId, NodeId> = HashMap::new();
    // FIFO: cutset events are modeled before the events their triggering
    // logic introduces. This matters for chained uniform triggering
    // (footnote 3 of the paper): by the time a step-3 event comes up,
    // the gate it shares with a cutset event is already in the model,
    // so no general-case fallback is needed.
    let mut worklist: std::collections::VecDeque<(NodeId, bool)> =
        std::collections::VecDeque::new();
    let mut added_dynamic = 0usize;
    let mut added_static = 0usize;
    let mut used_general = false;
    let mut classes_used = Vec::new();

    let add_event = |event: NodeId,
                     builder: &mut FaultTreeBuilder,
                     worklist: &mut std::collections::VecDeque<(NodeId, bool)>,
                     event_map: &mut HashMap<NodeId, NodeId>,
                     in_cutset: bool,
                     added_dynamic: &mut usize,
                     added_static: &mut usize|
     -> Result<NodeId, CoreError> {
        if let Some(&id) = event_map.get(&event) {
            return Ok(id);
        }
        let name = tree.name(event);
        let id = match tree.behavior(event).expect("basic event") {
            Behavior::Static { probability } => {
                if !in_cutset {
                    *added_static += 1;
                }
                builder.static_event(name, *probability)?
            }
            Behavior::Dynamic(chain) => {
                if !in_cutset {
                    *added_dynamic += 1;
                }
                builder.dynamic_event(name, chain.clone())?
            }
            Behavior::Triggered(chain) => {
                if !in_cutset {
                    *added_dynamic += 1;
                }
                let id = builder.triggered_event(name, chain.clone())?;
                worklist.push_back((event, in_cutset));
                id
            }
        };
        event_map.insert(event, id);
        Ok(id)
    };

    // Step 1: cutset dynamic events (their triggers enqueue themselves).
    for &event in &dynamic_events {
        add_event(
            event,
            &mut builder,
            &mut worklist,
            &mut event_map,
            true,
            &mut added_dynamic,
            &mut added_static,
        )?;
    }

    // Steps 2 & 3: model the triggering logic of every triggered event.
    while let Some((event, first_pass)) = worklist.pop_front() {
        let gate = tree
            .trigger_source(event)
            .expect("triggered event has a source");
        if let Some(&new_gate) = gate_map.get(&gate) {
            builder.trigger(new_gate, event_map[&event])?;
            continue;
        }
        let class = match treatment {
            TriggerTreatment::CutsetOnly => TriggerClass::StaticBranching,
            TriggerTreatment::Classified if first_pass => ctx
                .class_of(gate)
                .unwrap_or_else(|| classify_gate(tree, gate)),
            TriggerTreatment::Classified => TriggerClass::General,
        };
        classes_used.push((gate, class));
        let fallback: (Vec<NodeId>, Vec<NodeId>);
        let (dyn_events, sta_events) = match ctx.subtree_events.get(&gate) {
            Some(pair) => pair,
            None => {
                let events = tree.subtree_basic_events(gate);
                fallback = events
                    .into_iter()
                    .partition(|&e| tree.behavior(e).is_some_and(Behavior::is_dynamic));
                &fallback
            }
        };

        // Rel_a per §V-C step 2.
        let relevant: HashSet<NodeId> = match class {
            TriggerClass::StaticBranching => dyn_events
                .iter()
                .copied()
                .filter(|e| cutset.contains(*e))
                .collect(),
            TriggerClass::StaticJoins | TriggerClass::StaticJoinsUniform => {
                dyn_events.iter().copied().collect()
            }
            TriggerClass::General => {
                used_general = true;
                dyn_events
                    .iter()
                    .chain(sta_events.iter())
                    .copied()
                    .filter(|e| !statics_in_c.contains(e))
                    .collect()
            }
        };

        // Assumptions: statics of C are failed; dynamic events outside
        // Rel_a are functional. Static events outside C stay *free* so
        // the rooted MOCUS pass emits them into the minimal failing
        // subsets as frozen bits — dropping them instead (as an earlier
        // revision did) loses trigger paths that fire at time zero
        // through a static branch. Those paths belong to non-minimal
        // cutsets that subsumption removed, so the per-cutset model is
        // the only place left that can account for them.
        let mut assumptions = Assumptions::new(tree);
        for &e in sta_events.iter() {
            if statics_in_c.contains(&e) {
                assumptions.assume_failed(e).map_err(CoreError::Mocus)?;
            }
        }
        for &e in dyn_events.iter() {
            if !relevant.contains(&e) {
                assumptions.assume_ok(e).map_err(CoreError::Mocus)?;
            }
        }
        let a_sets = minimal_cutsets_rooted(
            tree,
            gate,
            &ctx.probs,
            &MocusOptions::exhaustive(),
            &assumptions,
        )?;

        // Build the triggering fault tree: OR over one AND (or leaf) per
        // minimal failing subset. Degenerate cases: no subset → the gate
        // can never fail in this cutset's world (trigger never fires); an
        // empty subset → the cutset's statics alone fail the gate
        // (trigger fires at time zero).
        let or_name = unique_name(&builder, tree.name(gate), "__trig");
        let mut or_inputs: Vec<NodeId> = Vec::new();
        if a_sets.is_empty() {
            let never =
                builder.static_event(&unique_name(&builder, tree.name(gate), "__never"), 0.0)?;
            or_inputs.push(never);
        }

        // Every free static in the model doubles the per-cutset product
        // chain, so collapse what can be collapsed exactly: an all-static
        // failing subset whose members are private to this triggering
        // gate (not shared with any other trigger subtree, not repeated
        // in another subset here) interacts with the rest of the model
        // only through this one OR, so all such subsets merge into a
        // single frozen bit carrying their combined probability.
        let mut occurrences: HashMap<NodeId, usize> = HashMap::new();
        for a_set in &a_sets {
            for &m in a_set.events() {
                *occurrences.entry(m).or_default() += 1;
            }
        }
        let mergeable: Vec<bool> = a_sets
            .iter()
            .map(|a_set| {
                !a_set.is_empty()
                    && a_set.events().iter().all(|&m| {
                        tree.behavior(m)
                            .is_some_and(|b| matches!(b, Behavior::Static { .. }))
                            && !ctx.shared_statics.contains(&m)
                            && occurrences[&m] == 1
                            && !event_map.contains_key(&m)
                    })
            })
            .collect();
        let merged_probs: Vec<f64> = a_sets
            .iter()
            .zip(&mergeable)
            .filter(|&(_, &m)| m)
            .map(|(a, _)| {
                a.events()
                    .iter()
                    .map(|&m| tree.static_probability(m).expect("static event"))
                    .product()
            })
            .collect();
        if !merged_probs.is_empty() {
            // One subset keeps its exact product; several combine as the
            // complement-product of an OR over independent branches.
            let q = if merged_probs.len() == 1 {
                merged_probs[0]
            } else {
                1.0 - merged_probs.iter().map(|p| 1.0 - p).product::<f64>()
            };
            let id =
                builder.static_event(&unique_name(&builder, tree.name(gate), "__statics"), q)?;
            or_inputs.push(id);
            added_static += 1;
        }

        for (i, a_set) in a_sets.iter().enumerate() {
            if mergeable[i] {
                continue;
            }
            if a_set.is_empty() {
                let always = builder
                    .static_event(&unique_name(&builder, tree.name(gate), "__fired"), 1.0)?;
                or_inputs.push(always);
                continue;
            }
            let mut members = Vec::new();
            for &member in a_set.events() {
                let id = add_event(
                    member,
                    &mut builder,
                    &mut worklist,
                    &mut event_map,
                    cutset.contains(member),
                    &mut added_dynamic,
                    &mut added_static,
                )?;
                members.push(id);
            }
            if members.len() == 1 {
                or_inputs.push(members[0]);
            } else {
                let and_name = unique_name(&builder, tree.name(gate), &format!("__and{i}"));
                or_inputs.push(builder.and(&and_name, members)?);
            }
        }
        let new_gate = builder.or(&or_name, or_inputs)?;
        gate_map.insert(gate, new_gate);
        builder.trigger(new_gate, event_map[&event])?;
    }

    // The top gate: AND over the cutset's dynamic events.
    let top_inputs: Vec<NodeId> = dynamic_events.iter().map(|e| event_map[e]).collect();
    let top = builder.and(&unique_name(&builder, "ftc", "__top"), top_inputs)?;
    builder.top(top);
    let model_tree = builder.build()?;
    let canonical_key = CanonicalModelKey::stem(tree, &dynamic_events, &model_tree, treatment);

    Ok(CutsetModel {
        tree: Some(model_tree),
        static_events,
        dynamic_events,
        added_dynamic,
        added_static,
        used_general,
        classes_used,
        canonical_key: Some(canonical_key),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;

    fn spare() -> sdft_ctmc::TriggeredCtmc {
        erlang::spare(1e-3, 0.05).unwrap()
    }

    fn plain() -> sdft_ctmc::Ctmc {
        erlang::repairable(1, 1e-3, 0.05).unwrap()
    }

    /// Example 3 of the paper.
    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b.dynamic_event("b", plain()).unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b.triggered_event("d", spare()).unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn cutset_of(tree: &FaultTree, names: &[&str]) -> Cutset {
        Cutset::new(names.iter().map(|n| tree.node_by_name(n).unwrap()))
    }

    #[test]
    fn purely_static_cutset_needs_no_chain() {
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["e"])).unwrap();
        assert!(model.tree.is_none());
        assert_eq!(model.static_events.len(), 1);
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["a", "c"])).unwrap();
        assert!(model.tree.is_none());
        assert_eq!(model.static_events.len(), 2);
    }

    #[test]
    fn untriggered_dynamic_cutset_is_plain_and() {
        // {b, c}: b is an untriggered dynamic event, c static.
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["b", "c"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        assert_eq!(ftc.num_basic_events(), 1); // just b
        assert_eq!(ftc.num_gates(), 1); // the AND top
        assert_eq!(model.static_events.len(), 1);
        assert_eq!(model.added_dynamic, 0);
        assert!(!model.used_general);
    }

    #[test]
    fn triggered_cutset_models_the_trigger_logic() {
        // {a, d}: d is triggered by pump1 = OR(a, b). pump1 has static
        // branching (one dynamic child), so Rel = Dyn ∩ C = ∅ and the
        // static a ∈ C alone fails the gate: trigger fires at time 0.
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["a", "d"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        // d plus the always-fired static leaf.
        assert_eq!(model.added_dynamic, 0);
        assert!(!model.used_general);
        assert_eq!(model.classes_used.len(), 1);
        assert_eq!(model.classes_used[0].1, TriggerClass::StaticBranching);
        // The model contains a p=1 leaf (trigger fired by a ∈ C).
        let fired = ftc
            .basic_events()
            .find(|&e| ftc.static_probability(e) == Some(1.0));
        assert!(fired.is_some(), "expected an always-fired trigger leaf");
        let d = ftc.node_by_name("d").unwrap();
        assert!(ftc.trigger_source(d).is_some());
    }

    #[test]
    fn triggered_cutset_keeps_relevant_dynamic_events() {
        // {b, d}: d triggered by pump1 = OR(a, b); b ∈ C is the relevant
        // dynamic event. The static a ∉ C stays in the trigger logic as
        // a frozen bit — a failing at time zero arms d even if b never
        // fails — and, being private to pump1, it is merged into the
        // single `__statics` leaf. Trigger logic = OR(statics, b).
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["b", "d"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        assert_eq!(model.static_events.len(), 0);
        assert_eq!(model.added_dynamic, 0);
        assert_eq!(model.added_static, 1);
        // b, d + the merged frozen static bit.
        assert_eq!(ftc.num_basic_events(), 3);
        let d = ftc.node_by_name("d").unwrap();
        let trig = ftc.trigger_source(d).expect("d is triggered");
        let b = ftc.node_by_name("b").unwrap();
        let inputs = ftc.gate_inputs(trig);
        assert_eq!(inputs.len(), 2);
        assert!(inputs.contains(&b));
        let frozen = inputs.iter().copied().find(|&i| i != b).unwrap();
        // The frozen bit carries a's probability.
        assert_eq!(ftc.static_probability(frozen), Some(3e-3));
    }

    #[test]
    fn static_joins_pull_in_all_subtree_dynamics() {
        // Trigger gate = OR(e, f) with both dynamic (static joins); the
        // cutset contains only e — f must still be added (Example 11).
        let mut b = FaultTreeBuilder::new();
        let e = b.dynamic_event("e", plain()).unwrap();
        let f = b.dynamic_event("f", plain()).unwrap();
        let g = b.or("g", [e, f]).unwrap();
        let j = b.triggered_event("j", spare()).unwrap();
        let top = b.and("top", [g, j]).unwrap();
        b.trigger(g, j).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["e", "j"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        assert_eq!(model.added_dynamic, 1, "f must be added");
        assert!(ftc.node_by_name("f").is_some());
        assert!(!model.used_general);
        assert_eq!(model.classes_used[0].1, TriggerClass::StaticJoins);
    }

    #[test]
    fn general_case_pulls_in_guarding_statics() {
        // Trigger gate = OR(AND(b, dstat), b2) with b, b2 dynamic and
        // dstat static: the OR has two dynamic children (no static
        // branching) and the AND has a dynamic child (no static joins) —
        // the general case. Quantifying {e} must add b, b2 *and* the
        // guarding static dstat as a random bit (Example 11).
        let mut b = FaultTreeBuilder::new();
        let bb = b.dynamic_event("b", plain()).unwrap();
        let dstat = b.static_event("dstat", 0.2).unwrap();
        let b2 = b.dynamic_event("b2", plain()).unwrap();
        let inner = b.and("inner", [bb, dstat]).unwrap();
        let g = b.or("g", [inner, b2]).unwrap();
        let e = b.triggered_event("e", spare()).unwrap();
        let top = b.and("top", [g, e]).unwrap();
        b.trigger(g, e).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["e"])).unwrap();
        assert!(model.used_general);
        let ftc = model.tree.expect("dynamic model");
        assert!(ftc.node_by_name("b").is_some(), "dynamic b added");
        assert!(ftc.node_by_name("b2").is_some(), "dynamic b2 added");
        assert!(ftc.node_by_name("dstat").is_some(), "guarding static added");
        assert_eq!(model.added_dynamic, 2);
        assert_eq!(model.added_static, 1);
    }

    #[test]
    fn general_case_is_skipped_when_cutset_statics_fire_the_trigger() {
        // Same shape, but with a static input a in the cutset: a alone
        // fails the trigger gate forever (statics never repair), so the
        // trigger logic collapses to an always-fired leaf and no other
        // events are added.
        let mut b = FaultTreeBuilder::new();
        let bb = b.dynamic_event("b", plain()).unwrap();
        let dstat = b.static_event("dstat", 0.2).unwrap();
        let b2 = b.dynamic_event("b2", plain()).unwrap();
        let a = b.static_event("a", 0.1).unwrap();
        let inner = b.and("inner", [bb, dstat]).unwrap();
        let g = b.or("g", [inner, b2, a]).unwrap();
        let e = b.triggered_event("e", spare()).unwrap();
        let top = b.and("top", [g, e]).unwrap();
        b.trigger(g, e).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["a", "e"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        assert_eq!(model.added_dynamic, 0);
        assert_eq!(model.added_static, 0);
        let fired = ftc
            .basic_events()
            .find(|&ev| ftc.static_probability(ev) == Some(1.0));
        assert!(fired.is_some(), "trigger fires at time zero via a ∈ C");
    }

    #[test]
    fn chained_triggers_recurse() {
        // g1 = OR(x) triggers d2; g2 = OR(d2) triggers d3. Cutset
        // {x, d2, d3}: modeling d3's trigger pulls in d2, whose own
        // trigger logic is then modeled too.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d2 = b.triggered_event("d2", spare()).unwrap();
        let d3 = b.triggered_event("d3", spare()).unwrap();
        let g1 = b.or("g1", [x]).unwrap();
        let g2 = b.or("g2", [d2]).unwrap();
        let g3 = b.or("g3", [d3]).unwrap();
        let top = b.and("top", [g1, g2, g3]).unwrap();
        b.trigger(g1, d2).unwrap();
        b.trigger(g2, d3).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["x", "d2", "d3"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        let d2_new = ftc.node_by_name("d2").unwrap();
        let d3_new = ftc.node_by_name("d3").unwrap();
        assert!(ftc.trigger_source(d2_new).is_some());
        assert!(ftc.trigger_source(d3_new).is_some());
        assert_eq!(model.classes_used.len(), 2);
    }

    #[test]
    fn shared_trigger_gate_is_modeled_once() {
        // One gate triggers two events; both in the cutset.
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let d1 = b.triggered_event("d1", spare()).unwrap();
        let d2 = b.triggered_event("d2", spare()).unwrap();
        let g = b.or("g", [x]).unwrap();
        let top = b.and("top", [g, d1, d2]).unwrap();
        b.trigger(g, d1).unwrap();
        b.trigger(g, d2).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let model = build_ftc(&t, &ctx, &cutset_of(&t, &["x", "d1", "d2"])).unwrap();
        let ftc = model.tree.expect("dynamic model");
        assert_eq!(model.classes_used.len(), 1, "shared gate modeled once");
        let t1 = ftc.trigger_source(ftc.node_by_name("d1").unwrap());
        let t2 = ftc.trigger_source(ftc.node_by_name("d2").unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn rejects_cutsets_with_gates() {
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let bad = Cutset::new([t.node_by_name("pumps").unwrap()]);
        assert!(matches!(
            build_ftc(&t, &ctx, &bad),
            Err(CoreError::UnexpectedNode { .. })
        ));
    }
}
