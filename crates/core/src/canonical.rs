//! Canonical cutset-model keys and the cross-cutset quantification cache.
//!
//! On realistic PSA models thousands of minimal cutsets share *identical*
//! dynamic sub-models — the same triggered pump or diesel train recurs
//! across cutsets under different names. Quantifying such a cutset means
//! building its `FT_C`, the product chain, and one uniformization pass
//! (§V-C); all of that depends only on the *structure* of the model, not
//! on node names or ids. This module gives every dynamic cutset model a
//! [`CanonicalModelKey`] — an exact, name-independent encoding — and a
//! concurrent [`QuantCache`] that solves each equivalence class exactly
//! once and re-labels the result for every other member.
//!
//! # Soundness
//!
//! The key embeds the *complete* structural signature of the model tree
//! (see [`sdft_ft::TreeSignature`]): behaviours with bit-exact
//! parameters, gate kinds and input wiring in creation order, trigger
//! edges, and the top gate — plus every quantification parameter the
//! transient analysis reads (horizon set, truncation `ε`, state budget,
//! trigger treatment). Product-chain construction and uniformization are
//! deterministic functions of exactly those inputs, so two models with
//! equal keys produce bitwise-identical dynamic factors. The key is an
//! encoding, not a hash digest: collisions are impossible, equal keys
//! *mean* equal models.

use crate::error::CoreError;
use crate::ftc::TriggerTreatment;
use sdft_ft::{Cutset, FaultTree, NodeId};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The canonical identity of a per-cutset quantification problem:
/// sorted dynamic-event signatures × trigger-structure shape ×
/// treatment, optionally extended with the numerical parameters
/// (horizon set × `ε` × state budget) via
/// [`CanonicalModelKey::with_quantification`].
///
/// Produced by [`crate::build_ftc_with`] for every dynamic cutset model;
/// equal keys guarantee bitwise-identical quantification results (see
/// the module docs for the argument).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalModelKey(Vec<u8>);

impl CanonicalModelKey {
    /// The structural stem of the key: the sorted signatures of the
    /// cutset's dynamic events (with their trigger cones), the complete
    /// structural signature of the model tree, and the treatment that
    /// shaped it.
    #[must_use]
    pub(crate) fn stem(
        tree: &FaultTree,
        dynamic_events: &[NodeId],
        model_tree: &FaultTree,
        treatment: TriggerTreatment,
    ) -> Self {
        let mut bytes = vec![b'K', 2]; // format marker + version
        bytes.push(match treatment {
            TriggerTreatment::Classified => 0,
            TriggerTreatment::CutsetOnly => 1,
        });
        let signatures = tree
            .cutset_event_signatures(&Cutset::new(dynamic_events.iter().copied()))
            .expect("cutset model events are basic events");
        push_usize(&mut bytes, signatures.len());
        for signature in &signatures {
            push_blob(&mut bytes, signature.as_bytes());
        }
        push_blob(&mut bytes, model_tree.structural_signature().as_bytes());
        CanonicalModelKey(bytes)
    }

    /// Extend the stem with every numerical parameter the transient
    /// analysis reads — including the kernel's steady-state-detection
    /// knob, which changes results within its documented `ε` —
    /// completing the cache key.
    #[must_use]
    pub fn with_quantification(
        &self,
        horizons: &[f64],
        epsilon: f64,
        max_states: usize,
        steady_state_detection: bool,
    ) -> Self {
        let mut bytes = self.0.clone();
        push_usize(&mut bytes, horizons.len());
        for &h in horizons {
            bytes.extend_from_slice(&h.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&epsilon.to_bits().to_le_bytes());
        push_usize(&mut bytes, max_states);
        bytes.push(u8::from(steady_state_detection));
        CanonicalModelKey(bytes)
    }

    /// The canonical byte encoding backing this key.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

fn push_usize(bytes: &mut Vec<u8>, value: usize) {
    bytes.extend_from_slice(&(value as u64).to_le_bytes());
}

fn push_blob(bytes: &mut Vec<u8>, blob: &[u8]) {
    push_usize(bytes, blob.len());
    bytes.extend_from_slice(blob);
}

/// Deterministic counters of the uniformization kernel, aggregated over
/// one or more solves. Only integer counters live here (never wall-clock
/// durations) so that sequential and parallel runs over the same work
/// list report identical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Uniformization passes performed (one per solved equivalence
    /// class).
    pub solves: usize,
    /// DTMC steps actually taken across those passes.
    pub steps_taken: u64,
    /// DTMC steps avoided by steady-state detection (full Poisson budget
    /// minus steps taken).
    pub steps_saved: u64,
    /// Solves in which steady-state detection fired.
    pub steady_state_solves: usize,
    /// CSR entries streamed through the SpMV kernel (nonzeros × steps,
    /// summed over solves) — the numerator of kernel throughput.
    pub spmv_nonzeros: u64,
    /// Solves that reused the workspace's memoized CSR (structurally
    /// identical chain back-to-back) instead of rebuilding it.
    pub csr_reuses: usize,
}

impl KernelStats {
    /// Accumulate another batch of kernel counters into this one.
    pub fn absorb(&mut self, other: KernelStats) {
        self.solves += other.solves;
        self.steps_taken += other.steps_taken;
        self.steps_saved += other.steps_saved;
        self.steady_state_solves += other.steady_state_solves;
        self.spmv_nonzeros += other.spmv_nonzeros;
        self.csr_reuses += other.csr_reuses;
    }
}

/// The solution of one model equivalence class: the dynamic factor per
/// horizon plus bookkeeping for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSolution {
    /// `Pr_FT_C[Reach≤t(F)]` per horizon, in horizon order.
    pub factors: Vec<f64>,
    /// States of the product chain that was solved.
    pub chain_states: usize,
    /// Wall-clock cost attributed to each horizon (chain construction
    /// plus the shared uniformization pass, split by per-horizon Poisson
    /// step counts).
    pub per_horizon_cost: Vec<Duration>,
    /// Kernel counters of the solve that produced the factors.
    pub kernel: KernelStats,
    /// Wall-clock the kernel spent building its CSR form.
    pub csr_build: Duration,
    /// Wall-clock the kernel spent inside its stepping loop.
    pub spmv_time: Duration,
}

type CachedSolution = Result<DynamicSolution, CoreError>;
type Slot = Arc<OnceLock<CachedSolution>>;

const SHARDS: usize = 16;

/// Concurrent map from [`CanonicalModelKey`] to the solved dynamics of
/// its equivalence class. Sharded `Mutex<HashMap>`s keep lock contention
/// off the hot path; a per-key [`OnceLock`] guarantees each class is
/// uniformized exactly once even when many workers race on it.
///
/// Hit/miss counts are deterministic for a fixed work list regardless of
/// scheduling: every distinct key is missed exactly once (by whichever
/// worker wins the `OnceLock` initialization) and hit on every other
/// consultation.
#[derive(Debug, Default)]
pub struct QuantCache {
    shards: [Mutex<HashMap<CanonicalModelKey, Slot>>; SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
    saved_nanos: AtomicU64,
}

/// Aggregate statistics of a [`QuantCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct model equivalence classes consulted.
    pub distinct_classes: usize,
    /// Consultations answered from the cache.
    pub hits: usize,
    /// Consultations that had to solve their class.
    pub misses: usize,
    /// Wall-clock the hits would have re-spent solving.
    pub time_saved: Duration,
}

impl CacheStats {
    /// Fraction of consultations answered from the cache (0 when the
    /// cache was never consulted).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl QuantCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        QuantCache::default()
    }

    fn shard(&self, key: &CanonicalModelKey) -> &Mutex<HashMap<CanonicalModelKey, Slot>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Return the solution for `key`, solving it with `solve` if this is
    /// the first consultation of its class. The boolean is `true` for a
    /// cache hit. Errors are cached like successes, so a failing class
    /// is attempted exactly once.
    pub(crate) fn get_or_solve(
        &self,
        key: CanonicalModelKey,
        solve: impl FnOnce() -> CachedSolution,
    ) -> (CachedSolution, bool) {
        let slot: Slot = {
            let mut shard = self.shard(&key).lock().expect("cache shard not poisoned");
            Arc::clone(shard.entry(key).or_default())
        };
        let mut solved_here = false;
        let cached = slot.get_or_init(|| {
            solved_here = true;
            let begin = Instant::now();
            let mut result = solve();
            if let Ok(solution) = &mut result {
                // Store the real cost of the solve so hits can report how
                // much wall-clock the cache saved them.
                let elapsed = begin.elapsed();
                if solution.per_horizon_cost.iter().sum::<Duration>() < elapsed {
                    distribute_evenly(&mut solution.per_horizon_cost, elapsed);
                }
            }
            result
        });
        if solved_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Ok(solution) = cached {
                let cost: Duration = solution.per_horizon_cost.iter().sum();
                self.saved_nanos.fetch_add(
                    u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
            }
        }
        (cached.clone(), !solved_here)
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let distinct = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard not poisoned").len())
            .sum();
        CacheStats {
            distinct_classes: distinct,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            time_saved: Duration::from_nanos(self.saved_nanos.load(Ordering::Relaxed)),
        }
    }
}

fn distribute_evenly(costs: &mut [Duration], total: Duration) {
    if costs.is_empty() {
        return;
    }
    let share = total / u32::try_from(costs.len()).unwrap_or(1);
    for cost in costs.iter_mut() {
        *cost = share;
    }
}

#[cfg(test)]
mod key_tests {
    use super::*;
    use crate::ftc::{build_ftc_with, FtcContext};
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    /// Example 3 of the paper with every node name prefixed and the
    /// failure rate parameterized; returns the tree and its {b, d}
    /// cutset (a dynamic event plus a triggered one whose trigger cone
    /// reaches back through pump 1).
    fn pump_tree(prefix: &str, lambda: f64) -> (FaultTree, Cutset) {
        let mut b = FaultTreeBuilder::new();
        let n = |s: &str| format!("{prefix}{s}");
        let a = b.static_event(&n("a"), 3e-3).unwrap();
        let bb = b
            .dynamic_event(&n("b"), erlang::repairable(1, lambda, 0.05).unwrap())
            .unwrap();
        let c = b.static_event(&n("c"), 3e-3).unwrap();
        let d = b
            .triggered_event(&n("d"), erlang::spare(lambda, 0.05).unwrap())
            .unwrap();
        let e = b.static_event(&n("e"), 3e-6).unwrap();
        let p1 = b.or(&n("pump1"), [a, bb]).unwrap();
        let p2 = b.or(&n("pump2"), [c, d]).unwrap();
        let pumps = b.and(&n("pumps"), [p1, p2]).unwrap();
        let top = b.or(&n("cooling"), [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        (b.build().unwrap(), Cutset::new([bb, d]))
    }

    fn key_of(tree: &FaultTree, cutset: &Cutset, treatment: TriggerTreatment) -> CanonicalModelKey {
        let ctx = FtcContext::new(tree).unwrap();
        build_ftc_with(tree, &ctx, cutset, treatment)
            .unwrap()
            .canonical_key
            .expect("dynamic cutset model carries a key")
    }

    #[test]
    fn name_isomorphic_models_share_a_key() {
        let (left_tree, left_cutset) = pump_tree("left_", 1e-3);
        let (right_tree, right_cutset) = pump_tree("right_", 1e-3);
        assert_eq!(
            key_of(&left_tree, &left_cutset, TriggerTreatment::Classified),
            key_of(&right_tree, &right_cutset, TriggerTreatment::Classified),
        );
    }

    #[test]
    fn rates_and_treatment_change_the_key() {
        let (tree, cutset) = pump_tree("x_", 1e-3);
        let (faster, faster_cutset) = pump_tree("x_", 2e-3);
        let classified = key_of(&tree, &cutset, TriggerTreatment::Classified);
        assert_ne!(
            classified,
            key_of(&faster, &faster_cutset, TriggerTreatment::Classified),
        );
        assert_ne!(
            classified,
            key_of(&tree, &cutset, TriggerTreatment::CutsetOnly),
        );
    }

    #[test]
    fn quantification_parameters_complete_the_key() {
        let (tree, cutset) = pump_tree("x_", 1e-3);
        let stem = key_of(&tree, &cutset, TriggerTreatment::Classified);
        let full = stem.with_quantification(&[24.0], 1e-12, 1000, true);
        assert_ne!(full, stem.with_quantification(&[48.0], 1e-12, 1000, true));
        assert_ne!(
            full,
            stem.with_quantification(&[24.0, 48.0], 1e-12, 1000, true)
        );
        assert_ne!(full, stem.with_quantification(&[24.0], 1e-9, 1000, true));
        assert_ne!(full, stem.with_quantification(&[24.0], 1e-12, 2000, true));
        assert_ne!(full, stem.with_quantification(&[24.0], 1e-12, 1000, false));
        assert_eq!(full, stem.with_quantification(&[24.0], 1e-12, 1000, true));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solution(factor: f64) -> DynamicSolution {
        DynamicSolution {
            factors: vec![factor],
            chain_states: 2,
            per_horizon_cost: vec![Duration::from_micros(5)],
            kernel: KernelStats {
                solves: 1,
                steps_taken: 7,
                steps_saved: 3,
                steady_state_solves: 1,
                spmv_nonzeros: 14,
                csr_reuses: 0,
            },
            csr_build: Duration::from_nanos(200),
            spmv_time: Duration::from_nanos(900),
        }
    }

    fn key(byte: u8) -> CanonicalModelKey {
        CanonicalModelKey(vec![byte])
    }

    #[test]
    fn first_consultation_solves_later_ones_hit() {
        let cache = QuantCache::new();
        let (first, hit) = cache.get_or_solve(key(1), || Ok(solution(0.5)));
        assert!(!hit);
        assert_eq!(first.unwrap().factors, vec![0.5]);
        let (second, hit) = cache.get_or_solve(key(1), || panic!("must not re-solve"));
        assert!(hit);
        assert_eq!(second.unwrap().factors, vec![0.5]);
        let stats = cache.stats();
        assert_eq!(stats.distinct_classes, 1);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.time_saved > Duration::ZERO);
    }

    #[test]
    fn distinct_keys_solve_independently() {
        let cache = QuantCache::new();
        let (_, hit1) = cache.get_or_solve(key(1), || Ok(solution(0.1)));
        let (_, hit2) = cache.get_or_solve(key(2), || Ok(solution(0.2)));
        assert!(!hit1 && !hit2);
        assert_eq!(cache.stats().distinct_classes, 2);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = QuantCache::new();
        let error = || Err(CoreError::InvalidHorizon { horizon: f64::NAN });
        let (first, hit) = cache.get_or_solve(key(9), error);
        assert!(!hit && first.is_err());
        let (second, hit) = cache.get_or_solve(key(9), || panic!("must not retry"));
        assert!(hit && second.is_err());
    }

    #[test]
    fn concurrent_consultations_solve_exactly_once() {
        let cache = QuantCache::new();
        let solves = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for round in 0..50u8 {
                        let k = key(round % 5);
                        let (result, _) = cache.get_or_solve(k, || {
                            solves.fetch_add(1, Ordering::Relaxed);
                            Ok(solution(f64::from(round % 5)))
                        });
                        assert_eq!(result.unwrap().factors, vec![f64::from(round % 5)]);
                    }
                });
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 5, "one solve per class");
        let stats = cache.stats();
        assert_eq!(stats.distinct_classes, 5);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 8 * 50 - 5);
    }
}
