#![warn(missing_docs)]

//! Scalable analysis of SD fault trees — the algorithm of Krčál & Krčál,
//! *Scalable Analysis of Fault Trees with Dynamic Features* (DSN 2015).
//!
//! The analysis avoids the exponential product Markov chain of an SD
//! fault tree by decomposing the problem along minimal cutsets:
//!
//! 1. [`worst_case_probabilities`] — every dynamic basic event gets the
//!    worst-case static probability of failing within the horizon
//!    (§V-B2: triggered at time zero and never untriggered),
//! 2. [`translate`] — the SD tree becomes an ordinary static tree with
//!    the same minimal cutsets: each trigger edge turns into an AND gate
//!    (§V-B1),
//! 3. MOCUS generates the minimal cutsets above the cutoff (the cutoff is
//!    conservative with respect to the SD semantics),
//! 4. [`quantify_cutset`] — each cutset `C` is quantified *dynamically*
//!    on a small SD fault tree `FT_C` containing only the dynamic events
//!    of `C` plus whatever triggering logic the trigger-structure
//!    classification (§V-A: [`classify_gate`]) requires (§V-C:
//!    [`build_ftc`]); the product chain of `FT_C` is small by
//!    construction,
//! 5. [`analyze`] — the parallel driver running all of the above and
//!    summing the per-cutset probabilities (rare-event approximation).
//!
//! # Example
//!
//! ```
//! use sdft_core::{analyze, AnalysisOptions};
//! use sdft_ft::format;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Example 3 of the paper: redundant pumps, pump 2 triggered by the
//! // failure of pump 1.
//! let tree = format::parse_str(
//!     "top cooling\n\
//!      basic a 0.003\n\
//!      basic c 0.003\n\
//!      basic e 0.000003\n\
//!      dynamic b erlang k=1 lambda=0.001 mu=0.05\n\
//!      dynamic d spare lambda=0.001 mu=0.05\n\
//!      gate pump1 or a b\n\
//!      gate pump2 or c d\n\
//!      gate pumps and pump1 pump2\n\
//!      gate cooling or pumps e\n\
//!      trigger pump1 d\n",
//! )?;
//! let result = analyze(&tree, &AnalysisOptions::new(24.0))?;
//! // Timing-aware analysis is sharper than the static worst case.
//! assert!(result.frequency <= result.static_rea);
//! # Ok(())
//! # }
//! ```

mod backend;
mod canonical;
mod classify;
mod engine;
mod error;
mod ftc;
mod pipeline;
mod quantify;
mod translate;
mod worstcase;

pub use backend::Backend;
pub use canonical::{CacheStats, CanonicalModelKey, DynamicSolution, KernelStats, QuantCache};
pub use classify::{
    classify_gate, classify_triggering_gates, validate_trigger_structure, TriggerClass,
};
pub use error::CoreError;
pub use ftc::{build_ftc, build_ftc_with, CutsetModel, FtcContext, TriggerTreatment};
pub use pipeline::{
    analyze, analyze_horizons, AnalysisOptions, AnalysisResult, AnalysisStats, CutsetReport,
    FilterShardStats, Timings,
};
pub use quantify::{
    quantify_cutset, quantify_model_many, quantify_model_many_with, CacheLookup,
    CutsetQuantification, KernelUsage, QuantifyOptions,
};
pub use sdft_ctmc::{SolveStats, SolverOptions, SolverWorkspace, WorkspacePool};
pub use translate::{translate, Translated};
pub use worstcase::{worst_case_probabilities, worst_case_probability};
