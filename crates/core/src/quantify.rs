use crate::canonical::{DynamicSolution, KernelStats, QuantCache};
use crate::error::CoreError;
use crate::ftc::{build_ftc_with, CutsetModel, FtcContext, TriggerTreatment};
use sdft_ctmc::{SolverOptions, SolverWorkspace};
use sdft_ft::{Cutset, FaultTree};
use sdft_product::{ProductChain, ProductOptions};
use std::time::{Duration, Instant};

/// Options for per-cutset quantification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantifyOptions {
    /// The mission horizon `t`.
    pub horizon: f64,
    /// Truncation error of the transient analysis.
    pub epsilon: f64,
    /// State budget for the per-cutset product chain.
    pub max_states: usize,
    /// How much triggering logic the per-cutset models carry
    /// ([`TriggerTreatment::CutsetOnly`] is the fast
    /// under-approximation of the paper's conclusion).
    pub treatment: TriggerTreatment,
    /// Let the uniformization kernel stop stepping once the DTMC
    /// iterates have converged (see [`sdft_ctmc::SolverOptions`]); adds
    /// at most `epsilon` of extra error per horizon when it fires.
    pub steady_state_detection: bool,
}

impl QuantifyOptions {
    /// Options for the given horizon with the default numerical settings.
    #[must_use]
    pub fn new(horizon: f64) -> Self {
        QuantifyOptions {
            horizon,
            epsilon: 1e-12,
            max_states: 2_000_000,
            treatment: TriggerTreatment::Classified,
            steady_state_detection: true,
        }
    }
}

/// The result of quantifying one minimal cutset (§V-C).
#[derive(Debug, Clone, PartialEq)]
pub struct CutsetQuantification {
    /// `p̃(C)` — the probability that all events of the cutset are failed
    /// simultaneously at some point within the horizon.
    pub probability: f64,
    /// `∏ p(a)` over the cutset's static events.
    pub static_factor: f64,
    /// `Pr_FT_C[Reach≤t(F)]` — the dynamic part (1 for static cutsets).
    pub dynamic_factor: f64,
    /// Number of dynamic events in the cutset itself.
    pub cutset_dynamic: usize,
    /// Dynamic events added for triggering logic.
    pub added_dynamic: usize,
    /// Static events added for triggering logic.
    pub added_static: usize,
    /// States of the per-cutset product chain (0 for static cutsets).
    pub chain_states: usize,
    /// Whether any triggering gate needed the general case.
    pub used_general: bool,
    /// Wall-clock actually spent on this horizon's share of the transient
    /// analysis — zero for static cutsets, short-circuits and cache hits.
    pub quantification_time: Duration,
}

/// Quantify one minimal cutset: build `FT_C`, run the transient analysis
/// on its (small) product chain, and multiply by the cutset's static
/// probabilities (§V-C).
///
/// # Errors
///
/// Returns an error if the cutset references gates, the horizon is
/// invalid, or the per-cutset chain exceeds the state budget.
pub fn quantify_cutset(
    tree: &FaultTree,
    ctx: &FtcContext,
    cutset: &Cutset,
    options: &QuantifyOptions,
) -> Result<CutsetQuantification, CoreError> {
    if !options.horizon.is_finite() || options.horizon < 0.0 {
        return Err(CoreError::InvalidHorizon {
            horizon: options.horizon,
        });
    }
    let model = build_ftc_with(tree, ctx, cutset, options.treatment)?;
    quantify_model(tree, &model, options)
}

/// Quantify a prebuilt cutset model (exposed so the analysis pipeline can
/// reuse the model for reporting).
///
/// # Errors
///
/// Same as [`quantify_cutset`].
pub fn quantify_model(
    tree: &FaultTree,
    model: &CutsetModel,
    options: &QuantifyOptions,
) -> Result<CutsetQuantification, CoreError> {
    let static_factor: f64 = model
        .static_events
        .iter()
        .map(|&e| tree.static_probability(e).expect("static event"))
        .product();
    let (dynamic_factor, chain_states) = match &model.tree {
        None => (1.0, 0),
        Some(ftc) => {
            if static_factor == 0.0 {
                (0.0, 0) // conditioned out: the cutset cannot occur
            } else {
                let chain = ProductChain::build(
                    ftc,
                    &ProductOptions {
                        max_states: options.max_states,
                    },
                )?;
                let p = chain.failure_probability(options.horizon, options.epsilon)?;
                (p, chain.num_states())
            }
        }
    };
    Ok(CutsetQuantification {
        probability: static_factor * dynamic_factor,
        static_factor,
        dynamic_factor,
        cutset_dynamic: model.dynamic_events.len(),
        added_dynamic: model.added_dynamic,
        added_static: model.added_static,
        chain_states,
        used_general: model.used_general,
        quantification_time: Duration::ZERO,
    })
}

/// Solve the dynamics of one model equivalence class: build the product
/// chain and run the shared uniformization pass at every horizon. This is
/// the cacheable unit — everything it computes depends only on the model
/// tree and the numerical parameters, never on node names or on which
/// cutset asked.
fn solve_dynamics(
    ftc: &FaultTree,
    horizons: &[f64],
    options: &QuantifyOptions,
    workspace: &mut SolverWorkspace,
) -> Result<DynamicSolution, CoreError> {
    let begin = Instant::now();
    let chain = ProductChain::build(
        ftc,
        &ProductOptions {
            max_states: options.max_states,
        },
    )?;
    let solver = SolverOptions {
        steady_state_detection: options.steady_state_detection,
    };
    let (factors, stats) =
        chain.failure_probability_many_with(horizons, options.epsilon, &solver, workspace)?;
    let elapsed = begin.elapsed();
    Ok(DynamicSolution {
        per_horizon_cost: attribute_cost(elapsed, &stats.per_horizon_steps),
        factors,
        chain_states: chain.num_states(),
        kernel: KernelStats {
            solves: 1,
            steps_taken: stats.steps_taken as u64,
            steps_saved: stats.steps_saved() as u64,
            steady_state_solves: usize::from(stats.steady_state_step.is_some()),
            spmv_nonzeros: stats.spmv_nonzeros,
            csr_reuses: usize::from(stats.csr_shared),
        },
        csr_build: stats.csr_build,
        spmv_time: stats.spmv_time,
    })
}

/// Split the measured wall-clock of one shared uniformization pass over
/// the horizons it served, proportionally to each horizon's Poisson
/// truncation depth (the number of weight applications it needs, as
/// reported by the kernel). A `PoissonWeights` construction failure now
/// surfaces as an error from the solve itself instead of being silently
/// flattened to weight `1.0` here, which used to misattribute
/// per-horizon timings.
fn attribute_cost(total: Duration, per_horizon_steps: &[usize]) -> Vec<Duration> {
    let sum: usize = per_horizon_steps.iter().sum();
    if sum == 0 {
        return vec![Duration::ZERO; per_horizon_steps.len()];
    }
    per_horizon_steps
        .iter()
        .map(|&s| total.mul_f64(s as f64 / sum as f64))
        .collect()
}

/// Quantify a prebuilt cutset model at several horizons, building its
/// product chain once and running a single shared uniformization pass
/// (see [`sdft_ctmc::reach_probability_many`]). Results follow the order
/// of `horizons`; `options.horizon` is ignored in favour of them.
///
/// # Errors
///
/// Same as [`quantify_model`], plus an error for an empty or invalid
/// horizon list.
pub fn quantify_model_many(
    tree: &FaultTree,
    model: &CutsetModel,
    horizons: &[f64],
    options: &QuantifyOptions,
) -> Result<Vec<CutsetQuantification>, CoreError> {
    let mut workspace = SolverWorkspace::new();
    quantify_model_many_with(tree, model, horizons, options, None, &mut workspace)
        .map(|(q, _, _)| q)
}

/// How a [`quantify_model_many_with`] call was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// No cache consulted (static model, short-circuit, or caching off).
    Uncached,
    /// The model's equivalence class was already solved.
    Hit,
    /// This call solved the model's equivalence class.
    Miss,
}

/// Kernel work a [`quantify_model_many_with`] call actually performed:
/// zero for static models, short-circuits and cache hits, the solve's
/// counters when the call ran a uniformization pass. Summing these over
/// a work list is scheduling-independent because each equivalence class
/// is solved exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelUsage {
    /// Deterministic kernel counters (steps taken/saved, solves).
    pub stats: KernelStats,
    /// Wall-clock spent building CSR forms (not deterministic; kept out
    /// of [`KernelStats`] so those can be compared across runs).
    pub csr_build: Duration,
    /// Wall-clock inside the uniformization stepping loop (SpMV plus
    /// Poisson accumulation) — the denominator of kernel throughput.
    pub spmv_time: Duration,
}

impl KernelUsage {
    /// Accumulate another call's kernel work into this one.
    pub fn absorb(&mut self, other: KernelUsage) {
        self.stats.absorb(other.stats);
        self.csr_build += other.csr_build;
        self.spmv_time += other.spmv_time;
    }
}

/// Like [`quantify_model_many`], consulting `cache` (when given) so that
/// each model equivalence class is uniformized exactly once: the first
/// cutset of a class solves it, every later cutset re-labels the shared
/// dynamic factors with its own static factor `∏ p(a)`.
///
/// Cached and uncached paths produce bitwise-identical probabilities —
/// equal [`crate::CanonicalModelKey`]s imply identical model trees, and
/// product-chain construction plus uniformization are deterministic in
/// them (see [`crate::canonical`] for the full argument).
///
/// # Errors
///
/// Same as [`quantify_model_many`]. Errors are cached per class too, so a
/// failing class is attempted once and its error shared.
pub fn quantify_model_many_with(
    tree: &FaultTree,
    model: &CutsetModel,
    horizons: &[f64],
    options: &QuantifyOptions,
    cache: Option<&QuantCache>,
    workspace: &mut SolverWorkspace,
) -> Result<(Vec<CutsetQuantification>, CacheLookup, KernelUsage), CoreError> {
    if horizons.is_empty() {
        return Err(crate::CoreError::InvalidHorizon { horizon: f64::NAN });
    }
    let static_factor: f64 = model
        .static_events
        .iter()
        .map(|&e| tree.static_probability(e).expect("static event"))
        .product();
    let make = |dynamic_factor: f64, chain_states: usize, time: Duration| CutsetQuantification {
        probability: static_factor * dynamic_factor,
        static_factor,
        dynamic_factor,
        cutset_dynamic: model.dynamic_events.len(),
        added_dynamic: model.added_dynamic,
        added_static: model.added_static,
        chain_states,
        used_general: model.used_general,
        quantification_time: time,
    };
    let ftc = match &model.tree {
        None => {
            let reports = vec![make(1.0, 0, Duration::ZERO); horizons.len()];
            return Ok((reports, CacheLookup::Uncached, KernelUsage::default()));
        }
        Some(_) if static_factor == 0.0 => {
            // Conditioned out: a zero-probability static event means the
            // cutset cannot occur — skip chain construction entirely.
            let reports = vec![make(0.0, 0, Duration::ZERO); horizons.len()];
            return Ok((reports, CacheLookup::Uncached, KernelUsage::default()));
        }
        Some(ftc) => ftc,
    };
    let mut solve = || solve_dynamics(ftc, horizons, options, workspace);
    let (solution, lookup) = match cache.zip(model.canonical_key.as_ref()) {
        Some((cache, stem)) => {
            let key = stem.with_quantification(
                horizons,
                options.epsilon,
                options.max_states,
                options.steady_state_detection,
            );
            let (result, hit) = cache.get_or_solve(key, solve);
            let mut solution = result?;
            if hit {
                // The stored costs describe the original solve; this call
                // only paid a lookup.
                solution.per_horizon_cost = vec![Duration::ZERO; horizons.len()];
            }
            (
                solution,
                if hit {
                    CacheLookup::Hit
                } else {
                    CacheLookup::Miss
                },
            )
        }
        None => (solve()?, CacheLookup::Uncached),
    };
    // Kernel work is attributed to the call that solved the class; hits
    // only paid a lookup, so summed usage is one solve per class no
    // matter how work was scheduled.
    let usage = if lookup == CacheLookup::Hit {
        KernelUsage::default()
    } else {
        KernelUsage {
            stats: solution.kernel,
            csr_build: solution.csr_build,
            spmv_time: solution.spmv_time,
        }
    };
    let reports = solution
        .factors
        .iter()
        .zip(&solution.per_horizon_cost)
        .map(|(&factor, &cost)| make(factor, solution.chain_states, cost))
        .collect();
    Ok((reports, lookup, usage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftc::FtcContext;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn example3() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let a = b.static_event("a", 3e-3).unwrap();
        let bb = b
            .dynamic_event("b", erlang::repairable(1, 1e-3, 0.05).unwrap())
            .unwrap();
        let c = b.static_event("c", 3e-3).unwrap();
        let d = b
            .triggered_event("d", erlang::spare(1e-3, 0.05).unwrap())
            .unwrap();
        let e = b.static_event("e", 3e-6).unwrap();
        let p1 = b.or("pump1", [a, bb]).unwrap();
        let p2 = b.or("pump2", [c, d]).unwrap();
        let pumps = b.and("pumps", [p1, p2]).unwrap();
        let top = b.or("cooling", [pumps, e]).unwrap();
        b.trigger(p1, d).unwrap();
        b.top(top);
        b.build().unwrap()
    }

    fn cutset_of(tree: &FaultTree, names: &[&str]) -> Cutset {
        Cutset::new(names.iter().map(|n| tree.node_by_name(n).unwrap()))
    }

    #[test]
    fn static_cutset_probability_is_the_product() {
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let q = quantify_cutset(
            &t,
            &ctx,
            &cutset_of(&t, &["a", "c"]),
            &QuantifyOptions::new(24.0),
        )
        .unwrap();
        assert!((q.probability - 9e-6).abs() < 1e-18);
        assert_eq!(q.dynamic_factor, 1.0);
        assert_eq!(q.chain_states, 0);
    }

    #[test]
    fn dynamic_cutset_is_time_aware() {
        // {b, c}: Pr[b fails within t] * p(c); with repairs, "b failed at
        // the same time as c" — c is static so failed whenever drawn so —
        // means b reaching its failed state at least once.
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let q = quantify_cutset(
            &t,
            &ctx,
            &cutset_of(&t, &["b", "c"]),
            &QuantifyOptions::new(24.0),
        )
        .unwrap();
        let b_reach = erlang::repairable(1, 1e-3, 0.05)
            .unwrap()
            .reach_failed_probability(24.0, 1e-12)
            .unwrap();
        assert!((q.probability - 3e-3 * b_reach).abs() < 1e-12);
        assert!(q.chain_states > 0);
    }

    #[test]
    fn triggered_cutset_accounts_for_delayed_start() {
        // {a, d}: a fails at t=0 (static), so d is triggered from 0; the
        // dynamic factor equals d's worst-case probability in this case.
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let q = quantify_cutset(
            &t,
            &ctx,
            &cutset_of(&t, &["a", "d"]),
            &QuantifyOptions::new(24.0),
        )
        .unwrap();
        let d_worst = erlang::spare(1e-3, 0.05)
            .unwrap()
            .worst_case_failure_probability(24.0, 1e-12)
            .unwrap();
        assert!((q.dynamic_factor - d_worst).abs() < 1e-9);
        assert!((q.probability - 3e-3 * d_worst).abs() < 1e-12);
    }

    #[test]
    fn triggered_by_dynamic_is_below_worst_case() {
        // {b, d}: d only starts once b has failed, so the joint failure
        // probability is well below p(b-reaches) * p(d-worst).
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let q = quantify_cutset(
            &t,
            &ctx,
            &cutset_of(&t, &["b", "d"]),
            &QuantifyOptions::new(24.0),
        )
        .unwrap();
        let b_reach = erlang::repairable(1, 1e-3, 0.05)
            .unwrap()
            .reach_failed_probability(24.0, 1e-12)
            .unwrap();
        let d_worst = erlang::spare(1e-3, 0.05)
            .unwrap()
            .worst_case_failure_probability(24.0, 1e-12)
            .unwrap();
        assert!(q.probability > 0.0);
        assert!(
            q.probability < b_reach * d_worst,
            "{} !< {}",
            q.probability,
            b_reach * d_worst
        );
    }

    #[test]
    fn zero_probability_static_short_circuits() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.0).unwrap();
        let y = b
            .dynamic_event("y", erlang::plain(1, 1e-3).unwrap())
            .unwrap();
        let g = b.and("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        let ctx = FtcContext::new(&t).unwrap();
        let c = Cutset::new([x, y]);
        let q = quantify_cutset(&t, &ctx, &c, &QuantifyOptions::new(24.0)).unwrap();
        assert_eq!(q.probability, 0.0);
        assert_eq!(q.chain_states, 0, "chain construction skipped");
    }

    #[test]
    fn invalid_horizon_rejected() {
        let t = example3();
        let ctx = FtcContext::new(&t).unwrap();
        let c = cutset_of(&t, &["e"]);
        assert!(matches!(
            quantify_cutset(&t, &ctx, &c, &QuantifyOptions::new(f64::NAN)),
            Err(CoreError::InvalidHorizon { .. })
        ));
    }
}
