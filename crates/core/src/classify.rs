use sdft_ft::{FaultTree, GateKind, NodeId};
use std::collections::HashMap;
use std::fmt;

/// The classification of a triggering gate's subtree (§V-A), which decides
/// how much triggering logic the per-cutset model `FT_C` needs:
///
/// * [`TriggerClass::StaticBranching`] — every OR gate in the subtree has
///   at most one dynamic child; only the dynamic events *of the cutset*
///   are relevant (`Rel_a = Dyn_a ∩ C`), so quantification stays smallest.
/// * [`TriggerClass::StaticJoinsUniform`] / [`TriggerClass::StaticJoins`]
///   — no AND gate in the subtree has a dynamic child; all dynamic events
///   of the subtree are relevant (`Rel_a = Dyn_a`). With *uniform
///   triggering* (all dynamic events below the gate are triggered by one
///   common gate) chains of such triggers never force the general case.
/// * [`TriggerClass::General`] — anything else; all basic events of the
///   subtree except the cutset's statics are relevant, which can make
///   quantification expensive. The paper recommends using such gates
///   sparingly; [`classify_triggering_gates`] lets tools warn the user up
///   front.
///
/// At-least gates (an extension over the paper) are treated
/// conservatively: a voting gate with `1 < k < n` and a dynamic child
/// breaks both conditions; `k = 1` behaves like OR and `k = n` like AND.
/// The derived ordering ranks classes by quantification cost:
/// `StaticBranching < StaticJoinsUniform < StaticJoins < General`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggerClass {
    /// Every OR gate in the subtree has at most one dynamic child.
    StaticBranching,
    /// No AND gate in the subtree has a dynamic child, and all dynamic
    /// events below the gate share one triggering gate.
    StaticJoinsUniform,
    /// No AND gate in the subtree has a dynamic child, without uniform
    /// triggering.
    StaticJoins,
    /// None of the conditions hold.
    General,
}

impl fmt::Display for TriggerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerClass::StaticBranching => write!(f, "static branching"),
            TriggerClass::StaticJoinsUniform => {
                write!(f, "static joins with uniform triggering")
            }
            TriggerClass::StaticJoins => write!(f, "static joins"),
            TriggerClass::General => write!(f, "general"),
        }
    }
}

/// Classify the subtree of `gate` (§V-A).
///
/// Static branching is preferred when both conditions hold, because its
/// relevant set (`Dyn_a ∩ C`) is the smallest.
///
/// # Panics
///
/// Panics if `gate` is out of range.
#[must_use]
pub fn classify_gate(tree: &FaultTree, gate: NodeId) -> TriggerClass {
    let gates = tree.subtree_gates(gate);
    let mut static_branching = true;
    let mut static_joins = true;
    for g in gates {
        let dynamic_children = tree
            .gate_inputs(g)
            .iter()
            .filter(|&&c| tree.is_dynamic_subtree(c))
            .count();
        match tree.gate_kind(g).expect("gate") {
            GateKind::Or => {
                if dynamic_children > 1 {
                    static_branching = false;
                }
            }
            GateKind::And => {
                if dynamic_children > 0 {
                    static_joins = false;
                }
            }
            GateKind::AtLeast(k) => {
                let n = tree.gate_inputs(g).len();
                if k as usize == 1 {
                    if dynamic_children > 1 {
                        static_branching = false;
                    }
                } else if k as usize == n {
                    if dynamic_children > 0 {
                        static_joins = false;
                    }
                } else if dynamic_children > 0 {
                    static_branching = false;
                    static_joins = false;
                }
            }
        }
    }
    if static_branching {
        return TriggerClass::StaticBranching;
    }
    if static_joins {
        if uniform_triggering(tree, gate) {
            return TriggerClass::StaticJoinsUniform;
        }
        return TriggerClass::StaticJoins;
    }
    TriggerClass::General
}

/// Whether all dynamic basic events under `gate` are triggered and share
/// a single triggering gate (§V-A, *uniform triggering*).
#[must_use]
pub fn uniform_triggering(tree: &FaultTree, gate: NodeId) -> bool {
    let mut common: Option<NodeId> = None;
    for event in tree.subtree_basic_events(gate) {
        if !tree
            .behavior(event)
            .is_some_and(sdft_ft::Behavior::is_dynamic)
        {
            continue;
        }
        let Some(source) = tree.trigger_source(event) else {
            return false; // an untriggered dynamic event
        };
        match common {
            None => common = Some(source),
            Some(c) if c == source => {}
            Some(_) => return false,
        }
    }
    true
}

/// Classify every triggering gate of `tree` (the set `{g : trig(g) ≠ ∅}`).
///
/// The paper notes that the efficiency of the per-cutset quantification
/// "can be predicted and indicated to the user" — this is that
/// prediction.
#[must_use]
pub fn classify_triggering_gates(tree: &FaultTree) -> HashMap<NodeId, TriggerClass> {
    tree.gates()
        .filter(|&g| !tree.triggers_of(g).is_empty())
        .map(|g| (g, classify_gate(tree, g)))
        .collect()
}

/// Reject trees whose triggering gates classify worse than
/// `strictest_allowed` (in the cost ordering of [`TriggerClass`]).
///
/// The paper recommends using general-case triggering gates sparingly
/// because their relevant sets — and therefore the per-cutset models —
/// can blow up; this is the corresponding up-front gate for tools that
/// want to refuse (rather than merely warn about) expensive structures.
/// Gates are visited in tree order, so the reported offender is
/// deterministic.
///
/// # Errors
///
/// Returns [`CoreError::TriggerStructure`] naming the first triggering
/// gate whose class exceeds `strictest_allowed`.
pub fn validate_trigger_structure(
    tree: &FaultTree,
    strictest_allowed: TriggerClass,
) -> Result<(), crate::CoreError> {
    for gate in tree.gates() {
        if tree.triggers_of(gate).is_empty() {
            continue;
        }
        let class = classify_gate(tree, gate);
        if class > strictest_allowed {
            return Err(crate::CoreError::TriggerStructure {
                gate: tree.name(gate).to_owned(),
                class,
                allowed: strictest_allowed,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdft_ctmc::erlang;
    use sdft_ft::FaultTreeBuilder;

    fn spare() -> sdft_ctmc::TriggeredCtmc {
        erlang::spare(1e-3, 0.05).unwrap()
    }

    fn plain() -> sdft_ctmc::Ctmc {
        erlang::repairable(1, 1e-3, 0.05).unwrap()
    }

    #[test]
    fn or_with_one_dynamic_child_is_static_branching() {
        // Figure 1 left (2): component with static failure-to-start and
        // dynamic failure-in-operation.
        let mut b = FaultTreeBuilder::new();
        let fts = b.static_event("fts", 3e-3).unwrap();
        let ftr = b.dynamic_event("ftr", plain()).unwrap();
        let pump = b.or("pump", [fts, ftr]).unwrap();
        let d = b.triggered_event("spare", spare()).unwrap();
        let top = b.and("top", [pump, d]).unwrap();
        b.trigger(pump, d).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let pump = t.node_by_name("pump").unwrap();
        assert_eq!(classify_gate(&t, pump), TriggerClass::StaticBranching);
    }

    #[test]
    fn and_of_two_dynamic_components_is_static_branching() {
        // Figure 1 left (3): two redundant dynamically-modeled components
        // combined by AND — OR gates each have one dynamic child.
        let mut b = FaultTreeBuilder::new();
        let s1 = b.static_event("s1", 3e-3).unwrap();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let s2 = b.static_event("s2", 3e-3).unwrap();
        let d2 = b.dynamic_event("d2", plain()).unwrap();
        let t1 = b.or("t1", [s1, d1]).unwrap();
        let t2 = b.or("t2", [s2, d2]).unwrap();
        let sys = b.and("sys", [t1, t2]).unwrap();
        let dd = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [sys, dd]).unwrap();
        b.trigger(sys, dd).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let sys = t.node_by_name("sys").unwrap();
        assert_eq!(classify_gate(&t, sys), TriggerClass::StaticBranching);
    }

    #[test]
    fn or_of_two_dynamic_events_is_static_joins() {
        // Figure 1 right (1): one system whose pump and generator are both
        // dynamic — the OR has two dynamic children, but no AND is dynamic.
        let mut b = FaultTreeBuilder::new();
        let p = b.dynamic_event("pump", plain()).unwrap();
        let g = b.dynamic_event("gen", plain()).unwrap();
        let train = b.or("train", [p, g]).unwrap();
        let dd = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [train, dd]).unwrap();
        b.trigger(train, dd).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let train = t.node_by_name("train").unwrap();
        // The dynamic events under "train" are untriggered, so the
        // triggering is not uniform.
        assert_eq!(classify_gate(&t, train), TriggerClass::StaticJoins);
    }

    #[test]
    fn chained_uniform_triggering_is_detected() {
        // Figure 1 right (3): train 2's dynamic events are all triggered
        // by train 1.
        let mut b = FaultTreeBuilder::new();
        let p1 = b.dynamic_event("pump1", plain()).unwrap();
        let g1 = b.dynamic_event("gen1", plain()).unwrap();
        let train1 = b.or("train1", [p1, g1]).unwrap();
        let p2 = b.triggered_event("pump2", spare()).unwrap();
        let g2 = b.triggered_event("gen2", spare()).unwrap();
        let train2 = b.or("train2", [p2, g2]).unwrap();
        let d3 = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [train1, train2, d3]).unwrap();
        b.trigger(train1, p2).unwrap();
        b.trigger(train1, g2).unwrap();
        b.trigger(train2, d3).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        let train2 = t.node_by_name("train2").unwrap();
        assert_eq!(classify_gate(&t, train2), TriggerClass::StaticJoinsUniform);
        let all = classify_triggering_gates(&t);
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[&t.node_by_name("train1").unwrap()],
            TriggerClass::StaticJoins
        );
    }

    #[test]
    fn dynamic_child_under_and_is_general() {
        // AND with a dynamic child below an OR with two dynamic children:
        // neither condition holds.
        let mut b = FaultTreeBuilder::new();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let d2 = b.dynamic_event("d2", plain()).unwrap();
        let s = b.static_event("s", 0.1).unwrap();
        let inner = b.and("inner", [d1, s]).unwrap();
        let g = b.or("g", [inner, d2]).unwrap();
        let dd = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [g, dd]).unwrap();
        b.trigger(g, dd).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(
            classify_gate(&t, t.node_by_name("g").unwrap()),
            TriggerClass::General
        );
    }

    #[test]
    fn fully_static_subtree_is_static_branching() {
        let mut b = FaultTreeBuilder::new();
        let x = b.static_event("x", 0.1).unwrap();
        let y = b.static_event("y", 0.1).unwrap();
        let g = b.or("g", [x, y]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert_eq!(classify_gate(&t, g), TriggerClass::StaticBranching);
    }

    #[test]
    fn validate_rejects_general_gates_with_a_precise_error() {
        // The general-case shape from `dynamic_child_under_and_is_general`,
        // now triggering a spare: validation must name the offending gate
        // and both classes.
        let mut b = FaultTreeBuilder::new();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let d2 = b.dynamic_event("d2", plain()).unwrap();
        let s = b.static_event("s", 0.1).unwrap();
        let inner = b.and("inner", [d1, s]).unwrap();
        let g = b.or("g", [inner, d2]).unwrap();
        let dd = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [g, dd]).unwrap();
        b.trigger(g, dd).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(
            validate_trigger_structure(&t, TriggerClass::StaticJoins),
            Err(crate::CoreError::TriggerStructure {
                gate: "g".to_owned(),
                class: TriggerClass::General,
                allowed: TriggerClass::StaticJoins,
            })
        );
        // Allowing everything accepts the same tree.
        assert_eq!(
            validate_trigger_structure(&t, TriggerClass::General),
            Ok(())
        );
    }

    #[test]
    fn validate_ranks_classes_by_cost() {
        assert!(TriggerClass::StaticBranching < TriggerClass::StaticJoinsUniform);
        assert!(TriggerClass::StaticJoinsUniform < TriggerClass::StaticJoins);
        assert!(TriggerClass::StaticJoins < TriggerClass::General);

        // A static-joins gate passes at its own level but fails under a
        // static-branching-only policy.
        let mut b = FaultTreeBuilder::new();
        let p = b.dynamic_event("pump", plain()).unwrap();
        let g = b.dynamic_event("gen", plain()).unwrap();
        let train = b.or("train", [p, g]).unwrap();
        let dd = b.triggered_event("next", spare()).unwrap();
        let top = b.and("top", [train, dd]).unwrap();
        b.trigger(train, dd).unwrap();
        b.top(top);
        let t = b.build().unwrap();
        assert_eq!(
            validate_trigger_structure(&t, TriggerClass::StaticJoins),
            Ok(())
        );
        let err = validate_trigger_structure(&t, TriggerClass::StaticBranching).unwrap_err();
        assert_eq!(
            err,
            crate::CoreError::TriggerStructure {
                gate: "train".to_owned(),
                class: TriggerClass::StaticJoins,
                allowed: TriggerClass::StaticBranching,
            }
        );
        // The Display form names the gate and both classes.
        let msg = err.to_string();
        assert!(
            msg.contains("train") && msg.contains("static joins"),
            "{msg}"
        );
    }

    #[test]
    fn validate_accepts_untriggered_trees() {
        // No triggering gates at all: nothing to reject, even under the
        // strictest policy, whatever the (untriggered) structure is.
        let mut b = FaultTreeBuilder::new();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let d2 = b.dynamic_event("d2", plain()).unwrap();
        let g = b.and("g", [d1, d2]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert_eq!(
            validate_trigger_structure(&t, TriggerClass::StaticBranching),
            Ok(())
        );
    }

    #[test]
    fn atleast_gates_are_conservative() {
        let mut b = FaultTreeBuilder::new();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let s1 = b.static_event("s1", 0.1).unwrap();
        let s2 = b.static_event("s2", 0.1).unwrap();
        let g = b.atleast("g", 2, [d1, s1, s2]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert_eq!(classify_gate(&t, g), TriggerClass::General);

        // k = 1 behaves like OR: one dynamic child is fine.
        let mut b = FaultTreeBuilder::new();
        let d1 = b.dynamic_event("d1", plain()).unwrap();
        let s1 = b.static_event("s1", 0.1).unwrap();
        let g = b.atleast("g", 1, [d1, s1]).unwrap();
        b.top(g);
        let t = b.build().unwrap();
        assert_eq!(classify_gate(&t, g), TriggerClass::StaticBranching);
    }
}
